#!/usr/bin/env python3
"""Validate the observability JSON dumps produced by --metrics / --trace
and the flight-recorder drain from --obs-dir.

Usage: validate_obs_json.py <metrics.json> <trace.json> [events.jsonl]

Checks that the metrics snapshot parses, contains the counters the
instrumented analysis engine must have bumped (DTMC solve counts, cache
traffic) and well-formed histograms with quantile estimates; that the
trace file is a valid Chrome trace_event dump — complete ("X") spans
with causality args plus paired flow ("s"/"f") events linking every
pool task back to its submitting span; and, when given, that the
events.jsonl flight-recorder drain is line-delimited JSON with the
expected schema.  Used by the CI observability smoke step; exits
non-zero with a message on the first violation.
"""
import json
import sys

EVENT_KINDS = {
    "generic",
    "request_begin",
    "request_end",
    "task_submit",
    "task_start",
    "solve_done",
    "cache_hit",
    "cache_miss",
    "stage",
    "contract_failure",
    "sampler_tick",
    "trace_clear",
}


def fail(message: str) -> None:
    print(f"validate_obs_json: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def validate_metrics(path: str) -> None:
    with open(path, encoding="utf-8") as f:
        data = json.load(f)

    for section in ("counters", "gauges", "histograms", "derived"):
        if section not in data:
            fail(f"{path}: missing section '{section}'")

    counters = data["counters"]
    if counters.get("hart.path_solve.count", 0) <= 0:
        fail(f"{path}: expected hart.path_solve.count > 0")
    lookups = counters.get("hart.path_cache.hits", 0) + counters.get(
        "hart.path_cache.misses", 0
    )
    if lookups <= 0:
        fail(f"{path}: expected path-cache traffic (hits + misses > 0)")
    if "cache_hit_ratio" in data["derived"]:
        ratio = data["derived"]["cache_hit_ratio"]
        if not 0.0 <= ratio <= 1.0:
            fail(f"{path}: cache_hit_ratio {ratio} out of [0, 1]")

    # Skeleton reuse (symbolic/numeric split): the default analysis path
    # must build at least one skeleton, refill at least as often as it
    # builds (otherwise reuse never happened), and export a sane derived
    # ratio.
    builds = counters.get("hart.skeleton.builds", 0)
    refills = counters.get("hart.skeleton.refills", 0)
    if builds <= 0:
        fail(f"{path}: expected hart.skeleton.builds > 0")
    if refills < builds:
        fail(
            f"{path}: hart.skeleton.refills {refills} < builds {builds} "
            "(each built skeleton must serve at least one refill)"
        )
    if "skeleton_reuse_ratio" not in data["derived"]:
        fail(f"{path}: missing derived skeleton_reuse_ratio")
    reuse_ratio = data["derived"]["skeleton_reuse_ratio"]
    if not 0.0 <= reuse_ratio <= 1.0:
        fail(f"{path}: skeleton_reuse_ratio {reuse_ratio} out of [0, 1]")

    for name, hist in data["histograms"].items():
        for key in ("count", "sum", "min", "max", "buckets", "p50", "p90",
                    "p99"):
            if key not in hist:
                fail(f"{path}: histogram '{name}' missing '{key}'")
        total = sum(b["count"] for b in hist["buckets"])
        if total != hist["count"]:
            fail(
                f"{path}: histogram '{name}' bucket counts {total} != "
                f"count {hist['count']}"
            )
        quantiles = [hist["p50"], hist["p90"], hist["p99"]]
        if any(q is not None and q < 0 for q in quantiles):
            fail(f"{path}: histogram '{name}' has a negative quantile")
        if hist["count"] > 0:
            p50, p90, p99 = quantiles
            if not p50 <= p90 <= p99:
                fail(
                    f"{path}: histogram '{name}' quantiles not monotone: "
                    f"{p50} / {p90} / {p99}"
                )
            if not hist["min"] <= p50 <= hist["max"]:
                fail(
                    f"{path}: histogram '{name}' p50 {p50} outside "
                    f"[{hist['min']}, {hist['max']}]"
                )

    # Stage-level latency attribution: at least one named pipeline stage
    # must have reported (which stages fire depends on the kernel).
    stages = [n for n in data["histograms"] if n.startswith("hart.stage.")]
    if not stages:
        fail(f"{path}: no hart.stage.* latency histograms recorded")

    print(
        f"validate_obs_json: {path}: OK "
        f"({len(counters)} counters, {len(data['histograms'])} histograms, "
        f"{len(stages)} stage timers, "
        f"{counters.get('hart.path_solve.count')} path solves)"
    )


def validate_trace(path: str) -> None:
    with open(path, encoding="utf-8") as f:
        data = json.load(f)

    events = data.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: traceEvents missing or empty")

    spans = [e for e in events if e.get("ph") == "X"]
    flows = [e for e in events if e.get("ph") in ("s", "f")]
    other = [e for e in events if e.get("ph") not in ("X", "s", "f")]
    if other:
        fail(f"{path}: unexpected event phase in {other[0]}")
    if not spans:
        fail(f"{path}: no complete ('X') span events")

    for event in spans:
        for key in ("name", "cat", "ph", "pid", "tid", "ts", "dur"):
            if key not in event:
                fail(f"{path}: span missing '{key}': {event}")
        if event["dur"] < 0 or event["ts"] < 0:
            fail(f"{path}: negative timestamp in {event}")

    # Flow events: every id must appear exactly once as "s" and once as
    # "f" (the submit side and the worker side), and the finish side
    # must bind to the enclosing slice (bp: "e").
    begins = {}
    ends = {}
    for event in flows:
        for key in ("name", "cat", "ph", "pid", "tid", "ts", "id"):
            if key not in event:
                fail(f"{path}: flow event missing '{key}': {event}")
        side = begins if event["ph"] == "s" else ends
        if event["id"] in side:
            fail(f"{path}: duplicate flow {event['ph']} id {event['id']}")
        side[event["id"]] = event
        if event["ph"] == "f" and event.get("bp") != "e":
            fail(f"{path}: flow finish without bp='e': {event}")
    if set(begins) != set(ends):
        fail(
            f"{path}: unpaired flow ids (s: {sorted(begins)}, "
            f"f: {sorted(ends)})"
        )

    # Causality: every pool_task span carries the flow that delivered it,
    # with both endpoints present, and inherits a request id.
    span_ids = {e["args"]["span"] for e in spans if "span" in e.get("args", {})}
    for event in spans:
        if event["name"] != "pool_task":
            continue
        args = event.get("args", {})
        flow = args.get("flow")
        if not flow:
            fail(f"{path}: pool_task span without flow id: {event}")
        if flow not in begins or flow not in ends:
            fail(f"{path}: pool_task flow {flow} lacks an s/f pair")
        if not args.get("request"):
            fail(f"{path}: pool_task span without request id: {event}")
        if args.get("parent") not in span_ids:
            fail(
                f"{path}: pool_task parent {args.get('parent')} is not a "
                "recorded span"
            )

    names = {event["name"] for event in spans}
    if "analyze_network" not in names:
        fail(f"{path}: no analyze_network span recorded (spans: {names})")
    print(
        f"validate_obs_json: {path}: OK ({len(spans)} spans, "
        f"{len(flows)} flow endpoints, spans: {', '.join(sorted(names))})"
    )


def validate_events(path: str) -> None:
    records = []
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                fail(f"{path}:{lineno}: not valid JSON: {error}")
            for key in ("ts_ns", "thread", "kind", "name", "p0", "p1"):
                if key not in record:
                    fail(f"{path}:{lineno}: event missing '{key}': {record}")
            if record["kind"] not in EVENT_KINDS:
                fail(f"{path}:{lineno}: unknown event kind {record['kind']}")
            if record["ts_ns"] < 0:
                fail(f"{path}:{lineno}: negative timestamp")
            records.append(record)
    if not records:
        fail(f"{path}: no events recorded")
    for earlier, later in zip(records, records[1:]):
        if later["ts_ns"] < earlier["ts_ns"]:
            fail(f"{path}: events not time-sorted at ts {later['ts_ns']}")
    kinds = sorted({r["kind"] for r in records})
    # The analysis engine must have left request markers in the recorder.
    if "request_begin" not in kinds or "request_end" not in kinds:
        fail(f"{path}: no request_begin/request_end events (kinds: {kinds})")
    print(
        f"validate_obs_json: {path}: OK ({len(records)} events, "
        f"kinds: {', '.join(kinds)})"
    )


def main() -> None:
    if len(sys.argv) not in (3, 4):
        fail(
            "usage: validate_obs_json.py <metrics.json> <trace.json> "
            "[events.jsonl]"
        )
    validate_metrics(sys.argv[1])
    validate_trace(sys.argv[2])
    if len(sys.argv) == 4:
        validate_events(sys.argv[3])


if __name__ == "__main__":
    main()
