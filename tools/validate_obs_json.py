#!/usr/bin/env python3
"""Validate the observability JSON dumps produced by --metrics / --trace.

Usage: validate_obs_json.py <metrics.json> <trace.json>

Checks that the metrics snapshot parses, contains the counters the
instrumented analysis engine must have bumped (DTMC solve counts, cache
traffic) and well-formed histograms, and that the trace file is a valid
Chrome trace_event dump with the required keys on every event.  Used by
the CI observability smoke step; exits non-zero with a message on the
first violation.
"""
import json
import sys


def fail(message: str) -> None:
    print(f"validate_obs_json: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def validate_metrics(path: str) -> None:
    with open(path, encoding="utf-8") as f:
        data = json.load(f)

    for section in ("counters", "gauges", "histograms", "derived"):
        if section not in data:
            fail(f"{path}: missing section '{section}'")

    counters = data["counters"]
    if counters.get("hart.path_solve.count", 0) <= 0:
        fail(f"{path}: expected hart.path_solve.count > 0")
    lookups = counters.get("hart.path_cache.hits", 0) + counters.get(
        "hart.path_cache.misses", 0
    )
    if lookups <= 0:
        fail(f"{path}: expected path-cache traffic (hits + misses > 0)")
    if "cache_hit_ratio" in data["derived"]:
        ratio = data["derived"]["cache_hit_ratio"]
        if not 0.0 <= ratio <= 1.0:
            fail(f"{path}: cache_hit_ratio {ratio} out of [0, 1]")

    # Skeleton reuse (symbolic/numeric split): the default analysis path
    # must build at least one skeleton, refill at least as often as it
    # builds (otherwise reuse never happened), and export a sane derived
    # ratio.
    builds = counters.get("hart.skeleton.builds", 0)
    refills = counters.get("hart.skeleton.refills", 0)
    if builds <= 0:
        fail(f"{path}: expected hart.skeleton.builds > 0")
    if refills < builds:
        fail(
            f"{path}: hart.skeleton.refills {refills} < builds {builds} "
            "(each built skeleton must serve at least one refill)"
        )
    if "skeleton_reuse_ratio" not in data["derived"]:
        fail(f"{path}: missing derived skeleton_reuse_ratio")
    reuse_ratio = data["derived"]["skeleton_reuse_ratio"]
    if not 0.0 <= reuse_ratio <= 1.0:
        fail(f"{path}: skeleton_reuse_ratio {reuse_ratio} out of [0, 1]")

    for name, hist in data["histograms"].items():
        for key in ("count", "sum", "min", "max", "buckets"):
            if key not in hist:
                fail(f"{path}: histogram '{name}' missing '{key}'")
        total = sum(b["count"] for b in hist["buckets"])
        if total != hist["count"]:
            fail(
                f"{path}: histogram '{name}' bucket counts {total} != "
                f"count {hist['count']}"
            )

    print(
        f"validate_obs_json: {path}: OK "
        f"({len(counters)} counters, {len(data['histograms'])} histograms, "
        f"{counters.get('hart.path_solve.count')} path solves)"
    )


def validate_trace(path: str) -> None:
    with open(path, encoding="utf-8") as f:
        data = json.load(f)

    events = data.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: traceEvents missing or empty")
    for event in events:
        for key in ("name", "cat", "ph", "pid", "tid", "ts", "dur"):
            if key not in event:
                fail(f"{path}: event missing '{key}': {event}")
        if event["ph"] != "X":
            fail(f"{path}: expected complete ('X') events, got {event['ph']}")
        if event["dur"] < 0 or event["ts"] < 0:
            fail(f"{path}: negative timestamp in {event}")

    names = {event["name"] for event in events}
    if "analyze_network" not in names:
        fail(f"{path}: no analyze_network span recorded (spans: {names})")
    print(f"validate_obs_json: {path}: OK ({len(events)} events, spans: "
          f"{', '.join(sorted(names))})")


def main() -> None:
    if len(sys.argv) != 3:
        fail("usage: validate_obs_json.py <metrics.json> <trace.json>")
    validate_metrics(sys.argv[1])
    validate_trace(sys.argv[2])


if __name__ == "__main__":
    main()
