// Fig. 19: reachability of all ten network paths with Is = 2 (fast
// control) vs Is = 4 (regular control) across four availabilities — fast
// control costs reachability, and more so on longer paths and worse
// links.
#include "whart/hart/network_analysis.hpp"

#include "bench_common.hpp"

int main() {
  using namespace whart;
  using report::Table;

  bench::print_header("Fig. 19 — fast control: Is = 2 vs Is = 4",
                      "typical network, eta_a");

  for (double label : {0.903, 0.83, 0.774, 0.693}) {
    const net::TypicalNetwork t =
        net::make_typical_network(bench::paper_link(label));
    const hart::NetworkMeasures slow = hart::analyze_network(
        t.network, t.paths, t.eta_a, t.superframe, 4);
    const hart::NetworkMeasures fast = hart::analyze_network(
        t.network, t.paths, t.eta_a, t.superframe, 2);

    std::cout << "\npi(up) = " << Table::fixed(label, 3) << ":\n";
    Table table({"path", "hops", "R (Is=4)", "R (Is=2)", "gap"});
    for (std::size_t p = 0; p < 10; ++p) {
      const double r4 = slow.per_path[p].reachability;
      const double r2 = fast.per_path[p].reachability;
      table.add_row({std::to_string(p + 1),
                     std::to_string(t.paths[p].hop_count()),
                     Table::fixed(r4, 4), Table::fixed(r2, 4),
                     Table::fixed(r4 - r2, 4)});
    }
    table.print(std::cout);
  }

  std::cout << "\nshape: the Is = 2 bars sit below the Is = 4 bars "
               "everywhere; the gap grows with hop count and with "
               "decreasing availability (paper Fig. 19).\n";
  return 0;
}
