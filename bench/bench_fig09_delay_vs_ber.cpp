// Fig. 9: delay distributions of the example path for four bit error
// rates (3e-4, 2e-4, 1e-4, 5e-5), i.e. availabilities 0.774..0.948.
#include "bench_common.hpp"

int main() {
  using namespace whart;
  using report::Table;

  bench::print_header(
      "Fig. 9 — influence of link availability (BER) on the delay "
      "distribution",
      "3-hop example path, Is = 4; one column per BER curve");

  const double bers[] = {3e-4, 2e-4, 1e-4, 5e-5};

  std::vector<hart::PathMeasures> measures;
  Table header({"BER", "pi(up)", "tau(70)", "tau(210)", "tau(350)",
                "tau(490)"});
  for (double ber : bers) {
    const link::LinkModel link = link::LinkModel::from_ber(ber);
    const hart::PathModel model(bench::example_path(4));
    const hart::SteadyStateLinks links(3, link);
    const hart::PathMeasures m = compute_path_measures(model, links);
    header.add_row({Table::scientific(ber, 0),
                    Table::fixed(link.steady_state_availability(), 3),
                    Table::fixed(m.delay_distribution[0], 4),
                    Table::fixed(m.delay_distribution[1], 4),
                    Table::fixed(m.delay_distribution[2], 4),
                    Table::fixed(m.delay_distribution[3], 4)});
    measures.push_back(m);
  }
  header.print(std::cout);

  std::cout
      << "\npaper data cursors: tau(210) = 0.3228 at pi = 0.774; "
         "tau(210) = 0.1332 and tau(350) = 0.1459 appear on the flatter "
         "curves\n"
      << "paper narrative: at pi = 0.948, 98.5% of messages arrive within "
         "200 ms; at pi = 0.774 only 77.8%\n";
  const auto head2 = [](const hart::PathMeasures& m) {
    return m.delay_distribution[0] + m.delay_distribution[1];
  };
  std::cout << "model: P(delay <= 210ms | received) at pi = 0.948: "
            << Table::percent(head2(measures[3]), 1)
            << " (paper: 98.5%); at pi = 0.774: "
            << Table::percent(head2(measures[0]), 1) << "\n"
            << "model: tau(490ms) at pi = 0.774: "
            << Table::percent(measures[0].delay_distribution[3], 1)
            << " (paper: \"more than 5.3%\")\n";
  return 0;
}
