// Extension ablation (standard feature the paper omits): dedicated retry
// slots.  Real WirelessHART schedules often allocate a second slot per
// hop per frame; the exact DTMC prices the benefit — how much
// reachability one extra slot per hop buys, versus doubling the
// reporting interval, at equal slot budgets.
#include <numeric>

#include "whart/hart/path_analysis.hpp"

#include "bench_common.hpp"

namespace {

using namespace whart;

double reach(const hart::PathModelConfig& config, double availability) {
  const hart::PathModel model(config);
  const hart::SteadyStateLinks links(
      config.hop_count(), link::LinkModel::from_availability(availability));
  const auto result = model.analyze(links);
  return std::accumulate(result.cycle_probabilities.begin(),
                         result.cycle_probabilities.end(), 0.0);
}

}  // namespace

int main() {
  using namespace whart;
  using report::Table;

  bench::print_header(
      "Extension — dedicated retry slots vs longer reporting intervals",
      "3-hop path; retry config uses 6 slots/frame, the alternatives use "
      "3; equal-budget comparison at Is = 2 (retries) vs Is = 4 (twice "
      "the cycles)");

  // 3 hops in a 7-slot frame: primaries 1/3/5, retries 2/4/6.
  hart::PathModelConfig base;
  base.hop_slots = {1, 3, 5};
  base.superframe = net::SuperframeConfig::symmetric(7);
  base.reporting_interval = 2;
  hart::PathModelConfig retried = base;
  retried.retry_slots = {2, 4, 6};
  hart::PathModelConfig longer = base;
  longer.reporting_interval = 4;

  Table table({"pi(up)", "R (Is=2, no retries)", "R (Is=2, retry slots)",
               "R (Is=4, no retries)"});
  for (double pi : {0.65, 0.70, 0.75, 0.80, 0.85, 0.90, 0.95}) {
    table.add_row({Table::fixed(pi, 2), Table::fixed(reach(base, pi), 4),
                   Table::fixed(reach(retried, pi), 4),
                   Table::fixed(reach(longer, pi), 4)});
  }
  table.print(std::cout);

  std::cout
      << "\nreading: retry slots and interval doubling both give each hop "
         "~2x the attempts, but retries chain within the SAME cycle — a "
         "message can recover from a failure and still complete the "
         "remaining hops this frame.  The DTMC shows retries strictly "
         "dominate at equal attempt budgets (e.g. 0.924 vs 0.883 at "
         "pi = 0.65) while also halving the deadline.\n"
      << "slot cost: retries spend schedule slots (6 vs 3 per frame); "
         "interval doubling spends latency. The model lets the network "
         "manager price both.\n";
  return 0;
}
