// Fig. 15: expected delays of all ten paths under schedule eta_a
// (pi(up) = 0.83); overall mean E[Gamma] = 235 ms, bottleneck path 10 at
// ~421 ms.
#include "whart/hart/network_analysis.hpp"
#include "whart/report/histogram.hpp"

#include "bench_common.hpp"

int main() {
  using namespace whart;
  using report::Table;

  bench::print_header("Fig. 15 — expected path delays under eta_a",
                      "typical network, Is = 4, pi(up) = 0.83");

  const net::TypicalNetwork t =
      net::make_typical_network(bench::paper_link(0.83));
  const hart::NetworkMeasures m = hart::analyze_network(
      t.network, t.paths, t.eta_a, t.superframe, 4);

  std::vector<std::string> labels;
  std::vector<double> values;
  for (std::size_t p = 0; p < 10; ++p) {
    labels.push_back("path " + std::to_string(p + 1));
    values.push_back(m.per_path[p].expected_delay_ms);
  }
  report::print_histogram(std::cout, labels, values);

  std::cout << "\nE[Gamma] = " << Table::fixed(m.mean_delay_ms, 1)
            << " ms (paper: 235 ms)\n"
            << "bottleneck: path " << m.bottleneck_by_delay + 1
            << " at "
            << Table::fixed(m.per_path[m.bottleneck_by_delay]
                                .expected_delay_ms,
                            1)
            << " ms (paper: path 10 at 421.409 ms)\n";
  return 0;
}
