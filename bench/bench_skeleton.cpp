// Symbolic/numeric split benchmarks (google-benchmark): the skeleton
// refill path of DESIGN.md §12 against per-point fresh builds.
//
//   BM_SkeletonBuild      cost of one symbolic phase (the calibration
//                         benchmark of the CI gate — machine-speed
//                         normalization only)
//   BM_AvailabilitySweep  a 64-point availability sweep with the reuse
//                         switch as the LAST argument (0 = fresh build
//                         per point, 1 = one skeleton + numeric refills);
//                         tools/check_bench_regression.py pairs .../0
//                         against .../1 and asserts the >= 5x speedup
//   BM_RefillSteadyState  a warm skeleton refill in isolation, with a
//                         binary-local operator-new override counting
//                         every heap byte — the `steady_state_bytes`
//                         user counter must be 0 (gated in CI via
//                         --require-counter-max)
//
// All runs are single-threaded: the point is the per-solve cost, not the
// fan-out.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "whart/common/obs.hpp"
#include "whart/hart/link_probability.hpp"
#include "whart/hart/path_model.hpp"
#include "whart/hart/sweep.hpp"

// GCC pairs the replaced operator new with the library free() at inlined
// call sites and reports a mismatch; the replacement below routes every
// new through malloc, so new/free pairing is correct by construction.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

namespace {

/// Heap bytes requested since process start.  Relaxed ordering: the
/// benchmark reads it on one thread around a serial loop.
std::atomic<std::size_t> g_alloc_bytes{0};

}  // namespace

// Binary-local global allocator override: counts every operator-new
// byte so the steady-state refill loop can prove it allocates nothing.
void* operator new(std::size_t size) {
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, std::align_val_t align) {
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(align), size) != 0)
    throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(align), size) != 0)
    throw std::bad_alloc();
  return p;
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

using namespace whart;

hart::PathModelConfig path_config(std::uint32_t hops, std::uint32_t fup,
                                  std::uint32_t is) {
  hart::PathModelConfig config;
  for (std::uint32_t h = 0; h < hops; ++h) config.hop_slots.push_back(h + 1);
  config.superframe = net::SuperframeConfig::symmetric(fup);
  config.reporting_interval = is;
  return config;
}

// One symbolic phase: Algorithm 1 plus the sparsity-pattern capture.
// Doubles as the CI calibration benchmark.
void BM_SkeletonBuild(benchmark::State& state) {
  const auto hops = static_cast<std::uint32_t>(state.range(0));
  const hart::PathModelConfig config = path_config(hops, 20, 4);
  for (auto _ : state) {
    const hart::PathModelSkeleton skeleton(config);
    benchmark::DoNotOptimize(skeleton.config().hop_count());
  }
}
BENCHMARK(BM_SkeletonBuild)->Arg(4);

// The headline workload: a grid of availabilities on one schedule
// shape.  Args are (grid points, reuse): reuse 0 rebuilds the model at
// every point (the pre-split behaviour), reuse 1 builds one skeleton
// and refills values per point.  Results are bitwise identical (the
// refill leg of the differential oracle enforces this); only the time
// differs.
void BM_AvailabilitySweep(benchmark::State& state) {
  const auto points = static_cast<std::size_t>(state.range(0));
  const bool reuse = state.range(1) != 0;
  const hart::PathModelConfig config = path_config(4, 20, 4);
  const std::vector<double> grid = hart::linspace(0.65, 0.99, points);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hart::sweep_availability(config, grid, 1,
                                 hart::TransientKernel::kSuperframeProduct,
                                 reuse)
            .points.back()
            .measures.reachability);
  }
}
BENCHMARK(BM_AvailabilitySweep)->Args({64, 0})->Args({64, 1});

// A warm refill in isolation, with the allocation meter around the
// timed loop: after the cold pass primes the workspace, the steady
// state must touch the heap zero times.
void BM_RefillSteadyState(benchmark::State& state) {
  const hart::PathModelConfig config = path_config(4, 20, 8);
  const hart::PathModelSkeleton skeleton(config);
  const hart::SteadyStateLinks links(
      4, link::LinkModel::from_availability(0.83));
  hart::PathAnalysisOptions options;
  options.kernel = hart::TransientKernel::kSuperframeProduct;
  hart::SolveWorkspace workspace;
  // Cold passes: prime the workspace, the result buffers and the obs
  // handle caches so the timed loop starts warm.
  skeleton.analyze_into(links, options, workspace, workspace.scratch_result);
  skeleton.analyze_into(links, options, workspace, workspace.scratch_result);

  const std::size_t before = g_alloc_bytes.load(std::memory_order_relaxed);
  for (auto _ : state) {
    skeleton.analyze_into(links, options, workspace,
                          workspace.scratch_result);
    benchmark::DoNotOptimize(
        workspace.scratch_result.expected_transmissions);
  }
  const auto delta = static_cast<double>(
      g_alloc_bytes.load(std::memory_order_relaxed) - before);
  state.counters["steady_state_bytes"] = delta;
  WHART_GAUGE_SET("hart.skeleton.steady_bytes", delta);
}
BENCHMARK(BM_RefillSteadyState);

}  // namespace

BENCHMARK_MAIN();
