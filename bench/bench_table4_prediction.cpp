// Table IV: performance prediction by path composition (Section VI-E).
// Node 5 joins the network and can relay via node 3 (existing 2-hop path,
// measured Eb/N0 = 7) or node 4 (existing 1-hop path, Eb/N0 = 6).
#include "whart/hart/analytic.hpp"
#include "whart/hart/composition.hpp"

#include "bench_common.hpp"

int main() {
  using namespace whart;
  using report::Table;

  bench::print_header(
      "Table IV — route prediction by path composition (Eq. 12)",
      "existing paths at pi(up) = 0.83, Is = 4; peer SNR measured via "
      "pilot packages");

  const auto g1 = hart::analytic_cycle_probabilities(
      2, bench::paper_link(0.83).steady_state_availability(), 4);
  const auto g2 = hart::analytic_cycle_probabilities(
      1, bench::paper_link(0.83).steady_state_availability(), 4);

  const hart::RoutePrediction alpha =
      hart::predict_route(phy::EbN0::from_linear(7.0), g1, 2, 4);
  const hart::RoutePrediction beta =
      hart::predict_route(phy::EbN0::from_linear(6.0), g2, 1, 4);

  const auto print_route = [](const char* name,
                              const hart::RoutePrediction& route,
                              const char* paper_gc, double paper_r) {
    std::cout << name << ": gc = [";
    for (std::size_t i = 0; i < route.composed_cycles.size(); ++i)
      std::cout << (i ? ", " : "")
                << Table::fixed(route.composed_cycles[i], 4);
    std::cout << "]  R = " << Table::percent(route.reachability, 2)
              << "  hops = " << route.total_hops << "\n"
              << "   paper: gc = " << paper_gc
              << "  R = " << Table::fixed(paper_r, 2) << "%\n";
  };
  print_route("path alpha (via node 3, Eb/N0 = 7)", alpha,
              "[0.6274, 0.2694, 0.0784, 0.0193]", 99.46);
  print_route("path beta  (via node 4, Eb/N0 = 6)", beta,
              "[0.6573, 0.2485, 0.0707, 0.0180]", 99.45);

  const std::size_t best = hart::best_route({alpha, beta});
  std::cout << "\ndecision: reachabilities tie within tolerance; the "
               "route with fewer hops wins => path "
            << (best == 0 ? "alpha" : "beta")
            << " (paper: beta preferred — one fewer slot, ~10 ms less "
               "expected delay)\n";

  // Cross-check the convolution against rebuilding the composed path.
  const auto direct = hart::analytic_cycle_probabilities(
      std::vector<double>{
          link::LinkModel::from_snr(phy::EbN0::from_linear(7.0))
              .steady_state_availability(),
          bench::paper_link(0.83).steady_state_availability(),
          bench::paper_link(0.83).steady_state_availability()},
      4);
  double max_diff = 0.0;
  for (std::size_t i = 0; i < 4; ++i)
    max_diff = std::max(max_diff,
                        std::abs(direct[i] - alpha.composed_cycles[i]));
  std::cout << "ablation: |composed - directly rebuilt 3-hop model| <= "
            << Table::scientific(max_diff, 2)
            << " (Eq. 12 is exact, no DTMC rebuild needed)\n";
  return 0;
}
