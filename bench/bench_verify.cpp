// Verification harness throughput (not a paper figure): scenarios
// checked per second by the invariant library and the three-way
// differential oracle, with and without the Monte-Carlo leg, plus the
// cost of shrinking an injected failure.  Run before/after solver
// changes to see what a fuzzing budget buys.
#include <chrono>

#include "bench_common.hpp"
#include "whart/verify/runner.hpp"
#include "whart/verify/shrink.hpp"

int main() {
  using namespace whart;
  using report::Table;
  using Clock = std::chrono::steady_clock;

  bench::print_header(
      "Verification harness — fuzzing and shrinking throughput",
      "seed 1, generator defaults; simulator leg 4000 intervals x 4 "
      "shards");

  Table table({"campaign", "scenarios", "stat checks", "wall ms",
               "scenarios/s"});
  const auto run = [&](const char* name, bool simulate, std::uint64_t runs) {
    verify::VerifyConfig config;
    config.seed = 1;
    config.runs = runs;
    config.oracle.run_simulation = simulate;
    const auto start = Clock::now();
    const verify::VerifyReport report = verify::run_verification(config);
    const double ms = std::chrono::duration<double, std::milli>(
                          Clock::now() - start)
                          .count();
    table.add_row({name, std::to_string(report.scenarios_run),
                   std::to_string(report.statistical_checks),
                   Table::fixed(ms, 1),
                   Table::fixed(1000.0 * static_cast<double>(runs) / ms, 0)});
    return report.ok();
  };
  bool ok = run("deterministic legs only", false, 2000);
  ok = run("with simulator leg", true, 500) && ok;

  {
    // Shrinking: inject a link bias and time the minimization.
    verify::OracleConfig oracle;
    oracle.injection = verify::Injection::kLinkBias;
    oracle.run_simulation = false;
    const verify::InvariantOptions invariants;
    const verify::StillFails predicate = [&](const verify::Scenario& s) {
      return verify::has_findings(
          verify::check_scenario(s, invariants, oracle));
    };
    const verify::ScenarioGenerator generator;
    std::uint64_t seed = 1;
    verify::Scenario failing = generator.generate(seed);
    while (!predicate(failing)) failing = generator.generate(++seed);
    const auto start = Clock::now();
    const verify::ShrinkResult result =
        verify::shrink_scenario(failing, predicate);
    const double ms = std::chrono::duration<double, std::milli>(
                          Clock::now() - start)
                          .count();
    table.add_row({"shrink injected link bias",
                   std::to_string(result.candidates_tried) + " candidates",
                   std::to_string(result.steps_taken) + " steps",
                   Table::fixed(ms, 1), "-"});
  }

  table.print(std::cout);
  std::cout << (ok ? "\nall campaigns clean\n"
                   : "\nWARNING: campaign reported findings\n");
  return ok ? 0 : 1;
}
