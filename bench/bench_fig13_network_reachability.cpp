// Fig. 13: reachability of all ten paths of the typical WirelessHART
// network for four link availabilities.
#include "whart/hart/network_analysis.hpp"

#include "bench_common.hpp"

int main() {
  using namespace whart;
  using report::Table;

  bench::print_header(
      "Fig. 13 — reachability of all paths of the typical network",
      "Fig. 12 topology, schedule eta_a, Is = 4; one column per pi(up)");

  const double labels[] = {0.903, 0.83, 0.774, 0.693};

  std::vector<hart::NetworkMeasures> measures;
  for (double label : labels) {
    const net::TypicalNetwork t =
        net::make_typical_network(bench::paper_link(label));
    measures.push_back(hart::analyze_network(t.network, t.paths, t.eta_a,
                                             t.superframe, 4));
  }

  Table table({"path", "hops", "R @0.903", "R @0.83", "R @0.774",
               "R @0.693"});
  const net::TypicalNetwork t = net::make_typical_network();
  for (std::size_t p = 0; p < 10; ++p) {
    std::vector<std::string> row{std::to_string(p + 1),
                                 std::to_string(t.paths[p].hop_count())};
    for (std::size_t a = 0; a < 4; ++a)
      row.push_back(Table::fixed(measures[a].per_path[p].reachability, 4));
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  std::cout << "\npaper narrative: at 0.903 every path has R > 0.999 "
               "(rounded); at 0.693 the three-hop paths drop to ~0.93 — "
               "one lost message in 13.\n"
            << "model: worst path at 0.693: R = "
            << Table::fixed(
                   measures[3]
                       .per_path[measures[3].bottleneck_by_reachability]
                       .reachability,
                   4)
            << " => E[intervals to first loss] = "
            << Table::fixed(measures[3]
                                .per_path[measures[3]
                                              .bottleneck_by_reachability]
                                .expected_intervals_to_first_loss,
                            1)
            << "\n";
  return 0;
}
