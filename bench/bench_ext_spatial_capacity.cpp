// Extension study (not in the paper): how far can a WirelessHART mesh
// stretch?  Spatially-embedded plants of growing radius, links derived
// from radio physics (path loss -> Eb/N0 -> BER -> pfl), measures from
// the exact DTMC.  Reports, per radius, the hop-depth mix, the worst
// path's reachability and the network mean delay — the zone where the
// HART "<= 4 hops" guideline starts to bind.
#include "whart/hart/network_analysis.hpp"
#include "whart/net/spatial_plant.hpp"

#include "bench_common.hpp"

int main() {
  using namespace whart;
  using report::Table;

  bench::print_header(
      "Extension — mesh capacity vs plant radius (spatial model)",
      "14 devices, path-loss exponent 3.0, Is = 4, 5 seeds per radius");

  Table table({"radius (m)", "mean max hops", "mean worst R",
               "mean E[Gamma] ms", "share of 1-hop devices"});
  for (double radius : {40.0, 80.0, 120.0, 160.0, 200.0, 240.0}) {
    double worst_r = 0.0;
    double mean_delay = 0.0;
    double max_hops = 0.0;
    double one_hop_share = 0.0;
    const int seeds = 5;
    for (int seed = 1; seed <= seeds; ++seed) {
      net::SpatialPlantProfile profile;
      profile.device_count = 14;
      profile.plant_radius_m = radius;
      profile.propagation.exponent = 3.0;
      profile.seed = static_cast<std::uint64_t>(seed);
      const net::SpatialPlant plant = generate_spatial_plant(profile);
      const hart::NetworkMeasures m = hart::analyze_network(
          plant.network, plant.paths, plant.schedule, plant.superframe, 4);

      std::size_t hops = 0;
      std::size_t one_hop = 0;
      for (const net::Path& path : plant.paths) {
        hops = std::max(hops, path.hop_count());
        if (path.hop_count() == 1) ++one_hop;
      }
      worst_r += m.per_path[m.bottleneck_by_reachability].reachability;
      mean_delay += m.mean_delay_ms;
      max_hops += static_cast<double>(hops);
      one_hop_share +=
          static_cast<double>(one_hop) / plant.paths.size();
    }
    table.add_row({Table::fixed(radius, 0),
                   Table::fixed(max_hops / seeds, 1),
                   Table::percent(worst_r / seeds, 2),
                   Table::fixed(mean_delay / seeds, 1),
                   Table::percent(one_hop_share / seeds, 0)});
  }
  table.print(std::cout);

  std::cout << "\nshape: small plants are single-hop and near-perfect; as "
               "the radius approaches the radio range the mesh deepens, "
               "the worst-path reachability sags and delays stretch — "
               "the regime where the paper's hop-count guideline and "
               "repeater placement matter.\n";
  return 0;
}
