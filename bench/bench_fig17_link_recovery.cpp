// Fig. 17: transient recovery of a link from a failure (starting DOWN)
// for pfl = 0.184 and pfl = 0.05, prc = 0.9 — back at steady state
// almost immediately thanks to channel hopping.
#include "bench_common.hpp"

int main() {
  using namespace whart;
  using report::Table;

  bench::print_header("Fig. 17 — link recovery from a transient failure",
                      "two-state link DTMC, prc = 0.9, initial state DOWN");

  const double pfls[] = {0.184, 0.05};

  Table table({"slot", "p_up (pfl=0.184)", "steady (0.184)",
               "p_up (pfl=0.05)", "steady (0.05)"});
  for (std::uint64_t t = 0; t <= 6; ++t) {
    std::vector<std::string> row{std::to_string(t)};
    for (double pfl : pfls) {
      const link::LinkModel link(pfl, 0.9);
      row.push_back(Table::fixed(
          link.up_probability_after(link::LinkState::kDown, t), 4));
      row.push_back(Table::fixed(link.steady_state_availability(), 4));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  for (double pfl : pfls) {
    const link::LinkModel link(pfl, 0.9);
    std::cout << "slots to within 1e-3 of steady state (pfl = " << pfl
              << "): " << link.slots_to_steady_state(1e-3) << "\n";
  }
  std::cout << "paper: \"the link returns to its steady-state almost "
               "immediately\" — transient errors barely affect "
               "performance.\n";
  return 0;
}
