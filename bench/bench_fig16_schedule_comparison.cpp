// Fig. 16: expected delays under eta_a (short paths first) vs eta_b (long
// paths first): eta_b eliminates the path-10 bottleneck (421 -> ~291 ms)
// at the cost of a slightly higher overall mean (235 -> ~272 ms).
#include "whart/hart/network_analysis.hpp"

#include "bench_common.hpp"

int main() {
  using namespace whart;
  using report::Table;

  bench::print_header("Fig. 16 — expected delays: eta_a vs eta_b",
                      "typical network, Is = 4, pi(up) = 0.83");

  const net::TypicalNetwork t =
      net::make_typical_network(bench::paper_link(0.83));
  const hart::NetworkMeasures a = hart::analyze_network(
      t.network, t.paths, t.eta_a, t.superframe, 4);
  const hart::NetworkMeasures b = hart::analyze_network(
      t.network, t.paths, t.eta_b, t.superframe, 4);

  Table table({"path", "hops", "E[tau] eta_a (ms)", "E[tau] eta_b (ms)"});
  for (std::size_t p = 0; p < 10; ++p) {
    table.add_row({std::to_string(p + 1),
                   std::to_string(t.paths[p].hop_count()),
                   Table::fixed(a.per_path[p].expected_delay_ms, 1),
                   Table::fixed(b.per_path[p].expected_delay_ms, 1)});
  }
  table.print(std::cout);

  const auto spread = [](const hart::NetworkMeasures& m) {
    double lo = 1e18;
    double hi = 0.0;
    for (const auto& p : m.per_path) {
      lo = std::min(lo, p.expected_delay_ms);
      hi = std::max(hi, p.expected_delay_ms);
    }
    return hi - lo;
  };

  std::cout << "\nE[Gamma]: eta_a = " << Table::fixed(a.mean_delay_ms, 1)
            << " ms (paper 235), eta_b = "
            << Table::fixed(b.mean_delay_ms, 1) << " ms (paper 272)\n"
            << "path 10: " << Table::fixed(a.per_path[9].expected_delay_ms, 1)
            << " -> " << Table::fixed(b.per_path[9].expected_delay_ms, 1)
            << " ms (paper: 421.4 -> ~291)\n"
            << "new bottleneck under eta_b: path "
            << b.bottleneck_by_delay + 1 << " ("
            << t.paths[b.bottleneck_by_delay].hop_count() << " hops) at "
            << Table::fixed(
                   b.per_path[b.bottleneck_by_delay].expected_delay_ms, 1)
            << " ms (paper: a two-hop path at 317.95 ms)\n"
            << "delay spread: eta_a = " << Table::fixed(spread(a), 1)
            << " ms, eta_b = " << Table::fixed(spread(b), 1)
            << " ms (eta_b balances the delays)\n";
  return 0;
}
