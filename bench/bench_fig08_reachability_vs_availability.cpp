// Fig. 8: reachability of the example path as a function of the
// stationary link availability (0.65..0.95).
#include "bench_common.hpp"

int main() {
  using namespace whart;
  using report::Table;

  bench::print_header(
      "Fig. 8 — influence of link availability on reachability",
      "3-hop example path, Is = 4; paper data cursors at 5 availabilities");

  const struct {
    double label;
    double paper;
  } cursors[] = {{0.693, 0.924},
                 {0.774, 0.9737},
                 {0.83, 0.9907},
                 {0.903, 0.9989},
                 {0.948, 0.9999}};

  Table table({"pi(up)", "R (paper)", "R (model)"});
  for (const auto& cursor : cursors) {
    const hart::PathMeasures m = bench::example_measures(cursor.label);
    table.add_row({Table::fixed(cursor.label, 3),
                   Table::fixed(cursor.paper, 4),
                   Table::fixed(m.reachability, 4)});
  }
  table.print(std::cout);

  std::cout << "\nfull curve (availability sweep):\n";
  Table curve({"pi(up)", "R"});
  for (double pi = 0.65; pi <= 0.9501; pi += 0.025) {
    const hart::PathModel model(bench::example_path(4));
    const hart::SteadyStateLinks links(
        3, link::LinkModel::from_availability(pi));
    curve.add_row({Table::fixed(pi, 3),
                   Table::fixed(compute_path_measures(model, links)
                                    .reachability,
                                5)});
  }
  curve.print(std::cout);
  return 0;
}
