// Ablation (beyond the paper): the paper compares two fixed schedules,
// eta_a (short paths first) and eta_b (long paths first).  The penalty-
// ordered optimizer generalizes eta_b to inhomogeneous links: chains are
// ordered by cycle_slots * E[extra cycles], which provably minimizes the
// worst-case expected delay among contiguous layouts.  On homogeneous
// links it reproduces eta_b exactly; once link qualities differ, it
// wins.
#include "whart/hart/network_analysis.hpp"
#include "whart/hart/schedule_optimizer.hpp"

#include "bench_common.hpp"

namespace {

using namespace whart;

struct PolicyResult {
  double mean = 0.0;
  double worst = 0.0;
  std::size_t worst_path = 0;
};

PolicyResult evaluate(const net::Network& network,
                      const std::vector<net::Path>& paths,
                      const net::Schedule& schedule,
                      net::SuperframeConfig superframe) {
  const hart::NetworkMeasures m =
      hart::analyze_network(network, paths, schedule, superframe, 4);
  return PolicyResult{
      m.mean_delay_ms,
      m.per_path[m.bottleneck_by_delay].expected_delay_ms,
      m.bottleneck_by_delay};
}

void report_scenario(const char* scenario, const net::TypicalNetwork& t) {
  using whart::report::Table;
  std::cout << "\n" << scenario << ":\n";
  const net::Schedule optimized = hart::build_min_worst_delay_schedule(
      t.network, t.paths, t.superframe, 4);
  Table table({"policy", "E[Gamma] ms", "worst E[tau] ms", "worst path"});
  const auto add = [&](const char* name, const net::Schedule& schedule) {
    const PolicyResult r =
        evaluate(t.network, t.paths, schedule, t.superframe);
    table.add_row({name, Table::fixed(r.mean, 1), Table::fixed(r.worst, 1),
                   std::to_string(r.worst_path + 1)});
  };
  add("eta_a (short first)", t.eta_a);
  add("eta_b (long first)", t.eta_b);
  add("penalty-ordered optimizer", optimized);
  table.print(std::cout);
}

}  // namespace

int main() {
  using namespace whart;

  bench::print_header(
      "Ablation — scheduling policies on the typical network",
      "eta_a vs eta_b vs the penalty-ordered worst-delay optimizer, "
      "Is = 4");

  // Scenario 1: homogeneous links (the paper's setting) — the optimizer
  // must coincide with eta_b.
  report_scenario("homogeneous links, pi(up) = 0.83",
         net::make_typical_network(bench::paper_link(0.83)));

  // Scenario 2: inhomogeneous links — the 2-hop path via n4 is lossy, so
  // hop count no longer predicts the retry penalty.
  net::TypicalNetwork noisy =
      net::make_typical_network(link::LinkModel::from_availability(0.93));
  const auto n4 = *noisy.network.find_node("n4");
  const auto n1 = *noisy.network.find_node("n1");
  noisy.network.set_link_model(*noisy.network.link_between(n4, n1),
                               link::LinkModel::from_availability(0.70));
  noisy.network.set_link_model(
      *noisy.network.link_between(n1, net::kGateway),
      link::LinkModel::from_availability(0.75));
  report_scenario("inhomogeneous links (lossy n4 -> n1 -> G branch)", noisy);

  std::cout << "\nconclusion: with equal links the optimizer reduces to "
               "the paper's eta_b; with unequal links ordering by retry "
               "penalty (not hop count) minimizes the worst expected "
               "delay.\n";
  return 0;
}
