// Fig. 18: message blocks for a one-hop path with pi(up) = 0.903 over a
// four-cycle observation window, for reporting intervals 1, 2 and 4:
// shorter intervals produce more messages, each with lower reachability.
#include "whart/hart/fast_control.hpp"

#include "bench_common.hpp"

int main() {
  using namespace whart;
  using report::Table;

  bench::print_header(
      "Fig. 18 — messages delivered per reporting interval choice",
      "1-hop path, pi(up) = 0.903, observation window = 4 cycles");

  const double ps =
      bench::paper_link(0.903).steady_state_availability();

  for (std::uint32_t is : {1u, 2u, 4u}) {
    const auto blocks = hart::one_hop_message_blocks(ps, 4, is);
    std::cout << "Is = " << is << ": " << blocks.size()
              << " message(s) per window, each with R = "
              << Table::fixed(blocks.front().reachability, 4) << "\n";
    for (const auto& block : blocks)
      std::cout << "    born at cycle " << block.born_cycle << ": ["
                << std::string(is * 8, '#') << "] R = "
                << Table::fixed(block.reachability, 4) << "\n";
  }

  std::cout << "\npaper values: Is = 1 -> 0.903 per message; Is = 2 -> "
               "0.99; Is = 4 -> 0.999\n"
            << "trade-off: fresher data (small Is) vs per-message "
               "delivery guarantee (large Is)\n";
  return 0;
}
