// Correlated-channel solve cost (google-benchmark): the
// channel-enlarged DTMC against the i.i.d. path on the same 64-point
// availability sweep.
//
//   BM_ChannelAvailabilitySweep  args are (grid points, channel states):
//                                states 1 runs the plain i.i.d. sweep
//                                (also the CI calibration benchmark),
//                                states 2 a Gilbert-Elliott overlay and
//                                states 3 a three-state fading chain,
//                                each rescaled per point to the grid
//                                availability.  A k-state channel
//                                multiplies the per-hop state count by
//                                k, so the enlarged solve is expected to
//                                cost O(k^2) of the i.i.d. one;
//                                tools/check_bench_regression.py gates
//                                the k = 2 arm at <= 4x via
//                                --require-speedup with a fractional
//                                factor (iid/ge >= 0.25).
//
// Channel points always solve fresh (no skeleton reuse, no batching —
// the refill patterns key the i.i.d. shape), so the i.i.d. arm also
// runs with reuse off: the gate compares like against like, pure solve
// cost per point.  Single-threaded for the same reason as
// bench_skeleton: the point is the per-solve cost, not the fan-out.
#include <benchmark/benchmark.h>

#include <cstddef>
#include <cstdint>
#include <vector>

#include "whart/hart/path_model.hpp"
#include "whart/hart/sweep.hpp"
#include "whart/link/channel_model.hpp"

namespace {

using namespace whart;

hart::PathModelConfig path_config(std::uint32_t hops, std::uint32_t fup,
                                  std::uint32_t is) {
  hart::PathModelConfig config;
  for (std::uint32_t h = 0; h < hops; ++h) config.hop_slots.push_back(h + 1);
  config.superframe = net::SuperframeConfig::symmetric(fup);
  config.reporting_interval = is;
  return config;
}

// The channel template for a given per-hop state count; rescaled per
// grid point inside the sweep.  Burst parameters mirror the verify
// generator's mid-range.
const link::ChannelModel* channel_for(std::int64_t states) {
  static const link::ChannelModel ge =
      link::ChannelModel::gilbert_elliott(0.1, 0.25, 0.02, 0.7);
  static const link::ChannelModel fading = link::ChannelModel::chain(
      {0.8, 0.15, 0.05,  //
       0.2, 0.7, 0.1,    //
       0.1, 0.3, 0.6},
      {0.01, 0.3, 0.9});
  switch (states) {
    case 2:
      return &ge;
    case 3:
      return &fading;
    default:
      return nullptr;  // i.i.d.
  }
}

void BM_ChannelAvailabilitySweep(benchmark::State& state) {
  const auto points = static_cast<std::size_t>(state.range(0));
  const link::ChannelModel* channel = channel_for(state.range(1));
  const hart::PathModelConfig config = path_config(4, 20, 4);
  const std::vector<double> grid = hart::linspace(0.65, 0.99, points);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hart::sweep_availability(config, grid, 1,
                                 hart::TransientKernel::kSuperframeProduct,
                                 /*reuse_skeleton=*/false,
                                 /*batch_lanes=*/1, channel)
            .points.back()
            .measures.reachability);
  }
}
BENCHMARK(BM_ChannelAvailabilitySweep)
    ->Args({64, 1})
    ->Args({64, 2})
    ->Args({64, 3});

}  // namespace

BENCHMARK_MAIN();
