// Table II: utilization of the typical network for six availabilities.
// The paper's numbers follow the "delivered messages only" accounting
// (sum over delivered cycles of n + i - 1 attempts); the exact
// expected-attempt count from the DTMC (which also charges retries of
// eventually-discarded messages) is printed alongside.
#include "whart/hart/network_analysis.hpp"

#include "bench_common.hpp"

int main() {
  using namespace whart;
  using report::Table;

  bench::print_header("Table II — utilization vs link availability",
                      "typical network, eta_a, Is = 4");

  const struct {
    double label;
    double paper;
  } rows[] = {{0.693, 0.313}, {0.774, 0.297}, {0.83, 0.283},
              {0.903, 0.263}, {0.948, 0.25},  {0.989, 0.24}};

  Table table({"pi(up)", "U (paper)", "U (model, delivered-only)",
               "U (model, all attempts)"});
  for (const auto& row : rows) {
    const net::TypicalNetwork t =
        net::make_typical_network(bench::paper_link(row.label));
    const hart::NetworkMeasures m = hart::analyze_network(
        t.network, t.paths, t.eta_a, t.superframe, 4);
    table.add_row({Table::fixed(row.label, 3), Table::fixed(row.paper, 3),
                   Table::fixed(m.network_utilization_delivered, 3),
                   Table::fixed(m.network_utilization, 3)});
  }
  table.print(std::cout);

  std::cout << "\nshape: lower availability => more retransmissions => "
               "higher utilization (more energy per delivered sample)\n";
  return 0;
}
