// SoA batch-solve benchmarks (google-benchmark): the lane-parallel
// refill of DESIGN.md §13 against per-point scalar refills.
//
//   BM_SkeletonBuild          one symbolic phase — the calibration
//                             benchmark of the CI gate (machine-speed
//                             normalization only, same shape as
//                             bench_skeleton's)
//   BM_BatchAvailabilitySweep a 64-point availability sweep with the
//                             lane count as the LAST argument (1 =
//                             scalar refill per point, 8 = SoA batches
//                             of eight lanes); skeleton reuse is on in
//                             both, so the ratio isolates the batch
//                             core.  tools/check_bench_regression.py
//                             pairs .../1 against .../16 and asserts the
//                             >= 4x speedup recorded in BENCH_simd.json
//   BM_LaneEquivalence        solves a batch and re-solves every lane
//                             scalar, counting lanes that diverge
//                             beyond 1e-12 relative into the
//                             `lane_mismatches` user counter — pinned
//                             at 0 in CI via --require-counter-max
//
// All runs are single-threaded: the point is the per-solve cost of the
// batched numeric core, not the thread fan-out.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "whart/hart/link_probability.hpp"
#include "whart/hart/path_model.hpp"
#include "whart/hart/sweep.hpp"
#include "whart/linalg/simd.hpp"

namespace {

using namespace whart;

hart::PathModelConfig path_config(std::uint32_t hops, std::uint32_t fup,
                                  std::uint32_t is) {
  hart::PathModelConfig config;
  for (std::uint32_t h = 0; h < hops; ++h) config.hop_slots.push_back(h + 1);
  config.superframe = net::SuperframeConfig::symmetric(fup);
  config.reporting_interval = is;
  return config;
}

// Calibration benchmark: one symbolic phase, identical in shape to
// bench_skeleton's BM_SkeletonBuild so the same machine-speed anchor
// normalizes both JSON baselines.
void BM_SkeletonBuild(benchmark::State& state) {
  const auto hops = static_cast<std::uint32_t>(state.range(0));
  const hart::PathModelConfig config = path_config(hops, 20, 4);
  for (auto _ : state) {
    const hart::PathModelSkeleton skeleton(config);
    benchmark::DoNotOptimize(skeleton.config().hop_count());
  }
}
BENCHMARK(BM_SkeletonBuild)->Arg(4);

// The headline workload: the Section VI availability grid on one
// schedule shape, skeleton reuse on.  Args are (grid points, lanes):
// lanes 1 refills every point scalar, lanes 8 walks the shared patterns
// once per eight points.  Values agree to rounding (the batch arm of
// the differential oracle and the lane-equivalence battery enforce it);
// only the time differs.
void BM_BatchAvailabilitySweep(benchmark::State& state) {
  const auto points = static_cast<std::size_t>(state.range(0));
  const auto lanes = static_cast<std::size_t>(state.range(1));
  const hart::PathModelConfig config = path_config(4, 20, 4);
  const std::vector<double> grid = hart::linspace(0.65, 0.99, points);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hart::sweep_availability(config, grid, 1,
                                 hart::TransientKernel::kSuperframeProduct,
                                 true, lanes)
            .points.back()
            .measures.reachability);
  }
  state.counters["simd_width"] =
      static_cast<double>(linalg::simd::kWidth);
}
BENCHMARK(BM_BatchAvailabilitySweep)
    ->Args({64, 1})
    ->Args({64, 8})
    ->Args({64, 16});

// The solve cores in isolation (no sweep scaffolding): per-point cost
// of a warm scalar refill vs one lane of a warm batched solve.
void BM_ScalarSolve(benchmark::State& state) {
  const hart::PathModelConfig config = path_config(4, 20, 4);
  const hart::PathModelSkeleton skeleton(config);
  const hart::SteadyStateLinks links(
      4, link::LinkModel::from_availability(0.83));
  hart::PathAnalysisOptions options;
  options.kernel = hart::TransientKernel::kSuperframeProduct;
  hart::SolveWorkspace workspace;
  skeleton.analyze_into(links, options, workspace, workspace.scratch_result);
  for (auto _ : state) {
    skeleton.analyze_into(links, options, workspace,
                          workspace.scratch_result);
    benchmark::DoNotOptimize(
        workspace.scratch_result.expected_transmissions);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ScalarSolve);

void BM_BatchSolve(benchmark::State& state) {
  const auto lanes = static_cast<std::size_t>(state.range(0));
  const hart::PathModelConfig config = path_config(4, 20, 4);
  const hart::PathModelSkeleton skeleton(config);
  const std::vector<double> grid = hart::linspace(0.65, 0.99, lanes);
  std::vector<hart::SteadyStateLinks> links;
  links.reserve(lanes);
  for (const double availability : grid)
    links.emplace_back(std::vector<double>(4, availability));
  std::vector<const hart::LinkProbabilityProvider*> providers;
  providers.reserve(links.size());
  for (const hart::SteadyStateLinks& provider : links)
    providers.push_back(&provider);
  hart::PathAnalysisOptions options;
  options.kernel = hart::TransientKernel::kSuperframeProduct;
  options.batch_lanes = lanes;
  hart::BatchSolveWorkspace workspace;
  std::vector<hart::PathTransientResult> results(lanes);
  skeleton.analyze_batch_into(providers, options, workspace, results);
  for (auto _ : state) {
    skeleton.analyze_batch_into(providers, options, workspace, results);
    benchmark::DoNotOptimize(results.back().expected_transmissions);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * lanes));
}
BENCHMARK(BM_BatchSolve)->Arg(8)->Arg(16);

// Correctness-as-a-counter: solve one batch, re-solve every lane
// through the scalar refill, and count lanes whose availability-sweep
// measures drift beyond 1e-12 relative.  CI pins `lane_mismatches` at
// zero, so a lane-indexing regression fails the bench job even if no
// unit test happens to cover the offending shape.
void BM_LaneEquivalence(benchmark::State& state) {
  constexpr std::size_t kLanes = 8;
  constexpr double kTol = 1e-12;
  const hart::PathModelConfig config = path_config(4, 20, 4);
  const hart::PathModelSkeleton skeleton(config);
  const std::vector<double> grid = hart::linspace(0.65, 0.99, kLanes);

  std::vector<hart::SteadyStateLinks> links;
  links.reserve(kLanes);
  for (const double availability : grid)
    links.emplace_back(std::vector<double>(4, availability));
  std::vector<const hart::LinkProbabilityProvider*> providers;
  providers.reserve(links.size());
  for (const hart::SteadyStateLinks& provider : links)
    providers.push_back(&provider);

  hart::PathAnalysisOptions options;
  options.kernel = hart::TransientKernel::kSuperframeProduct;
  options.batch_lanes = kLanes;
  hart::BatchSolveWorkspace workspace;
  std::vector<hart::PathTransientResult> batched(kLanes);
  hart::SolveWorkspace scalar_workspace;
  hart::PathTransientResult scalar;

  double mismatches = 0.0;
  const auto close = [&](double a, double b) {
    return std::abs(a - b) <=
           kTol * std::max({1.0, std::abs(a), std::abs(b)});
  };
  for (auto _ : state) {
    skeleton.analyze_batch_into(providers, options, workspace, batched);
    for (std::size_t l = 0; l < kLanes; ++l) {
      skeleton.analyze_into(links[l], options, scalar_workspace, scalar);
      bool ok = close(batched[l].discard_probability,
                      scalar.discard_probability) &&
                close(batched[l].expected_transmissions,
                      scalar.expected_transmissions);
      for (std::size_t i = 0; ok && i < scalar.cycle_probabilities.size();
           ++i)
        ok = close(batched[l].cycle_probabilities[i],
                   scalar.cycle_probabilities[i]);
      if (!ok) mismatches += 1.0;
    }
    benchmark::DoNotOptimize(batched.back().expected_transmissions);
  }
  state.counters["lane_mismatches"] = mismatches;
}
BENCHMARK(BM_LaneEquivalence);

}  // namespace

BENCHMARK_MAIN();
