// Fig. 6: transient probabilities of the goal states of the example
// three-hop path (Fup = 7, Is = 4, pi(up) = 0.75) over the 28 uplink
// slots of one reporting interval.
#include "bench_common.hpp"

int main() {
  using namespace whart;
  using report::Table;

  bench::print_header(
      "Fig. 6 — transient probabilities of goal states (Is = 4)",
      "3-hop path, slots (3,6,7), Fup = 7, homogeneous pi(up) = 0.75");

  const hart::PathModel model(bench::example_path(4));
  const hart::SteadyStateLinks links(
      3, link::LinkModel::from_availability(0.75));
  const hart::PathTransientResult result = model.analyze(links);

  Table table({"t (slots)", "R7", "R14", "R21", "R28"});
  for (std::uint32_t t = 0; t <= 28; t += 1) {
    table.add_row({std::to_string(t),
                   Table::fixed(result.goal_trajectory[t][0], 5),
                   Table::fixed(result.goal_trajectory[t][1], 5),
                   Table::fixed(result.goal_trajectory[t][2], 5),
                   Table::fixed(result.goal_trajectory[t][3], 5)});
  }
  table.print(std::cout);

  std::cout << "\npaper data-cursor values at t = 28: R7 = 0.4219, "
               "R14 = 0.3164, R21 = 0.1582, R28 = 0.06592\n";
  std::cout << "model values at t = 28:              R7 = "
            << Table::fixed(result.cycle_probabilities[0], 5)
            << ", R14 = " << Table::fixed(result.cycle_probabilities[1], 5)
            << ", R21 = " << Table::fixed(result.cycle_probabilities[2], 5)
            << ", R28 = " << Table::fixed(result.cycle_probabilities[3], 5)
            << "\n";
  double r = 0.0;
  for (double g : result.cycle_probabilities) r += g;
  std::cout << "reachability R = " << Table::fixed(r, 5)
            << " (paper: 0.9624)\n";
  return 0;
}
