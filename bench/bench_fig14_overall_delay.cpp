// Fig. 14: the overall delay distribution of the typical network at
// pi(up) = 0.83 under schedule eta_a.
#include "whart/hart/network_analysis.hpp"
#include "whart/report/histogram.hpp"

#include "bench_common.hpp"

int main() {
  using namespace whart;
  using report::Table;

  bench::print_header(
      "Fig. 14 — overall delay distribution of the typical network",
      "Fig. 12 topology, eta_a, Is = 4, pi(up) = 0.83; Gamma = average of "
      "the ten path delay pmfs");

  const net::TypicalNetwork t =
      net::make_typical_network(bench::paper_link(0.83));
  const hart::NetworkMeasures m = hart::analyze_network(
      t.network, t.paths, t.eta_a, t.superframe, 4);

  std::vector<std::string> labels;
  std::vector<double> values;
  for (const auto& point : m.overall_delay_distribution) {
    labels.push_back(Table::fixed(point.delay_ms, 0) + " ms");
    values.push_back(point.probability);
  }
  report::print_histogram(std::cout, labels, values);

  double cumulative = 0.0;
  double first = 0.0;
  double second = 0.0;
  double third = 0.0;
  for (const auto& point : m.overall_delay_distribution) {
    cumulative += point.probability;
    if (point.delay_ms < 400.0) first = cumulative;
    if (point.delay_ms < 800.0) second = cumulative;
    if (point.delay_ms < 1200.0) third = cumulative;
  }
  std::cout << "\ncycle shares — model vs paper:\n"
            << "  received in cycle 1: " << Table::percent(first, 1)
            << " (paper 70.8%)\n"
            << "  received in cycle 2: " << Table::percent(second - first, 1)
            << " (paper 21.7%)\n"
            << "  cumulative by end of cycle 2: "
            << Table::percent(second, 1) << " (paper 92.6%)\n"
            << "  cumulative by end of cycle 3: "
            << Table::percent(third, 1) << " (paper ~98.3%)\n"
            << "  longest possible delay: "
            << Table::fixed(m.overall_delay_distribution.back().delay_ms, 0)
            << " ms (paper: 1400 ms)\n";
  return 0;
}
