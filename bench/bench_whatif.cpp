// Incremental what-if benchmarks (google-benchmark): the all-links
// what-if sweep of DESIGN.md §15 on a generated 200-device plant,
// incremental engine against full re-solves.
//
//   BM_WhatIfEngineBuild     one engine construction — baseline fan-out,
//                            skeleton sharing and product seeding (the
//                            calibration benchmark of the CI gate)
//   BM_WhatIfSweepFresh      every link moved to the probe availability
//                            and scored by a full analyze_network of the
//                            modified plant (the pre-engine behaviour)
//   BM_WhatIfSweepIncremental the same sweep through one warm engine's
//                            what_if_delta — only the paths using each
//                            link re-solve, via targeted product-row
//                            replay; tools/check_bench_regression.py
//                            pairs the two and asserts the >= 10x
//                            speedup
//
// Both sweep arms answer the identical question (the what-if unit tests
// and the incremental oracle leg pin the values to 1e-12); only the
// time differs.  All runs are single-threaded so the gate measures the
// algorithmic win, not the fan-out.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>

#include "whart/hart/network_analysis.hpp"
#include "whart/hart/what_if.hpp"
#include "whart/net/plant_generator.hpp"

namespace {

using namespace whart;

constexpr std::uint32_t kReportingInterval = 4;
constexpr double kProbeAvailability = 0.7;

net::GeneratedPlant plant_200() {
  net::PlantProfile profile;
  profile.device_count = 200;
  profile.seed = 42;
  return net::generate_plant(profile);
}

// One engine construction: the price paid once per interactive session,
// amortized over every subsequent query.  Doubles as the CI calibration
// benchmark.
void BM_WhatIfEngineBuild(benchmark::State& state) {
  const net::GeneratedPlant plant = plant_200();
  hart::WhatIfOptions options;
  options.threads = 1;
  for (auto _ : state) {
    hart::WhatIfEngine engine(plant.network, plant.paths, plant.schedule,
                              plant.superframe, kReportingInterval, options);
    benchmark::DoNotOptimize(engine.baseline().front().reachability);
  }
}
BENCHMARK(BM_WhatIfEngineBuild);

// The pre-engine behaviour: every candidate link change pays a full
// analyze_network of the modified plant.
void BM_WhatIfSweepFresh(benchmark::State& state) {
  net::GeneratedPlant plant = plant_200();
  const std::vector<net::LinkId> links = plant.network.links();
  hart::AnalysisOptions options;
  options.kernel = hart::TransientKernel::kSuperframeProduct;
  options.threads = 1;
  options.use_cache = false;  // a what-if is a fresh question every time
  for (auto _ : state) {
    double worst = 0.0;
    for (const net::LinkId link : links) {
      const link::LinkModel original = plant.network.link(link).model;
      plant.network.set_link_model(
          link, link::LinkModel::from_availability(kProbeAvailability));
      const hart::NetworkMeasures measures = hart::analyze_network(
          plant.network, plant.paths, plant.schedule, plant.superframe,
          kReportingInterval, options);
      for (const hart::PathMeasures& m : measures.per_path)
        worst = std::max(worst, m.expected_delay_ms);
      plant.network.set_link_model(link, original);
    }
    benchmark::DoNotOptimize(worst);
  }
  state.counters["links"] = static_cast<double>(links.size());
}
BENCHMARK(BM_WhatIfSweepFresh);

// The same all-links sweep through one warm incremental engine: per
// link, only the paths scheduled over it re-solve (targeted product-row
// replay); every other path's cached measures are reused.
void BM_WhatIfSweepIncremental(benchmark::State& state) {
  const net::GeneratedPlant plant = plant_200();
  hart::WhatIfOptions options;
  options.threads = 1;
  hart::WhatIfEngine engine(plant.network, plant.paths, plant.schedule,
                            plant.superframe, kReportingInterval, options);
  for (auto _ : state) {
    double worst = 0.0;
    for (const net::LinkId link : engine.links()) {
      const hart::WhatIfDelta delta =
          engine.what_if_delta(link, kProbeAvailability);
      worst = std::max(worst, delta.worst_expected_delay_ms);
    }
    benchmark::DoNotOptimize(worst);
  }
  state.counters["links"] = static_cast<double>(engine.links().size());
}
BENCHMARK(BM_WhatIfSweepIncremental);

}  // namespace

BENCHMARK_MAIN();
