// Fig. 7: delay distribution of the example path (pi(up) = 0.75, Is = 4):
// delays 70/210/350/490 ms, E[tau] = 190.8 ms.
#include "whart/report/histogram.hpp"

#include "bench_common.hpp"

int main() {
  using namespace whart;
  using report::Table;

  bench::print_header("Fig. 7 — delay distribution of the example path",
                      "3-hop path, Fup = 7, Is = 4, pi(up) = 0.75");

  const hart::PathMeasures m = bench::example_measures(0.75);

  std::vector<std::string> labels;
  for (double d : m.delays_ms) labels.push_back(Table::fixed(d, 0) + " ms");
  report::print_histogram(std::cout, labels, m.cycle_probabilities);

  std::cout << "\nE[tau] = " << Table::fixed(m.expected_delay_ms, 1)
            << " ms (paper: 190.8 ms)\n"
            << "P(delay = 70 ms) = "
            << Table::fixed(m.cycle_probabilities[0], 4)
            << " (paper: 0.4219)\n"
            << "control loop closed in one cycle (uplink x downlink): "
            << Table::fixed(m.cycle_probabilities[0] *
                                m.cycle_probabilities[0],
                            3)
            << " (paper: 0.178)\n"
            << "path utilization Up = " << Table::fixed(m.utilization, 2)
            << " (paper: 0.14)\n";
  return 0;
}
