// Performance microbenchmarks (google-benchmark): model construction and
// solution cost as the reporting interval, hop count and frame size grow,
// plus the ablations DESIGN.md calls out (forward propagation vs explicit
// DTMC vs absorbing-chain solve; composition vs rebuild), and the
// observability subsystem's own overhead (enabled vs runtime-disabled).
#include <benchmark/benchmark.h>

#include <chrono>
#include <optional>

#include "whart/common/obs.hpp"
#include "whart/hart/analytic.hpp"
#include "whart/hart/composition.hpp"
#include "whart/hart/network_analysis.hpp"
#include "whart/hart/path_model.hpp"
#include "whart/markov/absorbing.hpp"
#include "whart/markov/transient.hpp"
#include "whart/net/plant_generator.hpp"
#include "whart/net/typical_network.hpp"
#include "whart/sim/simulator.hpp"

namespace {

using namespace whart;

hart::PathModelConfig path_config(std::uint32_t hops, std::uint32_t fup,
                                  std::uint32_t is) {
  hart::PathModelConfig config;
  for (std::uint32_t h = 0; h < hops; ++h) config.hop_slots.push_back(h + 1);
  config.superframe = net::SuperframeConfig::symmetric(fup);
  config.reporting_interval = is;
  return config;
}

void BM_PathModelBuild(benchmark::State& state) {
  const auto hops = static_cast<std::uint32_t>(state.range(0));
  const auto is = static_cast<std::uint32_t>(state.range(1));
  for (auto _ : state) {
    hart::PathModel model(path_config(hops, 20, is));
    benchmark::DoNotOptimize(model.state_count());
  }
  state.SetLabel("states=" +
                 std::to_string(
                     hart::PathModel(path_config(hops, 20, is)).state_count()));
}
BENCHMARK(BM_PathModelBuild)
    ->Args({1, 4})
    ->Args({4, 4})
    ->Args({4, 16})
    ->Args({8, 64});

void BM_ForwardAnalysis(benchmark::State& state) {
  const auto hops = static_cast<std::uint32_t>(state.range(0));
  const auto is = static_cast<std::uint32_t>(state.range(1));
  const hart::PathModel model(path_config(hops, 20, is));
  const hart::SteadyStateLinks links(
      hops, link::LinkModel::from_availability(0.83));
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.analyze(links).cycle_probabilities);
  }
}
BENCHMARK(BM_ForwardAnalysis)
    ->Args({1, 4})
    ->Args({4, 4})
    ->Args({4, 16})
    ->Args({8, 64});

// Ablation: explicit-DTMC transient iteration does the same work on the
// materialized chain (sparse matrix-vector products).
void BM_ExplicitDtmcAnalysis(benchmark::State& state) {
  const auto hops = static_cast<std::uint32_t>(state.range(0));
  const auto is = static_cast<std::uint32_t>(state.range(1));
  const hart::PathModel model(path_config(hops, 20, is));
  const hart::SteadyStateLinks links(
      hops, link::LinkModel::from_availability(0.83));
  const markov::Dtmc dtmc = model.to_dtmc(links);
  for (auto _ : state) {
    benchmark::DoNotOptimize(markov::distribution_after(
        dtmc, markov::point_distribution(dtmc.num_states(), 0),
        model.config().horizon()));
  }
}
BENCHMARK(BM_ExplicitDtmcAnalysis)->Args({4, 4})->Args({4, 16});

// Ablation: the absorbing-chain (fundamental matrix) solve is O(n^3) in
// the transient-state count — exact but far costlier than forward
// propagation on the layered chain.
void BM_AbsorbingSolve(benchmark::State& state) {
  const auto is = static_cast<std::uint32_t>(state.range(0));
  const hart::PathModel model(path_config(3, 20, is));
  const hart::SteadyStateLinks links(
      3, link::LinkModel::from_availability(0.83));
  const markov::Dtmc dtmc = model.to_dtmc(links);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        markov::analyze_absorbing(dtmc).absorption_probability);
  }
}
BENCHMARK(BM_AbsorbingSolve)->Arg(2)->Arg(4)->Arg(8);

// Ablation: negative-binomial closed form vs exact DTMC.
void BM_AnalyticClosedForm(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hart::analytic_cycle_probabilities(4, 0.83, 64));
  }
}
BENCHMARK(BM_AnalyticClosedForm);

// Ablation: composition by convolution vs rebuilding the composed model.
void BM_ComposePaths(benchmark::State& state) {
  const auto peer = hart::analytic_cycle_probabilities(1, 0.9, 16);
  const auto existing = hart::analytic_cycle_probabilities(3, 0.83, 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hart::compose_cycle_probabilities(peer, existing, 16));
  }
}
BENCHMARK(BM_ComposePaths);

void BM_RebuildComposedPath(benchmark::State& state) {
  const hart::PathModel model(path_config(4, 20, 16));
  const hart::SteadyStateLinks links(
      4, link::LinkModel::from_availability(0.83));
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.analyze(links).cycle_probabilities);
  }
}
BENCHMARK(BM_RebuildComposedPath);

void BM_TypicalNetworkAnalysis(benchmark::State& state) {
  const net::TypicalNetwork t = net::make_typical_network();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hart::analyze_network(t.network, t.paths, t.eta_a, t.superframe, 4)
            .mean_delay_ms);
  }
}
BENCHMARK(BM_TypicalNetworkAnalysis);

// The seed-equivalent baseline: strictly serial, no memoization —
// exactly the per-path loop the repository shipped with.
void BM_GeneratedPlantAnalysis(benchmark::State& state) {
  net::PlantProfile profile;
  profile.device_count = static_cast<std::uint32_t>(state.range(0));
  profile.seed = 7;
  const net::GeneratedPlant plant = net::generate_plant(profile);
  hart::AnalysisOptions options;
  options.threads = 1;
  options.use_cache = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hart::analyze_network(plant.network, plant.paths, plant.schedule,
                              plant.superframe, 4, options)
            .mean_delay_ms);
  }
}
BENCHMARK(BM_GeneratedPlantAnalysis)->Arg(10)->Arg(50)->Arg(200);

// The parallel engine on the same workload: Args are (devices, threads,
// cache).  Cached runs share one PathAnalysisCache across iterations —
// the steady state of a long-lived analysis service, where repeated and
// structurally identical solves all hit.
void BM_GeneratedPlantAnalysisParallel(benchmark::State& state) {
  net::PlantProfile profile;
  profile.device_count = static_cast<std::uint32_t>(state.range(0));
  profile.seed = 7;
  const net::GeneratedPlant plant = net::generate_plant(profile);
  hart::PathAnalysisCache cache;
  hart::AnalysisOptions options;
  options.threads = static_cast<unsigned>(state.range(1));
  options.use_cache = state.range(2) != 0;
  options.cache = options.use_cache ? &cache : nullptr;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hart::analyze_network(plant.network, plant.paths, plant.schedule,
                              plant.superframe, 4, options)
            .mean_delay_ms);
  }
  // Machine-readable (lands in the --benchmark_format=json "counters"
  // object) instead of a hand-formatted label.
  state.counters["cache_hits"] =
      benchmark::Counter(static_cast<double>(cache.hits()));
  state.counters["cache_misses"] =
      benchmark::Counter(static_cast<double>(cache.misses()));
  state.counters["cache_entries"] =
      benchmark::Counter(static_cast<double>(cache.size()));
}
BENCHMARK(BM_GeneratedPlantAnalysisParallel)
    ->Args({200, 1, 0})
    ->Args({200, 2, 0})
    ->Args({200, 4, 0})
    ->Args({200, 8, 0})
    ->Args({200, 1, 1})
    ->Args({200, 2, 1})
    ->Args({200, 4, 1})
    ->Args({200, 8, 1});

// The seed-equivalent Monte-Carlo baseline: one shard, one stream.
void BM_MonteCarloPerInterval(benchmark::State& state) {
  const net::TypicalNetwork t = net::make_typical_network();
  sim::SimulatorConfig config;
  config.superframe = t.superframe;
  config.intervals = 1000;
  for (auto _ : state) {
    sim::NetworkSimulator simulator(t.network, t.paths, t.eta_a, config);
    benchmark::DoNotOptimize(simulator.run().total_slots_simulated);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_MonteCarloPerInterval);

// Sharded Monte Carlo: intervals split across `threads` shards, each on
// its own RNG stream (results deterministic in (seed, shard count)).
void BM_MonteCarloPerIntervalSharded(benchmark::State& state) {
  const net::TypicalNetwork t = net::make_typical_network();
  sim::SimulatorConfig config;
  config.superframe = t.superframe;
  config.intervals = 1000;
  config.shards = static_cast<std::uint32_t>(state.range(0));
  config.threads = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    sim::NetworkSimulator simulator(t.network, t.paths, t.eta_a, config);
    benchmark::DoNotOptimize(simulator.run().total_slots_simulated);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_MonteCarloPerIntervalSharded)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// Observability overhead on a real workload: the forward solve under
// each layer of the subsystem.  Args are {metrics, event_log, sampler}:
// {0,0,0} everything runtime-disabled (one relaxed atomic load per
// instrumented event), {1,0,0} counters/histograms only, {1,1,0} adds
// the flight recorder's per-thread ring writes, {1,1,1} additionally
// runs a background Sampler snapshotting the registry while the solve
// loop is hot.  All four must stay within noise of each other; CI
// gates the ratios against BENCH_obs.json.
void BM_ObsOverheadForwardAnalysis(benchmark::State& state) {
  const bool metrics = state.range(0) != 0;
  const bool events = state.range(1) != 0;
  const bool sampler_on = state.range(2) != 0;
  const bool was_metrics = common::obs::metrics_enabled();
  const bool was_events = common::obs::events_enabled();
  common::obs::set_metrics_enabled(metrics);
  common::obs::set_events_enabled(events);
  const hart::PathModel model(path_config(4, 20, 16));
  const hart::SteadyStateLinks links(
      4, link::LinkModel::from_availability(0.83));
  {
    std::optional<common::obs::Sampler> sampler;
    if (sampler_on) sampler.emplace(std::chrono::milliseconds(5));
    for (auto _ : state) {
      benchmark::DoNotOptimize(model.analyze(links).cycle_probabilities);
    }
    if (sampler) {
      sampler->stop();
      state.counters["sampler_ticks"] =
          benchmark::Counter(static_cast<double>(sampler->samples()));
    }
  }
  common::obs::set_metrics_enabled(was_metrics);
  common::obs::set_events_enabled(was_events);
  if (metrics) {
    const common::obs::MetricsSnapshot snapshot =
        common::obs::Registry::instance().snapshot();
    state.counters["path_solves"] = benchmark::Counter(static_cast<double>(
        snapshot.counters.at("hart.path_solve.count")));
  }
}
BENCHMARK(BM_ObsOverheadForwardAnalysis)
    ->Args({0, 0, 0})
    ->Args({1, 0, 0})
    ->Args({1, 1, 0})
    ->Args({1, 1, 1});

}  // namespace

BENCHMARK_MAIN();
