// Table I: influence of pi(up) on the reachability and expected delay of
// the example path.
#include "bench_common.hpp"

int main() {
  using namespace whart;
  using report::Table;

  bench::print_header(
      "Table I — influence of pi(up) on reachability and expected delay",
      "3-hop example path, Is = 4");

  const struct {
    double label;
    double paper_r;
    double paper_delay;
  } rows[] = {{0.774, 97.37, 179.0},
              {0.83, 99.07, 151.0},
              {0.903, 99.89, 113.0},
              {0.948, 99.99, 93.0}};

  Table table({"pi(up)", "R% (paper)", "R% (model)", "E[tau] ms (paper)",
               "E[tau] ms (model)"});
  for (const auto& row : rows) {
    const hart::PathMeasures m = bench::example_measures(row.label);
    table.add_row({Table::fixed(row.label, 3),
                   Table::fixed(row.paper_r, 2),
                   Table::fixed(m.reachability * 100.0, 2),
                   Table::fixed(row.paper_delay, 0),
                   Table::fixed(m.expected_delay_ms, 1)});
  }
  table.print(std::cout);
  return 0;
}
