// Shared helpers for the reproduction benches: the paper's example path,
// the BER ladder behind its availability labels, and small printing
// utilities.  Every bench prints "paper" vs "model" columns so the
// reproduction can be eyeballed directly (see EXPERIMENTS.md).
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "whart/hart/path_analysis.hpp"
#include "whart/hart/path_model.hpp"
#include "whart/link/link_model.hpp"
#include "whart/net/typical_network.hpp"
#include "whart/report/table.hpp"

namespace whart::bench {

/// The Section V-A example path: 3 hops at slots 3/6/7 of a 7-slot
/// uplink frame.
inline hart::PathModelConfig example_path(std::uint32_t reporting_interval) {
  hart::PathModelConfig config;
  config.hop_slots = {3, 6, 7};
  config.superframe = net::SuperframeConfig::symmetric(7);
  config.reporting_interval = reporting_interval;
  return config;
}

/// The BER ladder behind the paper's availability labels (Eq. 1-2 with
/// L = 1016, prc = 0.9).  The paper prints the availabilities rounded to
/// three digits; computing from the BER reproduces its exact numbers.
struct AvailabilityStep {
  double label;  ///< the value printed in the paper
  double ber;    ///< the bit error rate that induces it
};

inline const std::vector<AvailabilityStep>& availability_ladder() {
  static const std::vector<AvailabilityStep> ladder{
      {0.693, 5e-4}, {0.774, 3e-4}, {0.83, 2e-4},
      {0.903, 1e-4}, {0.948, 5e-5}, {0.989, 1e-5}};
  return ladder;
}

/// Link with the paper's labeled availability (via its BER where the
/// label is on the ladder).
inline link::LinkModel paper_link(double label) {
  for (const AvailabilityStep& step : availability_ladder())
    if (step.label == label) return link::LinkModel::from_ber(step.ber);
  return link::LinkModel::from_availability(label);
}

/// Measures of the example path with homogeneous steady-state links.
inline hart::PathMeasures example_measures(double availability_label,
                                           std::uint32_t is = 4) {
  const hart::PathModel model(example_path(is));
  const hart::SteadyStateLinks links(3, paper_link(availability_label));
  return compute_path_measures(model, links);
}

inline void print_header(const std::string& title,
                         const std::string& setup) {
  std::cout << "================================================================\n"
            << title << "\n" << setup << "\n"
            << "================================================================\n";
}

}  // namespace whart::bench
