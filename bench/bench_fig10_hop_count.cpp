// Fig. 10: influence of the path hop count (1..4) on reachability at
// pi(up) = 0.83.
#include "bench_common.hpp"

int main() {
  using namespace whart;
  using report::Table;

  bench::print_header(
      "Fig. 10 — influence of path hop count on reachability",
      "hops 1..4, pi(up) = 0.83, Is = 4 (WirelessHART guideline: <= 4 "
      "hops)");

  const double paper[] = {0.9992, 0.9964, 0.9907, 0.9812};

  Table table({"hops", "R (paper)", "R (model)"});
  for (std::uint32_t hops = 1; hops <= 4; ++hops) {
    hart::PathModelConfig config;
    for (std::uint32_t h = 0; h < hops; ++h)
      config.hop_slots.push_back(h + 1);
    config.superframe = net::SuperframeConfig::symmetric(7);
    config.reporting_interval = 4;
    const hart::PathModel model(config);
    const hart::SteadyStateLinks links(hops, bench::paper_link(0.83));
    const hart::PathMeasures m = compute_path_measures(model, links);
    table.add_row({std::to_string(hops), Table::fixed(paper[hops - 1], 4),
                   Table::fixed(m.reachability, 4)});
  }
  table.print(std::cout);
  return 0;
}
