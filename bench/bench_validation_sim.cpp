// Validation (not a paper figure): the DTMC analytics vs the slot-level
// Monte-Carlo simulator on the typical network — empirical reachability,
// mean delay and utilization must match the model within sampling error.
// Uses the library's one-call validation API (hart::validation).
#include "whart/hart/validation.hpp"

#include "bench_common.hpp"

int main() {
  using namespace whart;
  using report::Table;

  bench::print_header(
      "Validation — analytic DTMC vs Monte-Carlo simulation",
      "typical network, eta_a, Is = 4, pi(up) = 0.83, 100000 intervals, "
      "seed 2024");

  const net::TypicalNetwork t =
      net::make_typical_network(bench::paper_link(0.83));
  hart::ValidationConfig config;
  config.intervals = 100000;
  config.seed = 2024;
  const hart::ValidationReport report = hart::validate_against_simulation(
      t.network, t.paths, t.eta_a, t.superframe, 4, config);

  Table table({"path", "R model", "R sim", "R sim 99.99% CI",
               "E[tau] model", "E[tau] sim", "delay z", "U model",
               "U sim"});
  for (const hart::PathValidation& v : report.per_path) {
    table.add_row(
        {std::to_string(v.path_index + 1),
         Table::fixed(v.model_reachability, 4),
         Table::fixed(v.simulated_reachability, 4),
         "[" + Table::fixed(v.reachability_interval.low, 4) + ", " +
             Table::fixed(v.reachability_interval.high, 4) + "]",
         Table::fixed(v.model_delay_ms, 1),
         Table::fixed(v.simulated_delay_ms, 1),
         Table::fixed(v.delay_z_score, 2),
         Table::fixed(v.model_utilization, 4),
         Table::fixed(v.simulated_utilization, 4)});
  }
  table.print(std::cout);
  std::cout << "\nvalidation verdict: "
            << (report.passed ? "PASSED — every analytic figure inside "
                                "the simulator's confidence bounds"
                              : "FAILED (investigate!)")
            << "\n";
  return report.passed ? 0 : 1;
}
