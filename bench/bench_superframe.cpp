// Superframe-product kernel vs per-slot transient recursion
// (google-benchmark).  Every workload runs under both kernels with the
// kernel selector as the LAST benchmark argument (0 = kPerSlot,
// 1 = kSuperframeProduct), so tools/check_bench_regression.py can pair
// .../0 against .../1 and assert the collapse speedup, and compare runs
// against the committed BENCH_superframe.json baseline.
//
// All network solves are cold-cache (no PathAnalysisCache, one thread):
// the point is the raw solver cost, not memoization.
#include <benchmark/benchmark.h>

#include <cstdint>

#include "whart/hart/network_analysis.hpp"
#include "whart/hart/path_model.hpp"
#include "whart/linalg/matrix.hpp"
#include "whart/markov/superframe_kernel.hpp"
#include "whart/markov/transient.hpp"
#include "whart/net/plant_generator.hpp"
#include "whart/net/typical_network.hpp"

namespace {

using namespace whart;

hart::PathModelConfig path_config(std::uint32_t hops, std::uint32_t fup,
                                  std::uint32_t is) {
  hart::PathModelConfig config;
  for (std::uint32_t h = 0; h < hops; ++h) config.hop_slots.push_back(h + 1);
  config.superframe = net::SuperframeConfig::symmetric(fup);
  config.reporting_interval = is;
  return config;
}

// One Section VI path solve: Args are (hops, Is, kernel).
void BM_PathSolve(benchmark::State& state) {
  const auto hops = static_cast<std::uint32_t>(state.range(0));
  const auto is = static_cast<std::uint32_t>(state.range(1));
  const hart::PathModel model(path_config(hops, 20, is));
  const hart::SteadyStateLinks links(
      hops, link::LinkModel::from_availability(0.83));
  hart::PathAnalysisOptions options;
  options.kernel = state.range(2) != 0
                       ? hart::TransientKernel::kSuperframeProduct
                       : hart::TransientKernel::kPerSlot;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.analyze(links, options).cycle_probabilities);
  }
}
BENCHMARK(BM_PathSolve)
    ->Args({3, 4, 0})
    ->Args({3, 4, 1})
    ->Args({4, 64, 0})
    ->Args({4, 64, 1})
    ->Args({8, 256, 0})
    ->Args({8, 256, 1});

// The paper's 10-path typical network at its Is = 4 operating point and
// at a long-horizon Is = 64: Args are (Is, kernel).
void BM_TypicalNetworkSolve(benchmark::State& state) {
  const auto is = static_cast<std::uint32_t>(state.range(0));
  const net::TypicalNetwork t = net::make_typical_network();
  hart::AnalysisOptions options;
  options.threads = 1;
  options.use_cache = false;
  options.kernel = state.range(1) != 0
                       ? hart::TransientKernel::kSuperframeProduct
                       : hart::TransientKernel::kPerSlot;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hart::analyze_network(t.network, t.paths, t.eta_a, t.superframe, is,
                              options)
            .mean_delay_ms);
  }
}
BENCHMARK(BM_TypicalNetworkSolve)
    ->Args({4, 0})
    ->Args({4, 1})
    ->Args({64, 0})
    ->Args({64, 1});

// 200-device generated plant, cold cache: Args are (Is, kernel).
void BM_GeneratedPlantSolve(benchmark::State& state) {
  net::PlantProfile profile;
  profile.device_count = 200;
  profile.seed = 7;
  const net::GeneratedPlant plant = net::generate_plant(profile);
  hart::AnalysisOptions options;
  options.threads = 1;
  options.use_cache = false;
  options.kernel = state.range(1) != 0
                       ? hart::TransientKernel::kSuperframeProduct
                       : hart::TransientKernel::kPerSlot;
  const auto is = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hart::analyze_network(plant.network, plant.paths, plant.schedule,
                              plant.superframe, is, options)
            .mean_delay_ms);
  }
}
BENCHMARK(BM_GeneratedPlantSolve)->Args({64, 0})->Args({64, 1});

// Product build cost in isolation: what the kernel amortizes.
void BM_KernelBuild(benchmark::State& state) {
  const auto hops = static_cast<std::uint32_t>(state.range(0));
  const hart::PathModel model(path_config(hops, 20, 4));
  const hart::SteadyStateLinks links(
      hops, link::LinkModel::from_availability(0.83));
  for (auto _ : state) {
    markov::SuperframeKernel kernel(model.slot_matrices(links));
    benchmark::DoNotOptimize(kernel.cycle_product().nonzeros());
  }
}
BENCHMARK(BM_KernelBuild)->Arg(3)->Arg(8);

// Batched multi-initial-state transient: Args are (batch rows, kernel
// 0 = row-by-row distribution_after, 1 = cache-blocked batch).
void BM_BatchedTransient(benchmark::State& state) {
  const hart::PathModel model(path_config(4, 20, 4));
  const hart::SteadyStateLinks links(
      4, link::LinkModel::from_availability(0.83));
  const markov::SuperframeKernel kernel(model.slot_matrices(links));
  const auto rows = static_cast<std::size_t>(state.range(0));
  const std::size_t dim = kernel.dimension();
  linalg::Matrix initials(rows, dim);
  for (std::size_t r = 0; r < rows; ++r) initials(r, r % dim) = 1.0;
  const std::uint64_t steps = 3 * kernel.period() + 5;
  if (state.range(1) != 0) {
    for (auto _ : state) {
      benchmark::DoNotOptimize(
          markov::distributions_after_periodic(kernel, initials, steps));
    }
  } else {
    for (auto _ : state) {
      double sink = 0.0;
      for (std::size_t r = 0; r < rows; ++r) {
        linalg::Vector row(dim);
        for (std::size_t c = 0; c < dim; ++c) row[c] = initials(r, c);
        sink += markov::distribution_after_periodic(kernel, row, steps)[0];
      }
      benchmark::DoNotOptimize(sink);
    }
  }
}
BENCHMARK(BM_BatchedTransient)->Args({64, 0})->Args({64, 1});

}  // namespace

BENCHMARK_MAIN();
