// Table III: reachability of the affected paths when the shared link e3
// (n3 -- G) fails for one superframe cycle (400 ms).  The paper's
// numbers equal the "path loses one cycle" model; the exact DTMC with e3
// scripted DOWN only during cycle 1 (earlier hops may still progress) is
// printed as a refinement.
#include "whart/hart/failure.hpp"

#include "bench_common.hpp"

int main() {
  using namespace whart;
  using report::Table;

  bench::print_header(
      "Table III — reachability with a one-cycle failure of link e3",
      "typical network, eta_a, Is = 4, pi(up) = 0.83; e3 = <n3,G> carries "
      "paths 3, 7, 8, 10");

  const net::TypicalNetwork t =
      net::make_typical_network(bench::paper_link(0.83));
  const auto e3 =
      t.network.link_between(*t.network.find_node("n3"), net::kGateway);
  const auto impacts = hart::one_cycle_link_failure(
      t.network, t.paths, t.eta_a, t.superframe, 4, *e3);

  const struct {
    std::size_t path;
    double paper_without;
    double paper_with;
  } rows[] = {{2, 99.92, 99.51},
              {6, 99.64, 98.30},
              {7, 99.64, 98.30},
              {9, 99.07, 96.28}};

  Table table({"path", "hops", "R% no-failure (paper)",
               "R% no-failure (model)", "R% failure (paper)",
               "R% failure (model, cycle-shift)",
               "R% failure (model, exact DTMC)"});
  for (const auto& row : rows) {
    const auto& impact = impacts[row.path];
    table.add_row(
        {std::to_string(row.path + 1),
         std::to_string(t.paths[row.path].hop_count()),
         Table::fixed(row.paper_without, 2),
         Table::fixed(impact.reachability_nominal * 100.0, 2),
         Table::fixed(row.paper_with, 2),
         Table::fixed(impact.reachability_cycle_shift * 100.0, 2),
         Table::fixed(impact.reachability_exact * 100.0, 2)});
  }
  table.print(std::cout);

  std::cout << "\npaths not using e3 are unaffected: ";
  for (const auto& impact : impacts)
    if (!impact.affected) std::cout << impact.path_index + 1 << " ";
  std::cout << "\nlonger failures (geometric duration, continue prob q):\n";
  Table random({"q", "mixed R% (3-hop path)"});
  for (double q : {0.0, 0.25, 0.5, 0.75}) {
    random.add_row(
        {Table::fixed(q, 2),
         Table::fixed(hart::random_duration_failure_reachability(
                          3, bench::paper_link(0.83)
                                 .steady_state_availability(),
                          4, q, 4) *
                          100.0,
                      2)});
  }
  random.print(std::cout);
  return 0;
}
