#include "whart/sim/simulator.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "whart/common/contracts.hpp"
#include "whart/net/schedule_builder.hpp"
#include "whart/net/typical_network.hpp"

namespace whart::sim {
namespace {

struct OneHopSetup {
  net::Network network;
  std::vector<net::Path> paths;
  net::Schedule schedule{1, 1};
  net::SuperframeConfig superframe;
};

OneHopSetup one_hop(double availability) {
  OneHopSetup s;
  const auto n1 = s.network.add_node("n1");
  s.network.add_link(n1, net::kGateway,
                     link::LinkModel::from_availability(availability));
  s.paths.emplace_back(std::vector<net::NodeId>{n1, net::kGateway});
  s.superframe = net::SuperframeConfig::symmetric(1);
  s.schedule = net::build_schedule(s.paths, 1,
                                   net::SchedulingPolicy::kDeclarationOrder);
  return s;
}

TEST(Simulator, DeterministicInSeed) {
  const OneHopSetup s = one_hop(0.83);
  SimulatorConfig config;
  config.superframe = s.superframe;
  config.intervals = 2000;
  config.seed = 9;
  NetworkSimulator sim_a(s.network, s.paths, s.schedule, config);
  NetworkSimulator sim_b(s.network, s.paths, s.schedule, config);
  const auto a = sim_a.run();
  const auto b = sim_b.run();
  EXPECT_EQ(a.per_path[0].delivered_per_cycle,
            b.per_path[0].delivered_per_cycle);
  EXPECT_EQ(a.per_path[0].transmissions, b.per_path[0].transmissions);
}

TEST(Simulator, PerfectLinkDeliversEverythingInCycleOne) {
  const OneHopSetup s = one_hop(1.0);
  SimulatorConfig config;
  config.superframe = s.superframe;
  config.intervals = 500;
  NetworkSimulator simulator(s.network, s.paths, s.schedule, config);
  const auto report = simulator.run();
  const auto& stats = report.per_path[0];
  EXPECT_EQ(stats.messages, 500u);
  EXPECT_EQ(stats.delivered_per_cycle[0], 500u);
  EXPECT_EQ(stats.discarded, 0u);
  EXPECT_DOUBLE_EQ(stats.reachability(), 1.0);
  EXPECT_DOUBLE_EQ(stats.delay_ms.mean(), 10.0);
}

TEST(Simulator, ReachabilityMatchesGeometricModel) {
  const OneHopSetup s = one_hop(0.83);
  SimulatorConfig config;
  config.superframe = s.superframe;
  config.reporting_interval = 4;
  config.intervals = 40000;
  config.seed = 5;
  NetworkSimulator simulator(s.network, s.paths, s.schedule, config);
  const auto report = simulator.run();
  const auto& stats = report.per_path[0];
  // Analytic: R = 1 - 0.17^4 = 0.999165.
  const auto ci = stats.reachability_interval(3.29);
  EXPECT_TRUE(ci.contains(1.0 - std::pow(0.17, 4)))
      << "[" << ci.low << ", " << ci.high << "]";
  // First-cycle frequency ~ 0.83.
  EXPECT_NEAR(stats.cycle_frequencies()[0], 0.83, 0.01);
}

TEST(Simulator, UtilizationCountsAttempts) {
  const OneHopSetup s = one_hop(0.83);
  SimulatorConfig config;
  config.superframe = s.superframe;
  config.reporting_interval = 4;
  config.intervals = 20000;
  NetworkSimulator simulator(s.network, s.paths, s.schedule, config);
  const auto report = simulator.run();
  // E[attempts] ~ sum g_i * i + (1-R) * 4 ~ 1.2 => U ~ 1.2 / 4 = 0.3.
  EXPECT_NEAR(report.per_path[0].utilization(1, 4), 0.30, 0.01);
}

TEST(Simulator, TotalSlotsAccounting) {
  const OneHopSetup s = one_hop(0.9);
  SimulatorConfig config;
  config.superframe = s.superframe;  // 2 slots per cycle
  config.reporting_interval = 3;
  config.intervals = 10;
  NetworkSimulator simulator(s.network, s.paths, s.schedule, config);
  EXPECT_EQ(simulator.run().total_slots_simulated, 10u * 3u * 2u);
}

TEST(Simulator, MismatchedScheduleLengthThrows) {
  const OneHopSetup s = one_hop(0.9);
  SimulatorConfig config;
  config.superframe = net::SuperframeConfig::symmetric(2);  // schedule has 1
  EXPECT_THROW(NetworkSimulator(s.network, s.paths, s.schedule, config),
               precondition_error);
}

TEST(Simulator, PhysicalRegimeRuns) {
  const net::TypicalNetwork t = net::make_typical_network();
  SimulatorConfig config;
  config.superframe = t.superframe;
  config.intervals = 500;
  config.regime = LinkRegime::kPhysical;
  config.physical.good_ber = 1e-5;
  config.physical.bad_ber = 5e-3;
  config.physical.bad_channels = 3;
  NetworkSimulator simulator(t.network, t.paths, t.eta_a, config);
  const auto report = simulator.run();
  // Clean channels dominate, so reachability should be high but below 1.
  for (const auto& stats : report.per_path) {
    EXPECT_GT(stats.reachability(), 0.9);
  }
}

TEST(Simulator, PhysicalRegimeWithAllBadChannelsDegrades) {
  const OneHopSetup s = one_hop(0.9);
  SimulatorConfig config;
  config.superframe = s.superframe;
  config.intervals = 2000;
  config.regime = LinkRegime::kPhysical;
  config.physical.good_ber = 4e-3;  // every channel is bad
  config.physical.bad_ber = 4e-3;
  config.physical.bad_channels = 0;
  NetworkSimulator simulator(s.network, s.paths, s.schedule, config);
  const auto report = simulator.run();
  // Word failure probability = 1 - (1-4e-3)^1016 ~ 0.983: most messages
  // need many cycles; reachability over 4 cycles is poor.
  EXPECT_LT(report.per_path[0].reachability(), 0.2);
}

TEST(Simulator, SharedLinksServeAllPathsIndependently) {
  const net::TypicalNetwork t = net::make_typical_network(
      link::LinkModel::from_availability(0.83));
  SimulatorConfig config;
  config.superframe = t.superframe;
  config.intervals = 5000;
  config.seed = 77;
  NetworkSimulator simulator(t.network, t.paths, t.eta_a, config);
  const auto report = simulator.run();
  ASSERT_EQ(report.per_path.size(), 10u);
  for (const auto& stats : report.per_path)
    EXPECT_EQ(stats.messages, 5000u);
  // One-hop paths (1-3) reach more often than three-hop paths (9-10).
  EXPECT_GT(report.per_path[0].reachability(),
            report.per_path[9].reachability());
}

}  // namespace
}  // namespace whart::sim
