#include "whart/sim/stats.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "whart/common/contracts.hpp"
#include "whart/numeric/rng.hpp"

namespace whart::sim {
namespace {

TEST(RunningStat, EmptyStat) {
  const RunningStat stat;
  EXPECT_EQ(stat.count(), 0u);
  EXPECT_DOUBLE_EQ(stat.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stat.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stat.standard_error(), 0.0);
}

TEST(RunningStat, SingleValue) {
  RunningStat stat;
  stat.add(5.0);
  EXPECT_EQ(stat.count(), 1u);
  EXPECT_DOUBLE_EQ(stat.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stat.variance(), 0.0);
}

TEST(RunningStat, KnownMeanAndVariance) {
  RunningStat stat;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stat.add(v);
  EXPECT_DOUBLE_EQ(stat.mean(), 5.0);
  // Sample variance of this classic data set is 32/7.
  EXPECT_NEAR(stat.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(stat.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(RunningStat, MatchesBatchComputationOnRandomData) {
  numeric::Xoshiro256 rng(21);
  RunningStat stat;
  std::vector<double> values;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform() * 100.0;
    values.push_back(v);
    stat.add(v);
  }
  double mean = 0.0;
  for (double v : values) mean += v;
  mean /= values.size();
  double var = 0.0;
  for (double v : values) var += (v - mean) * (v - mean);
  var /= (values.size() - 1);
  EXPECT_NEAR(stat.mean(), mean, 1e-9);
  EXPECT_NEAR(stat.variance(), var, 1e-9);
}

TEST(RunningStatMerge, MatchesOnePassAccumulation) {
  numeric::Xoshiro256 rng(55);
  RunningStat one_pass;
  RunningStat left;
  RunningStat right;
  for (int i = 0; i < 700; ++i) {
    const double v = rng.uniform() * 50.0 - 10.0;
    one_pass.add(v);
    (i < 300 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), one_pass.count());
  EXPECT_NEAR(left.mean(), one_pass.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), one_pass.variance(), 1e-12);
}

TEST(RunningStatMerge, ManyShardsMatchOnePass) {
  numeric::Xoshiro256 rng(56);
  RunningStat one_pass;
  std::vector<RunningStat> shards(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform() * 100.0;
    one_pass.add(v);
    shards[static_cast<std::size_t>(i) % shards.size()].add(v);
  }
  RunningStat merged;
  for (const RunningStat& shard : shards) merged.merge(shard);
  EXPECT_EQ(merged.count(), one_pass.count());
  EXPECT_NEAR(merged.mean(), one_pass.mean(), 1e-12);
  EXPECT_NEAR(merged.variance(), one_pass.variance(),
              1e-12 * one_pass.variance());
}

TEST(RunningStatMerge, EmptySidesAreNeutral) {
  RunningStat filled;
  for (double v : {1.0, 2.0, 3.0}) filled.add(v);

  RunningStat target;
  target.merge(filled);  // empty.merge(filled) adopts filled
  EXPECT_EQ(target.count(), 3u);
  EXPECT_DOUBLE_EQ(target.mean(), 2.0);
  EXPECT_DOUBLE_EQ(target.variance(), 1.0);

  const RunningStat empty;
  target.merge(empty);  // filled.merge(empty) is a no-op
  EXPECT_EQ(target.count(), 3u);
  EXPECT_DOUBLE_EQ(target.mean(), 2.0);
  EXPECT_DOUBLE_EQ(target.variance(), 1.0);
}

TEST(RunningStatMerge, SingleValueSides) {
  RunningStat a;
  a.add(4.0);
  RunningStat b;
  b.add(8.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 6.0);
  EXPECT_DOUBLE_EQ(a.variance(), 8.0);
}

TEST(Wilson, CenterNearProportion) {
  const Interval ci = wilson_interval(500, 1000);
  EXPECT_TRUE(ci.contains(0.5));
  EXPECT_LT(ci.high - ci.low, 0.07);
}

TEST(Wilson, ExtremeProportionsStayInUnitInterval) {
  const Interval zero = wilson_interval(0, 100);
  EXPECT_GE(zero.low, 0.0);
  EXPECT_GT(zero.high, 0.0);
  const Interval one = wilson_interval(100, 100);
  EXPECT_LE(one.high, 1.0);
  EXPECT_LT(one.low, 1.0);
}

TEST(Wilson, WiderAtHigherConfidence) {
  const Interval z95 = wilson_interval(80, 100, 1.96);
  const Interval z999 = wilson_interval(80, 100, 3.29);
  EXPECT_GT(z999.high - z999.low, z95.high - z95.low);
}

TEST(Wilson, InvalidArgumentsThrow) {
  EXPECT_THROW(wilson_interval(1, 0), precondition_error);
  EXPECT_THROW(wilson_interval(5, 4), precondition_error);
  EXPECT_THROW(wilson_interval(1, 10, 0.0), precondition_error);
}

TEST(Wilson, CoversTrueParameterUsually) {
  // Property check: ~95% of 95% intervals over Bernoulli(0.3) samples
  // should contain 0.3; with 200 replications allow a wide margin.
  numeric::Xoshiro256 rng(33);
  int covered = 0;
  const int replications = 200;
  for (int r = 0; r < replications; ++r) {
    std::uint64_t hits = 0;
    const std::uint64_t n = 400;
    for (std::uint64_t i = 0; i < n; ++i)
      if (rng.bernoulli(0.3)) ++hits;
    if (wilson_interval(hits, n).contains(0.3)) ++covered;
  }
  EXPECT_GT(covered, replications * 0.88);
}

}  // namespace
}  // namespace whart::sim
