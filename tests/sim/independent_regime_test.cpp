// The kIndependent regime and the message TTL, added for the
// verification oracle: independent per-attempt links are exactly the
// regime of hart::SteadyStateLinks, so empirical frequencies must
// converge to the analytic probabilities, and the TTL must reproduce
// the path model's "slot ttl still fires, then discard" semantics.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "whart/hart/link_probability.hpp"
#include "whart/hart/path_analysis.hpp"
#include "whart/hart/path_model.hpp"
#include "whart/sim/simulator.hpp"
#include "whart/verify/scenario.hpp"

namespace whart::sim {
namespace {

verify::Scenario single_hop_scenario() {
  verify::Scenario scenario;
  scenario.seed = 1;
  scenario.superframe = {1, 0};
  scenario.reporting_interval = 4;
  scenario.paths.resize(1);
  // Availability prc / (prc + pfl) = 0.7.
  scenario.paths[0].hop_slots = {1};
  scenario.paths[0].links = {link::LinkModel(0.3, 0.7)};
  return scenario;
}

SimulationReport simulate(const verify::Scenario& scenario,
                          SimulatorConfig config) {
  const verify::BuiltScenario built = verify::build_network(scenario);
  config.superframe = {scenario.superframe.uplink_slots,
                       scenario.superframe.downlink_slots};
  config.reporting_interval = scenario.reporting_interval;
  if (scenario.ttl.has_value()) config.ttl = *scenario.ttl;
  const NetworkSimulator simulator(built.network, built.paths, built.schedule,
                                   config);
  return simulator.run();
}

TEST(IndependentRegime, MatchesTheGeometricAnalyticExactlyInTheLimit) {
  const verify::Scenario scenario = single_hop_scenario();
  SimulatorConfig config;
  config.regime = LinkRegime::kIndependent;
  config.intervals = 40000;
  config.seed = 7;
  config.shards = 4;
  const SimulationReport report = simulate(scenario, config);

  const hart::PathModel model(scenario.path_config(0));
  const hart::SteadyStateLinks links{scenario.hop_availabilities(0)};
  const hart::PathMeasures analytic = compute_path_measures(model, links);

  const PathStatistics& stats = report.per_path[0];
  ASSERT_EQ(stats.messages, 40000u);
  // R = 1 - 0.3^4 = 0.9919; sigma ~ 4.5e-4 at n = 40000.
  EXPECT_NEAR(stats.reachability(), analytic.reachability, 0.005);
  const std::vector<double> frequencies = stats.cycle_frequencies();
  for (std::size_t i = 0; i < frequencies.size(); ++i)
    EXPECT_NEAR(frequencies[i], analytic.cycle_probabilities[i], 0.01)
        << "cycle " << i;
  EXPECT_NEAR(static_cast<double>(stats.discarded) /
                  static_cast<double>(stats.messages),
              1.0 - analytic.reachability, 0.005);
  EXPECT_NEAR(stats.delay_ms.mean(), analytic.expected_delay_ms,
              0.05 * analytic.expected_delay_ms);
}

TEST(IndependentRegime, IsDeterministicInSeedAndShards) {
  const verify::Scenario scenario = single_hop_scenario();
  SimulatorConfig config;
  config.regime = LinkRegime::kIndependent;
  config.intervals = 5000;
  config.seed = 11;
  config.shards = 3;
  const SimulationReport a = simulate(scenario, config);
  const SimulationReport b = simulate(scenario, config);
  EXPECT_EQ(a.per_path[0].delivered_per_cycle,
            b.per_path[0].delivered_per_cycle);
  EXPECT_EQ(a.per_path[0].discarded, b.per_path[0].discarded);
  EXPECT_EQ(a.per_path[0].transmissions, b.per_path[0].transmissions);
}

TEST(Ttl, TwoHopsWithOneSlotNeverDeliver) {
  verify::Scenario scenario;
  scenario.seed = 5;
  scenario.superframe = {2, 0};
  scenario.reporting_interval = 3;
  scenario.ttl = 1;  // hop 1 fires in slot 1, then the message dies
  scenario.paths.resize(1);
  scenario.paths[0].hop_slots = {1, 2};
  scenario.paths[0].links = {link::LinkModel(0.0, 1.0),
                             link::LinkModel(0.0, 1.0)};
  SimulatorConfig config;
  config.regime = LinkRegime::kIndependent;
  config.intervals = 500;
  const SimulationReport report = simulate(scenario, config);
  EXPECT_DOUBLE_EQ(report.per_path[0].reachability(), 0.0);
  EXPECT_EQ(report.per_path[0].discarded, 500u);
  // The slot-ttl transmission itself still fires: exactly one per message.
  EXPECT_EQ(report.per_path[0].transmissions, 500u);
}

TEST(Ttl, MatchesTheAnalyticTtlModel) {
  verify::Scenario scenario = single_hop_scenario();
  scenario.ttl = 2;  // only cycles 1 and 2 can deliver
  SimulatorConfig config;
  config.regime = LinkRegime::kIndependent;
  config.intervals = 40000;
  config.seed = 3;
  config.shards = 4;
  const SimulationReport report = simulate(scenario, config);

  const hart::PathModel model(scenario.path_config(0));
  const hart::SteadyStateLinks links{scenario.hop_availabilities(0)};
  const hart::PathMeasures analytic = compute_path_measures(model, links);
  // R = 0.7 + 0.3 * 0.7 = 0.91.
  EXPECT_NEAR(analytic.reachability, 0.91, 1e-12);
  EXPECT_NEAR(report.per_path[0].reachability(), analytic.reachability,
              0.005);
}

TEST(Ttl, EqualToTheHorizonIsBitForBitANoOp) {
  const verify::Scenario scenario = single_hop_scenario();
  SimulatorConfig config;
  config.regime = LinkRegime::kIndependent;
  config.intervals = 3000;
  config.seed = 13;

  verify::Scenario with_ttl = scenario;
  with_ttl.ttl =
      scenario.reporting_interval * scenario.superframe.uplink_slots;

  const SimulationReport plain = simulate(scenario, config);
  const SimulationReport capped = simulate(with_ttl, config);
  EXPECT_EQ(plain.per_path[0].delivered_per_cycle,
            capped.per_path[0].delivered_per_cycle);
  EXPECT_EQ(plain.per_path[0].discarded, capped.per_path[0].discarded);
  EXPECT_EQ(plain.per_path[0].transmissions,
            capped.per_path[0].transmissions);
}

}  // namespace
}  // namespace whart::sim
