// The kChannel regime: each link runs its own k-state ChannelModel,
// stepped once per 10 ms slot and redrawn from the stationary
// distribution at every interval start — exactly the regime of
// hart::ChannelLinks, so empirical frequencies must converge to the
// channel-enlarged analytics.  Burst structure is validated directly:
// the empirical mean bad-burst length of the simulated chain must land
// on 1 / p_bad->good.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "whart/hart/link_probability.hpp"
#include "whart/hart/path_analysis.hpp"
#include "whart/hart/path_model.hpp"
#include "whart/markov/simulate.hpp"
#include "whart/numeric/rng.hpp"
#include "whart/sim/simulator.hpp"
#include "whart/verify/scenario.hpp"

namespace whart::sim {
namespace {

verify::Scenario bursty_scenario() {
  verify::Scenario scenario;
  scenario.seed = 1;
  scenario.superframe = {3, 2};
  scenario.reporting_interval = 4;
  scenario.paths.resize(1);
  scenario.paths[0].hop_slots = {1, 3};
  scenario.paths[0].links = {link::LinkModel(0.3, 0.7),
                             link::LinkModel(0.2, 0.8)};
  scenario.channel = link::ChannelModel::gilbert_elliott(0.15, 0.4,
                                                         0.03, 0.7);
  return scenario;
}

SimulationReport simulate(const verify::Scenario& scenario,
                          SimulatorConfig config) {
  const verify::BuiltScenario built = verify::build_network(scenario);
  config.superframe = {scenario.superframe.uplink_slots,
                       scenario.superframe.downlink_slots};
  config.reporting_interval = scenario.reporting_interval;
  if (scenario.ttl.has_value()) config.ttl = *scenario.ttl;
  config.regime = LinkRegime::kChannel;
  config.channel = scenario.channel;
  const NetworkSimulator simulator(built.network, built.paths, built.schedule,
                                   config);
  return simulator.run();
}

hart::PathMeasures analytic_measures(const verify::Scenario& scenario,
                                     std::size_t path) {
  const hart::PathModel model(scenario.path_config(path));
  const hart::ChannelLinks links(scenario.hop_channels(path));
  return compute_path_measures(model, links);
}

TEST(ChannelRegime, ConvergesToTheChannelEnlargedAnalytics) {
  const verify::Scenario scenario = bursty_scenario();
  SimulatorConfig config;
  config.intervals = 60000;
  config.seed = 7;
  config.shards = 4;
  const SimulationReport report = simulate(scenario, config);
  const hart::PathMeasures analytic = analytic_measures(scenario, 0);

  const PathStatistics& stats = report.per_path[0];
  ASSERT_EQ(stats.messages, 60000u);
  EXPECT_NEAR(stats.reachability(), analytic.reachability, 0.005);
  const std::vector<double> frequencies = stats.cycle_frequencies();
  for (std::size_t i = 0; i < frequencies.size(); ++i)
    EXPECT_NEAR(frequencies[i], analytic.cycle_probabilities[i], 0.01)
        << "cycle " << i;
  EXPECT_NEAR(stats.delay_ms.mean(), analytic.expected_delay_ms,
              0.03 * analytic.expected_delay_ms);
}

TEST(ChannelRegime, DistinguishableFromIidAtEqualMarginals) {
  // Same per-attempt marginal success, but the bursty chain correlates
  // the retries of one interval: over a multi-cycle interval the
  // empirical reachability must separate from the i.i.d. analytic value
  // by far more than the Monte-Carlo noise — the cross-validation has
  // teeth only if the two hypotheses are statistically distinguishable.
  verify::Scenario scenario = bursty_scenario();
  scenario.channel = link::ChannelModel::gilbert_elliott(0.05, 0.1,
                                                         0.0, 1.0);
  SimulatorConfig config;
  config.intervals = 60000;
  config.seed = 21;
  config.shards = 4;
  const SimulationReport report = simulate(scenario, config);

  const hart::PathModel model(scenario.path_config(0));
  const hart::PathMeasures channel = analytic_measures(scenario, 0);
  const hart::PathMeasures iid = compute_path_measures(
      model, hart::SteadyStateLinks(scenario.hop_availabilities(0)));

  const double empirical = report.per_path[0].reachability();
  EXPECT_NEAR(empirical, channel.reachability, 0.005);
  EXPECT_GT(std::abs(empirical - iid.reachability), 0.02);
}

TEST(ChannelRegime, DegenerateChannelReproducesIndependentStatistics) {
  // Equal error rates leave no observable memory: the kChannel regime
  // must land on the i.i.d. analytics (not bitwise on kIndependent —
  // the draw sequences differ — but statistically).
  verify::Scenario scenario = bursty_scenario();
  scenario.channel =
      link::ChannelModel::gilbert_elliott(0.3, 0.5, 0.25, 0.25);
  SimulatorConfig config;
  config.intervals = 40000;
  config.seed = 9;
  config.shards = 4;
  const SimulationReport report = simulate(scenario, config);

  const hart::PathModel model(scenario.path_config(0));
  const hart::PathMeasures iid = compute_path_measures(
      model, hart::SteadyStateLinks(scenario.hop_availabilities(0)));
  EXPECT_NEAR(report.per_path[0].reachability(), iid.reachability, 0.005);
}

TEST(ChannelRegime, IsDeterministicInSeedAndShards) {
  const verify::Scenario scenario = bursty_scenario();
  SimulatorConfig config;
  config.intervals = 5000;
  config.seed = 11;
  config.shards = 3;
  const SimulationReport a = simulate(scenario, config);
  const SimulationReport b = simulate(scenario, config);
  EXPECT_EQ(a.per_path[0].delivered_per_cycle,
            b.per_path[0].delivered_per_cycle);
  EXPECT_EQ(a.per_path[0].discarded, b.per_path[0].discarded);
  EXPECT_EQ(a.per_path[0].transmissions, b.per_path[0].transmissions);
}

TEST(ChannelRegime, TtlOneStillFiresExactlyOnce) {
  verify::Scenario scenario;
  scenario.seed = 5;
  scenario.superframe = {2, 0};
  scenario.reporting_interval = 3;
  scenario.ttl = 1;  // hop 1 fires in slot 1, then the message dies
  scenario.paths.resize(1);
  scenario.paths[0].hop_slots = {1, 2};
  scenario.paths[0].links = {link::LinkModel(0.0, 1.0),
                             link::LinkModel(0.0, 1.0)};
  scenario.channel = link::ChannelModel::gilbert_elliott(0.2, 0.4,
                                                         0.1, 0.9);
  SimulatorConfig config;
  config.intervals = 500;
  const SimulationReport report = simulate(scenario, config);
  EXPECT_DOUBLE_EQ(report.per_path[0].reachability(), 0.0);
  EXPECT_EQ(report.per_path[0].discarded, 500u);
  EXPECT_EQ(report.per_path[0].transmissions, 500u);
}

TEST(ChannelRegime, MeanBadBurstLengthMatchesTheChain) {
  // Burst-length sanity, straight from a simulated trajectory of the
  // channel chain itself: mean consecutive slots in Bad = 1 / p_bg.
  const double p_bg = 0.25;
  const link::ChannelModel channel =
      link::ChannelModel::gilbert_elliott(0.1, p_bg, 0.0, 1.0);
  numeric::Xoshiro256 rng(17);
  const std::vector<markov::StateIndex> trajectory =
      markov::sample_trajectory(channel.to_dtmc(), 0, 400000, rng);

  std::uint64_t bursts = 0;
  std::uint64_t bad_slots = 0;
  bool in_burst = false;
  for (markov::StateIndex state : trajectory) {
    if (state == 1) {
      ++bad_slots;
      if (!in_burst) ++bursts;
      in_burst = true;
    } else {
      in_burst = false;
    }
  }
  ASSERT_GT(bursts, 5000u);
  const double empirical = static_cast<double>(bad_slots) /
                           static_cast<double>(bursts);
  EXPECT_NEAR(empirical, channel.mean_bad_burst_length(),
              0.05 * channel.mean_bad_burst_length());
  EXPECT_NEAR(channel.mean_bad_burst_length(), 1.0 / p_bg, 1e-15);
}

}  // namespace
}  // namespace whart::sim
