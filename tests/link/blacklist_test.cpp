#include "whart/link/blacklist.hpp"

#include <gtest/gtest.h>

#include "whart/common/contracts.hpp"

namespace whart::link {
namespace {

TEST(Blacklist, DefaultsHaveSixteenActiveChannels) {
  const ChannelBlacklist blacklist;
  EXPECT_EQ(blacklist.active_count(), 16u);
  EXPECT_EQ(blacklist.active_channels().size(), 16u);
}

TEST(Blacklist, InvalidConfigThrows) {
  EXPECT_THROW(ChannelBlacklist(ChannelBlacklist::Config{0, 4, 1}),
               precondition_error);
  EXPECT_THROW(ChannelBlacklist(ChannelBlacklist::Config{16, 0, 5}),
               precondition_error);
  EXPECT_THROW(ChannelBlacklist(ChannelBlacklist::Config{16, 4, 17}),
               precondition_error);
}

TEST(Blacklist, BansAfterConsecutiveFailures) {
  ChannelBlacklist blacklist(ChannelBlacklist::Config{16, 3, 5});
  for (int i = 0; i < 2; ++i) blacklist.record_result(2, false);
  EXPECT_FALSE(blacklist.is_blacklisted(2));
  blacklist.record_result(2, false);
  EXPECT_TRUE(blacklist.is_blacklisted(2));
  EXPECT_EQ(blacklist.active_count(), 15u);
}

TEST(Blacklist, SuccessResetsCounter) {
  ChannelBlacklist blacklist(ChannelBlacklist::Config{16, 3, 5});
  blacklist.record_result(2, false);
  blacklist.record_result(2, false);
  blacklist.record_result(2, true);
  blacklist.record_result(2, false);
  blacklist.record_result(2, false);
  EXPECT_FALSE(blacklist.is_blacklisted(2));
}

TEST(Blacklist, NeverBansBelowMinimumActive) {
  ChannelBlacklist blacklist(ChannelBlacklist::Config{4, 1, 3});
  blacklist.record_result(0, false);
  EXPECT_TRUE(blacklist.is_blacklisted(0));
  blacklist.record_result(1, false);
  blacklist.record_result(2, false);
  // Only one ban possible: 4 - 3 = 1.
  EXPECT_EQ(blacklist.active_count(), 3u);
  EXPECT_FALSE(blacklist.is_blacklisted(1));
}

TEST(Blacklist, ResetReadmitsEverything) {
  ChannelBlacklist blacklist(ChannelBlacklist::Config{8, 1, 2});
  blacklist.record_result(5, false);
  ASSERT_TRUE(blacklist.is_blacklisted(5));
  blacklist.reset();
  EXPECT_FALSE(blacklist.is_blacklisted(5));
  EXPECT_EQ(blacklist.active_count(), 8u);
}

TEST(Blacklist, OutOfRangeChannelThrows) {
  ChannelBlacklist blacklist;
  EXPECT_THROW(blacklist.record_result(16, true), precondition_error);
  EXPECT_THROW((void)blacklist.is_blacklisted(16), precondition_error);
}

TEST(Hopper, NeverReturnsBlacklistedChannel) {
  ChannelBlacklist blacklist(ChannelBlacklist::Config{8, 1, 4});
  for (ChannelId c : {0u, 1u, 2u, 3u}) blacklist.record_result(c, false);
  ChannelHopper hopper(99);
  for (int i = 0; i < 200; ++i) {
    const ChannelId channel = hopper.next(blacklist);
    EXPECT_FALSE(blacklist.is_blacklisted(channel));
  }
}

TEST(Hopper, HopsToADifferentChannelEachSlot) {
  const ChannelBlacklist blacklist;
  ChannelHopper hopper(7);
  ChannelId previous = hopper.next(blacklist);
  for (int i = 0; i < 100; ++i) {
    const ChannelId current = hopper.next(blacklist);
    EXPECT_NE(current, previous);
    previous = current;
  }
}

TEST(Hopper, SingleActiveChannelIsRepeated) {
  ChannelBlacklist blacklist(ChannelBlacklist::Config{2, 1, 1});
  blacklist.record_result(0, false);
  ChannelHopper hopper(3);
  EXPECT_EQ(hopper.next(blacklist), 1u);
  EXPECT_EQ(hopper.next(blacklist), 1u);
}

TEST(Hopper, DeterministicInSeed) {
  const ChannelBlacklist blacklist;
  ChannelHopper a(5);
  ChannelHopper b(5);
  for (int i = 0; i < 50; ++i)
    EXPECT_EQ(a.next(blacklist), b.next(blacklist));
}

}  // namespace
}  // namespace whart::link
