#include "whart/link/link_model.hpp"

#include <gtest/gtest.h>

#include "whart/common/contracts.hpp"
#include "whart/markov/steady_state.hpp"
#include "whart/markov/transient.hpp"

namespace whart::link {
namespace {

TEST(LinkModel, InvalidProbabilitiesThrow) {
  EXPECT_THROW(LinkModel(-0.1, 0.9), precondition_error);
  EXPECT_THROW(LinkModel(0.1, 1.1), precondition_error);
  EXPECT_THROW(LinkModel(0.0, 0.0), precondition_error);
}

TEST(LinkModel, SteadyStateAvailabilityEq4) {
  // Paper Section V-B: BER = 1e-4 gives pfl = 0.0966 and pi(up) = 0.9031.
  const LinkModel link(0.0966, 0.9);
  EXPECT_NEAR(link.steady_state_availability(), 0.9031, 5e-5);
}

TEST(LinkModel, FromBerMatchesPaperSectionVB) {
  const LinkModel link = LinkModel::from_ber(1e-4);
  EXPECT_NEAR(link.failure_probability(), 0.0966, 5e-5);
  EXPECT_NEAR(link.steady_state_availability(), 0.9031, 5e-5);
  EXPECT_DOUBLE_EQ(link.recovery_probability(), 0.9);
}

TEST(LinkModel, FromSnrMatchesPaperTableIV) {
  // Eb/N0 = 7 -> pfl = 0.089; Eb/N0 = 6 -> pfl = 0.237.
  const LinkModel link3 = LinkModel::from_snr(phy::EbN0::from_linear(7.0));
  EXPECT_NEAR(link3.failure_probability(), 0.089, 1e-3);
  const LinkModel link4 = LinkModel::from_snr(phy::EbN0::from_linear(6.0));
  EXPECT_NEAR(link4.failure_probability(), 0.237, 2e-3);
}

TEST(LinkModel, FromAvailabilityRoundTrips) {
  for (double pi : {0.693, 0.75, 0.83, 0.903, 0.948, 0.989}) {
    const LinkModel link = LinkModel::from_availability(pi);
    EXPECT_NEAR(link.steady_state_availability(), pi, 1e-12) << pi;
  }
}

TEST(LinkModel, FromAvailabilityTooLowThrows) {
  // pi = 0.4 with prc = 0.9 would need pfl = 1.35 > 1.
  EXPECT_THROW(LinkModel::from_availability(0.4, 0.9), precondition_error);
  EXPECT_THROW(LinkModel::from_availability(0.0), precondition_error);
}

TEST(LinkModel, TransientClosedFormMatchesDtmc) {
  const LinkModel link(0.184, 0.9);
  const markov::Dtmc chain = link.to_dtmc();
  linalg::Vector p{0.0, 1.0};  // DOWN
  for (std::uint64_t t = 1; t <= 10; ++t) {
    p = chain.step(p);
    EXPECT_NEAR(link.up_probability_after(LinkState::kDown, t), p[0], 1e-14)
        << "t=" << t;
  }
}

TEST(LinkModel, TransientFromUpState) {
  const LinkModel link(0.05, 0.9);
  EXPECT_DOUBLE_EQ(link.up_probability_after(LinkState::kUp, 0), 1.0);
  EXPECT_NEAR(link.up_probability_after(LinkState::kUp, 1), 0.95, 1e-15);
}

TEST(LinkModel, TransientConvergesToSteadyState) {
  const LinkModel link(0.184, 0.9);
  const double pi = link.steady_state_availability();
  EXPECT_NEAR(link.up_probability_after(LinkState::kDown, 100), pi, 1e-12);
  EXPECT_NEAR(link.up_probability_after(LinkState::kUp, 100), pi, 1e-12);
}

TEST(LinkModel, InvalidInitialProbabilityThrows) {
  const LinkModel link(0.1, 0.9);
  EXPECT_THROW((void)link.up_probability_after(1.5, 3), precondition_error);
}

TEST(LinkModel, MemoryEigenvalue) {
  EXPECT_NEAR(LinkModel(0.184, 0.9).memory_eigenvalue(), -0.084, 1e-15);
  EXPECT_NEAR(LinkModel(0.05, 0.9).memory_eigenvalue(), 0.05, 1e-15);
}

TEST(LinkModel, SlotsToSteadyStateIsSmall) {
  // Paper Fig. 17: "the link returns to its steady-state almost
  // immediately" — a handful of slots for typical parameters.
  const LinkModel link(0.184, 0.9);
  const std::uint64_t slots = link.slots_to_steady_state(1e-3);
  EXPECT_LE(slots, 4u);
  const double pi = link.steady_state_availability();
  EXPECT_NEAR(link.up_probability_after(LinkState::kDown, slots), pi, 1e-3);
}

TEST(LinkModel, ToDtmcSteadyStateMatchesEq4) {
  const LinkModel link(0.3, 0.7);
  const linalg::Vector pi = markov::steady_state_direct(link.to_dtmc());
  EXPECT_NEAR(pi[0], link.steady_state_availability(), 1e-12);
}

TEST(LinkModel, FromChannelFailuresUniformCase) {
  // All channels equal: pfl = f and prc = 1 - f (hopping cannot help).
  const std::vector<double> channels(16, 0.1);
  const LinkModel link = LinkModel::from_channel_failures(channels);
  EXPECT_NEAR(link.failure_probability(), 0.1, 1e-12);
  EXPECT_NEAR(link.recovery_probability(), 0.9, 1e-12);
}

TEST(LinkModel, FromChannelFailuresHoppingHelpsWithFewBadChannels) {
  // 3 jammed channels out of 16: a failure is probably on a bad channel
  // and the hop probably lands on a clean one -> prc well above 1 - pfl.
  std::vector<double> channels(16, 0.01);
  channels[0] = channels[1] = channels[2] = 0.95;
  const LinkModel link = LinkModel::from_channel_failures(channels);
  EXPECT_GT(link.recovery_probability(), 0.75);
  EXPECT_GT(link.recovery_probability(),
            1.0 - link.failure_probability());
}

TEST(LinkModel, BlacklistingRaisesRecoveryTowardOne) {
  // The paper's argument made quantitative: dropping the blacklisted
  // channels from the hop set improves prc.
  std::vector<double> all(16, 0.02);
  all[0] = all[1] = all[2] = 0.9;
  const LinkModel before = LinkModel::from_channel_failures(all);
  const std::vector<double> active(all.begin() + 3, all.end());
  const LinkModel after = LinkModel::from_channel_failures(active);
  EXPECT_GT(after.recovery_probability(), before.recovery_probability());
  EXPECT_LT(after.failure_probability(), before.failure_probability());
  EXPECT_GT(after.recovery_probability(), 0.97);
}

TEST(LinkModel, FromChannelFailuresEdgeCases) {
  // Single channel: no hop possible.
  const std::vector<double> one{0.3};
  const LinkModel single = LinkModel::from_channel_failures(one);
  EXPECT_DOUBLE_EQ(single.failure_probability(), 0.3);
  EXPECT_DOUBLE_EQ(single.recovery_probability(), 0.7);
  // All channels perfect: prc defined as 1.
  const std::vector<double> perfect(4, 0.0);
  EXPECT_DOUBLE_EQ(
      LinkModel::from_channel_failures(perfect).recovery_probability(),
      1.0);
  const std::vector<double> empty;
  EXPECT_THROW(LinkModel::from_channel_failures(empty), precondition_error);
  const std::vector<double> bad{1.5};
  EXPECT_THROW(LinkModel::from_channel_failures(bad), precondition_error);
}

TEST(LinkModel, Equality) {
  EXPECT_EQ(LinkModel(0.1, 0.9), LinkModel(0.1, 0.9));
  EXPECT_NE(LinkModel(0.1, 0.9), LinkModel(0.2, 0.9));
}

}  // namespace
}  // namespace whart::link
