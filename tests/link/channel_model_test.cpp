// Unit tests of link::ChannelModel: closed-form Gilbert-Elliott
// stationary distribution and burst lengths, spec parsing round-trips
// (including chain files), marginal rescaling, and the degenerate
// corners the channel-enlarged solver leans on.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "whart/common/contracts.hpp"
#include "whart/link/channel_model.hpp"
#include "whart/link/link_model.hpp"
#include "whart/markov/steady_state.hpp"

namespace whart::link {
namespace {

TEST(ChannelModel, IidIsOneStateWithTheGivenSuccess) {
  const ChannelModel channel = ChannelModel::iid(0.83);
  EXPECT_EQ(channel.state_count(), 1u);
  EXPECT_TRUE(channel.is_iid());
  EXPECT_DOUBLE_EQ(channel.transition(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(channel.success_in_state(0), 0.83);
  EXPECT_DOUBLE_EQ(channel.marginal_success(), 0.83);
  EXPECT_DOUBLE_EQ(channel.stationary()[0], 1.0);
}

TEST(ChannelModel, GilbertElliottStationaryIsClosedForm) {
  const double p_gb = 0.12;
  const double p_bg = 0.48;
  const ChannelModel channel =
      ChannelModel::gilbert_elliott(p_gb, p_bg, 0.01, 0.8);
  ASSERT_EQ(channel.state_count(), 2u);
  EXPECT_FALSE(channel.is_iid());
  // pi = (p_bg, p_gb) / (p_gb + p_bg).
  EXPECT_NEAR(channel.stationary()[0], p_bg / (p_gb + p_bg), 1e-15);
  EXPECT_NEAR(channel.stationary()[1], p_gb / (p_gb + p_bg), 1e-15);
  EXPECT_NEAR(channel.marginal_success(),
              1.0 - (channel.stationary()[0] * 0.01 +
                     channel.stationary()[1] * 0.8),
              1e-15);
}

TEST(ChannelModel, MeanBadBurstLengthIsInverseRecovery) {
  const ChannelModel channel =
      ChannelModel::gilbert_elliott(0.2, 0.25, 0.0, 1.0);
  EXPECT_NEAR(channel.mean_bad_burst_length(), 1.0 / 0.25, 1e-15);
  EXPECT_NEAR(channel.mean_sojourn_slots(0), 1.0 / 0.2, 1e-15);
}

TEST(ChannelModel, FromLinkModelMirrorsTheUpDownChain) {
  const LinkModel link(0.3, 0.7);
  const ChannelModel channel = ChannelModel::from_link_model(link);
  ASSERT_EQ(channel.state_count(), 2u);
  EXPECT_DOUBLE_EQ(channel.transition(0, 1), 0.3);
  EXPECT_DOUBLE_EQ(channel.transition(1, 0), 0.7);
  EXPECT_DOUBLE_EQ(channel.error_rate(0), 0.0);
  EXPECT_DOUBLE_EQ(channel.error_rate(1), 1.0);
  EXPECT_NEAR(channel.marginal_success(),
              link.steady_state_availability(), 1e-15);
}

TEST(ChannelModel, ChainStationarySolvesTheThreeStateChain) {
  const ChannelModel channel = ChannelModel::chain(
      {0.8, 0.15, 0.05,  //
       0.2, 0.7, 0.1,    //
       0.1, 0.3, 0.6},
      {0.01, 0.3, 0.9});
  ASSERT_EQ(channel.state_count(), 3u);
  // Stationarity: pi P = pi, rows of P sum to 1.
  for (std::size_t c = 0; c < 3; ++c) {
    double mass = 0.0;
    for (std::size_t r = 0; r < 3; ++r)
      mass += channel.stationary()[r] * channel.transition(r, c);
    EXPECT_NEAR(mass, channel.stationary()[c], 1e-12) << "state " << c;
  }
  double total = 0.0;
  for (double pi : channel.stationary()) total += pi;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(ChannelModel, ParseRoundTripsGeSpecs) {
  const ChannelModel parsed = ChannelModel::parse("ge:0.1,0.4,0.02,0.7");
  const ChannelModel direct =
      ChannelModel::gilbert_elliott(0.1, 0.4, 0.02, 0.7);
  EXPECT_EQ(parsed, direct);
  EXPECT_EQ(ChannelModel::parse(parsed.to_string()), parsed);
  EXPECT_EQ(ChannelModel::parse("iid"), ChannelModel::iid());
}

TEST(ChannelModel, ParseReadsChainFiles) {
  const std::string path = ::testing::TempDir() + "channel_chain_test.txt";
  {
    std::ofstream file(path);
    file << "# three-state fading ladder\n"
         << "3\n"
         << "0.8 0.15 0.05  # good row\n"
         << "0.2 0.7 0.1\n"
         << "0.1 0.3 0.6\n"
         << "0.01 0.3 0.9\n";
  }
  const ChannelModel parsed = ChannelModel::parse("chain:" + path);
  const ChannelModel direct = ChannelModel::chain(
      {0.8, 0.15, 0.05, 0.2, 0.7, 0.1, 0.1, 0.3, 0.6}, {0.01, 0.3, 0.9});
  EXPECT_EQ(parsed, direct);
  std::remove(path.c_str());
}

TEST(ChannelModel, ParseRejectsMalformedSpecs) {
  EXPECT_THROW(ChannelModel::parse("bogus"), precondition_error);
  EXPECT_THROW(ChannelModel::parse("ge:0.1,0.4"), precondition_error);
  EXPECT_THROW(ChannelModel::parse("ge:0.1,0.4,0.02,0.7,9"),
               precondition_error);
  EXPECT_THROW(ChannelModel::parse("chain:/no/such/file"),
               precondition_error);
  EXPECT_THROW(ChannelModel::gilbert_elliott(0.0, 0.0, 0.0, 1.0),
               precondition_error);
  EXPECT_THROW(ChannelModel::chain({0.5, 0.4}, {0.0, 1.0}),
               precondition_error);
}

TEST(ChannelModel, WithMarginalSuccessHitsTheTargetKeepingBursts) {
  // Expected stationary error 0.156; targets down to 1 - 0.156/0.7 pi_b
  // stay exactly reachable before the bad state clamps at error 1.
  const ChannelModel base =
      ChannelModel::gilbert_elliott(0.1, 0.4, 0.02, 0.7);
  for (double target : {0.99, 0.83, 0.78}) {
    const ChannelModel scaled = base.with_marginal_success(target);
    EXPECT_NEAR(scaled.marginal_success(), target, 1e-12) << target;
    // The chain — and hence the burst structure — is untouched.
    EXPECT_DOUBLE_EQ(scaled.transition(0, 1), base.transition(0, 1));
    EXPECT_DOUBLE_EQ(scaled.mean_bad_burst_length(),
                     base.mean_bad_burst_length());
  }
}

TEST(ChannelModel, WithMarginalSuccessClampsWhenTheTargetIsUnreachable) {
  // Scaling toward a very low availability saturates the bad state at
  // error 1; the result is clamped, valid, and as close as possible.
  const ChannelModel base =
      ChannelModel::gilbert_elliott(0.05, 0.9, 0.0, 0.5);
  const ChannelModel scaled = base.with_marginal_success(0.1);
  for (std::size_t s = 0; s < 2; ++s) {
    EXPECT_GE(scaled.error_rate(s), 0.0);
    EXPECT_LE(scaled.error_rate(s), 1.0);
  }
  // An error-free template gets the uniform error rate.
  const ChannelModel flat =
      ChannelModel::gilbert_elliott(0.2, 0.3, 0.0, 0.0)
          .with_marginal_success(0.75);
  EXPECT_NEAR(flat.error_rate(0), 0.25, 1e-15);
  EXPECT_NEAR(flat.error_rate(1), 0.25, 1e-15);
  EXPECT_NEAR(flat.marginal_success(), 0.75, 1e-15);
}

TEST(ChannelModel, ToDtmcAgreesWithTheCachedStationary) {
  const ChannelModel channel = ChannelModel::chain(
      {0.7, 0.2, 0.1, 0.3, 0.6, 0.1, 0.05, 0.15, 0.8}, {0.0, 0.4, 1.0});
  const linalg::Vector pi = markov::steady_state_direct(channel.to_dtmc());
  for (std::size_t s = 0; s < channel.state_count(); ++s)
    EXPECT_NEAR(pi[s], channel.stationary()[s], 1e-12) << "state " << s;
}

}  // namespace
}  // namespace whart::link
