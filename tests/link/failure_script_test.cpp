#include "whart/link/failure_script.hpp"

#include <gtest/gtest.h>

#include "whart/common/contracts.hpp"

namespace whart::link {
namespace {

const LinkModel kLink{0.184, 0.9};

TEST(FailureWindow, Contains) {
  const FailureWindow w{10, 20};
  EXPECT_FALSE(w.contains(9));
  EXPECT_TRUE(w.contains(10));
  EXPECT_TRUE(w.contains(19));
  EXPECT_FALSE(w.contains(20));
}

TEST(ScriptedLink, NoWindowsIsSteadyState) {
  const ScriptedLink link(kLink, {});
  const double pi = kLink.steady_state_availability();
  EXPECT_DOUBLE_EQ(link.up_probability(0), pi);
  EXPECT_DOUBLE_EQ(link.up_probability(1000), pi);
}

TEST(ScriptedLink, DownInsideWindow) {
  const ScriptedLink link(kLink, {{5, 10}});
  EXPECT_DOUBLE_EQ(link.up_probability(5), 0.0);
  EXPECT_DOUBLE_EQ(link.up_probability(9), 0.0);
}

TEST(ScriptedLink, SteadyBeforeFirstWindow) {
  const ScriptedLink link(kLink, {{5, 10}});
  EXPECT_DOUBLE_EQ(link.up_probability(4),
                   kLink.steady_state_availability());
}

TEST(ScriptedLink, RecoversTransientlyAfterWindow) {
  const ScriptedLink link(kLink, {{5, 10}});
  // One slot after the window (slot 10): one recovery step from DOWN.
  EXPECT_NEAR(link.up_probability(10),
              kLink.up_probability_after(LinkState::kDown, 1), 1e-15);
  EXPECT_NEAR(link.up_probability(12),
              kLink.up_probability_after(LinkState::kDown, 3), 1e-15);
  // Far in the future: steady state again.
  EXPECT_NEAR(link.up_probability(500),
              kLink.steady_state_availability(), 1e-12);
}

TEST(ScriptedLink, MultipleWindows) {
  const ScriptedLink link(kLink, {{5, 10}, {20, 25}});
  EXPECT_DOUBLE_EQ(link.up_probability(7), 0.0);
  EXPECT_DOUBLE_EQ(link.up_probability(22), 0.0);
  EXPECT_GT(link.up_probability(15), 0.0);
  EXPECT_NEAR(link.up_probability(26),
              kLink.up_probability_after(LinkState::kDown, 2), 1e-15);
}

TEST(ScriptedLink, InvalidWindowsThrow) {
  EXPECT_THROW(ScriptedLink(kLink, {{10, 10}}), precondition_error);
  EXPECT_THROW(ScriptedLink(kLink, {{10, 5}}), precondition_error);
  EXPECT_THROW(ScriptedLink(kLink, {{10, 20}, {5, 8}}), precondition_error);
  EXPECT_THROW(ScriptedLink(kLink, {{5, 12}, {10, 20}}), precondition_error);
}

TEST(CycleWindow, ComputesAbsoluteSlots) {
  // Cycle 0 of a 40-slot cycle: [0, 40); cycles 2-3: [80, 160).
  EXPECT_EQ(cycle_window(0, 1, 40), (FailureWindow{0, 40}));
  EXPECT_EQ(cycle_window(2, 2, 40), (FailureWindow{80, 160}));
  EXPECT_THROW(cycle_window(0, 0, 40), precondition_error);
}

}  // namespace
}  // namespace whart::link
