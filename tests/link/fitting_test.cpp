#include "whart/link/fitting.hpp"

#include <gtest/gtest.h>

#include "whart/common/contracts.hpp"
#include "whart/markov/simulate.hpp"

namespace whart::link {
namespace {

TEST(Fitting, ExactCountsGiveExactEstimates) {
  // 100 UP slots with 10 drops; 50 DOWN slots with 45 recoveries.
  const GilbertFit fit = fit_gilbert_from_counts(10, 90, 45, 5);
  ASSERT_TRUE(fit.pfl.has_value());
  ASSERT_TRUE(fit.prc.has_value());
  EXPECT_DOUBLE_EQ(*fit.pfl, 0.1);
  EXPECT_DOUBLE_EQ(*fit.prc, 0.9);
  EXPECT_NEAR(fit.availability, 100.0 / 150.0, 1e-12);
  EXPECT_TRUE(fit.pfl_interval.contains(0.1));
  EXPECT_TRUE(fit.prc_interval.contains(0.9));
  EXPECT_EQ(fit.to_model(), LinkModel(0.1, 0.9));
}

TEST(Fitting, TraceTransitionsCountedCorrectly) {
  // UP UP DOWN UP DOWN DOWN UP: transitions UU, UD, DU, UD, DD, DU.
  const std::vector<bool> trace{true, true, false, true,
                                false, false, true};
  const GilbertFit fit = fit_gilbert(trace);
  EXPECT_EQ(fit.up_to_down, 2u);
  EXPECT_EQ(fit.down_to_up, 2u);
  EXPECT_EQ(fit.up_slots, 3u);
  EXPECT_EQ(fit.down_slots, 3u);
  EXPECT_DOUBLE_EQ(*fit.pfl, 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(*fit.prc, 2.0 / 3.0);
}

TEST(Fitting, AllUpTraceHasNoRecoveryEstimate) {
  const std::vector<bool> trace(100, true);
  const GilbertFit fit = fit_gilbert(trace);
  ASSERT_TRUE(fit.pfl.has_value());
  EXPECT_DOUBLE_EQ(*fit.pfl, 0.0);
  EXPECT_FALSE(fit.prc.has_value());
  EXPECT_THROW((void)fit.to_model(), precondition_error);
}

TEST(Fitting, RecoversTrueChainFromSampledTrajectory) {
  // Round trip: sample a long trajectory of a known Gilbert chain and
  // fit it back; estimates must land in their own confidence intervals
  // around the truth.
  const LinkModel truth(0.184, 0.9);
  numeric::Xoshiro256 rng(4242);
  const auto states =
      markov::sample_trajectory(truth.to_dtmc(), 0, 200000, rng);
  std::vector<bool> trace(states.size());
  for (std::size_t t = 0; t < states.size(); ++t)
    trace[t] = states[t] == 0;  // state 0 = UP
  const GilbertFit fit = fit_gilbert(trace);
  ASSERT_TRUE(fit.pfl.has_value() && fit.prc.has_value());
  EXPECT_NEAR(*fit.pfl, 0.184, 0.005);
  EXPECT_NEAR(*fit.prc, 0.9, 0.01);
  EXPECT_TRUE(fit.pfl_interval.contains(0.184));
  EXPECT_TRUE(fit.prc_interval.contains(0.9));
  EXPECT_NEAR(fit.availability, truth.steady_state_availability(), 0.01);
}

TEST(Fitting, InvalidInputsThrow) {
  EXPECT_THROW(fit_gilbert({true}), precondition_error);
  EXPECT_THROW(fit_gilbert_from_counts(0, 0, 0, 0), precondition_error);
}

}  // namespace
}  // namespace whart::link
