#include "whart/numeric/probability.hpp"

#include <gtest/gtest.h>

#include "whart/common/contracts.hpp"

namespace whart::numeric {
namespace {

TEST(Probability, ValidConstruction) {
  EXPECT_DOUBLE_EQ(Probability(0.0).value(), 0.0);
  EXPECT_DOUBLE_EQ(Probability(1.0).value(), 1.0);
  EXPECT_DOUBLE_EQ(Probability(0.37).value(), 0.37);
}

TEST(Probability, DefaultIsZero) {
  EXPECT_DOUBLE_EQ(Probability().value(), 0.0);
}

TEST(Probability, OutOfRangeThrows) {
  EXPECT_THROW(Probability(-0.1), precondition_error);
  EXPECT_THROW(Probability(1.1), precondition_error);
}

TEST(Probability, TinyRoundoffIsClamped) {
  EXPECT_DOUBLE_EQ(Probability(-1e-15).value(), 0.0);
  EXPECT_DOUBLE_EQ(Probability(1.0 + 1e-15).value(), 1.0);
}

TEST(Probability, Complement) {
  EXPECT_DOUBLE_EQ(Probability(0.3).complement().value(), 0.7);
  EXPECT_DOUBLE_EQ(Probability(1.0).complement().value(), 0.0);
}

TEST(Probability, ImplicitConversionToDouble) {
  const Probability p(0.25);
  EXPECT_DOUBLE_EQ(p * 4.0, 1.0);
}

TEST(IsPmf, AcceptsValidPmf) {
  const std::vector<double> pmf{0.2, 0.3, 0.5};
  EXPECT_TRUE(is_pmf(pmf));
}

TEST(IsPmf, RejectsWrongMass) {
  const std::vector<double> pmf{0.2, 0.3};
  EXPECT_FALSE(is_pmf(pmf));
}

TEST(IsPmf, RejectsNegativeEntry) {
  const std::vector<double> pmf{1.2, -0.2};
  EXPECT_FALSE(is_pmf(pmf));
}

TEST(Normalized, RescalesToUnitMass) {
  const std::vector<double> weights{1.0, 3.0};
  const auto pmf = normalized(weights);
  EXPECT_DOUBLE_EQ(pmf[0], 0.25);
  EXPECT_DOUBLE_EQ(pmf[1], 0.75);
}

TEST(Normalized, ZeroMassThrows) {
  const std::vector<double> weights{0.0, 0.0};
  EXPECT_THROW(normalized(weights), precondition_error);
}

TEST(Expectation, WeightedSum) {
  const std::vector<double> values{10.0, 20.0};
  const std::vector<double> pmf{0.25, 0.75};
  EXPECT_DOUBLE_EQ(expectation(values, pmf), 17.5);
}

TEST(Expectation, SizeMismatchThrows) {
  const std::vector<double> values{10.0};
  const std::vector<double> pmf{0.5, 0.5};
  EXPECT_THROW(expectation(values, pmf), precondition_error);
}

TEST(Cumulative, PrefixSums) {
  const std::vector<double> pmf{0.1, 0.2, 0.7};
  const auto cdf = cumulative(pmf);
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf[0], 0.1);
  EXPECT_DOUBLE_EQ(cdf[1], 0.3);
  EXPECT_DOUBLE_EQ(cdf[2], 1.0);
}

}  // namespace
}  // namespace whart::numeric
