#include "whart/numeric/combinatorics.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace whart::numeric {
namespace {

TEST(Binomial, BaseCases) {
  EXPECT_DOUBLE_EQ(binomial(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(binomial(5, 0), 1.0);
  EXPECT_DOUBLE_EQ(binomial(5, 5), 1.0);
  EXPECT_DOUBLE_EQ(binomial(1, 1), 1.0);
}

TEST(Binomial, SmallValues) {
  EXPECT_DOUBLE_EQ(binomial(4, 2), 6.0);
  EXPECT_DOUBLE_EQ(binomial(5, 2), 10.0);
  EXPECT_DOUBLE_EQ(binomial(5, 3), 10.0);
  EXPECT_DOUBLE_EQ(binomial(10, 4), 210.0);
  EXPECT_DOUBLE_EQ(binomial(20, 10), 184756.0);
}

TEST(Binomial, KGreaterThanNIsZero) {
  EXPECT_DOUBLE_EQ(binomial(3, 4), 0.0);
  EXPECT_DOUBLE_EQ(binomial(0, 1), 0.0);
}

TEST(Binomial, Symmetry) {
  for (std::uint32_t n = 0; n <= 30; ++n)
    for (std::uint32_t k = 0; k <= n; ++k)
      EXPECT_DOUBLE_EQ(binomial(n, k), binomial(n, n - k))
          << "n=" << n << " k=" << k;
}

TEST(Binomial, PascalRecurrence) {
  for (std::uint32_t n = 1; n <= 25; ++n)
    for (std::uint32_t k = 1; k <= n; ++k)
      EXPECT_NEAR(binomial(n, k), binomial(n - 1, k - 1) + binomial(n - 1, k),
                  1e-9 * binomial(n, k))
          << "n=" << n << " k=" << k;
}

TEST(Binomial, RowSumsArePowersOfTwo) {
  for (std::uint32_t n = 0; n <= 20; ++n) {
    double sum = 0.0;
    for (std::uint32_t k = 0; k <= n; ++k) sum += binomial(n, k);
    EXPECT_NEAR(sum, std::pow(2.0, n), 1e-6) << "n=" << n;
  }
}

TEST(LogBinomial, AgreesWithDirect) {
  EXPECT_NEAR(std::exp(log_binomial(10, 4)), 210.0, 1e-9);
  EXPECT_NEAR(std::exp(log_binomial(20, 10)), 184756.0, 1e-6);
}

TEST(LogBinomial, KGreaterThanNIsMinusInfinity) {
  EXPECT_EQ(log_binomial(3, 4), -HUGE_VAL);
}

TEST(LogBinomial, LargeArgumentsFinite) {
  const double log_c = log_binomial(1016, 508);
  EXPECT_TRUE(std::isfinite(log_c));
  EXPECT_GT(log_c, 0.0);
}

TEST(RetryPlacements, MatchesStarsAndBars) {
  // 1 failure over 3 hops: 3 placements; 2 failures over 3 hops: 6;
  // 3 failures over 3 hops: 10 (paper Section V-A pattern).
  EXPECT_DOUBLE_EQ(retry_placements(0, 3), 1.0);
  EXPECT_DOUBLE_EQ(retry_placements(1, 3), 3.0);
  EXPECT_DOUBLE_EQ(retry_placements(2, 3), 6.0);
  EXPECT_DOUBLE_EQ(retry_placements(3, 3), 10.0);
}

TEST(RetryPlacements, SingleHopAlwaysOnePlacement) {
  for (std::uint32_t failures = 0; failures < 10; ++failures)
    EXPECT_DOUBLE_EQ(retry_placements(failures, 1), 1.0);
}

TEST(RetryPlacements, ZeroHops) {
  EXPECT_DOUBLE_EQ(retry_placements(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(retry_placements(1, 0), 0.0);
}

}  // namespace
}  // namespace whart::numeric
