#include "whart/numeric/rng.hpp"

#include <set>

#include <gtest/gtest.h>

namespace whart::numeric {
namespace {

TEST(Xoshiro, DeterministicForSeed) {
  Xoshiro256 a(123);
  Xoshiro256 b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro, DifferentSeedsDiffer) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Xoshiro, UniformInUnitInterval) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Xoshiro, UniformMeanIsHalf) {
  Xoshiro256 rng(11);
  double sum = 0.0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kSamples, 0.5, 0.01);
}

TEST(Xoshiro, BernoulliEdgeCases) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

TEST(Xoshiro, BernoulliFrequencyMatchesP) {
  Xoshiro256 rng(5);
  constexpr int kSamples = 200000;
  int hits = 0;
  for (int i = 0; i < kSamples; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / kSamples, 0.3, 0.01);
}

TEST(Xoshiro, BelowStaysInRange) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 10000; ++i) ASSERT_LT(rng.below(13), 13u);
}

TEST(Xoshiro, BelowZeroBoundIsZero) {
  Xoshiro256 rng(9);
  EXPECT_EQ(rng.below(0), 0u);
}

TEST(Xoshiro, BelowCoversAllResidues) {
  Xoshiro256 rng(17);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Xoshiro, JumpDecorrelatesStreams) {
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  b.jump();
  int equal = 0;
  for (int i = 0; i < 1000; ++i)
    if (a.next() == b.next()) ++equal;
  EXPECT_EQ(equal, 0);
}

TEST(SplitMix, KnownFirstValueIsStable) {
  std::uint64_t s1 = 0;
  std::uint64_t s2 = 0;
  EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  EXPECT_EQ(s1, s2);
}

}  // namespace
}  // namespace whart::numeric
