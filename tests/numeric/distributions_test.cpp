#include "whart/numeric/distributions.hpp"

#include <numeric>

#include <gtest/gtest.h>

#include "whart/common/contracts.hpp"

namespace whart::numeric {
namespace {

TEST(Geometric, PmfAndCdf) {
  const Geometric g(0.25);
  EXPECT_DOUBLE_EQ(g.pmf(1), 0.25);
  EXPECT_DOUBLE_EQ(g.pmf(2), 0.75 * 0.25);
  EXPECT_DOUBLE_EQ(g.pmf(0), 0.0);
  EXPECT_NEAR(g.cdf(2), 0.25 + 0.75 * 0.25, 1e-15);
  EXPECT_DOUBLE_EQ(g.cdf(0), 0.0);
}

TEST(Geometric, MeanIsReciprocal) {
  EXPECT_DOUBLE_EQ(Geometric(0.25).mean(), 4.0);
  EXPECT_DOUBLE_EQ(Geometric(1.0).mean(), 1.0);
}

TEST(Geometric, PaperTimeToFirstLoss) {
  // Paper Section V: R = 0.9624 => E[N] = 1/(1 - R) ~ 26.6 intervals.
  const Geometric g(1.0 - 0.9624);
  EXPECT_NEAR(g.mean(), 26.6, 0.05);
}

TEST(Geometric, InvalidProbabilityThrows) {
  EXPECT_THROW(Geometric(0.0), precondition_error);
  EXPECT_THROW(Geometric(1.5), precondition_error);
}

TEST(Geometric, PmfSumsToCdf) {
  const Geometric g(0.4);
  double sum = 0.0;
  for (std::uint64_t k = 1; k <= 20; ++k) sum += g.pmf(k);
  EXPECT_NEAR(sum, g.cdf(20), 1e-12);
}

TEST(NegativeBinomialCycles, SingleHopIsGeometric) {
  const auto cycles = negative_binomial_cycles(1, 0.83, 4);
  const Geometric g(0.83);
  ASSERT_EQ(cycles.size(), 4u);
  for (std::uint64_t m = 1; m <= 4; ++m)
    EXPECT_NEAR(cycles[m - 1], g.pmf(m), 1e-15);
}

TEST(NegativeBinomialCycles, PaperExamplePathProbabilities) {
  // Paper Fig. 6: 3 hops, pi(up) = 0.75, Is = 4 gives goal probabilities
  // 0.4219, 0.3164, 0.1582, 0.06592 and reachability 0.9624.
  const auto cycles = negative_binomial_cycles(3, 0.75, 4);
  ASSERT_EQ(cycles.size(), 4u);
  EXPECT_NEAR(cycles[0], 0.4219, 5e-5);
  EXPECT_NEAR(cycles[1], 0.3164, 5e-5);
  EXPECT_NEAR(cycles[2], 0.1582, 5e-5);
  EXPECT_NEAR(cycles[3], 0.06592, 5e-6);
  const double r = std::accumulate(cycles.begin(), cycles.end(), 0.0);
  EXPECT_NEAR(r, 0.9624, 5e-5);
}

TEST(NegativeBinomialCycles, PerfectLinksDeliverInFirstCycle) {
  const auto cycles = negative_binomial_cycles(5, 1.0, 3);
  EXPECT_DOUBLE_EQ(cycles[0], 1.0);
  EXPECT_DOUBLE_EQ(cycles[1], 0.0);
  EXPECT_DOUBLE_EQ(cycles[2], 0.0);
}

TEST(NegativeBinomialCycles, DeadLinksNeverDeliver) {
  const auto cycles = negative_binomial_cycles(2, 0.0, 5);
  for (double g : cycles) EXPECT_DOUBLE_EQ(g, 0.0);
}

class NegBinomialProperty
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, double>> {};

TEST_P(NegBinomialProperty, MassNeverExceedsOneAndIncreases) {
  const auto [hops, ps] = GetParam();
  const auto cycles = negative_binomial_cycles(hops, ps, 50);
  double mass = 0.0;
  for (double g : cycles) {
    EXPECT_GE(g, 0.0);
    mass += g;
  }
  EXPECT_LE(mass, 1.0 + 1e-12);
  // With many cycles, virtually all mass is delivered for ps > 0.5.
  if (ps > 0.5) {
    EXPECT_GT(mass, 0.999);
  }
}

TEST_P(NegBinomialProperty, ZeroHopsRejected) {
  const auto [hops, ps] = GetParam();
  (void)hops;
  EXPECT_THROW(negative_binomial_cycles(0, ps, 4), precondition_error);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, NegBinomialProperty,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u, 8u),
                       ::testing::Values(0.1, 0.5, 0.75, 0.9, 0.99)));

}  // namespace
}  // namespace whart::numeric
