#include "whart/phy/bsc.hpp"

#include <gtest/gtest.h>

#include "whart/common/contracts.hpp"

namespace whart::phy {
namespace {

TEST(Bsc, InvalidCrossoverThrows) {
  EXPECT_THROW(BinarySymmetricChannel(-0.1), precondition_error);
  EXPECT_THROW(BinarySymmetricChannel(1.1), precondition_error);
}

TEST(Bsc, WordProbabilities) {
  const BinarySymmetricChannel channel(0.1);
  EXPECT_NEAR(channel.word_success_probability(1), 0.9, 1e-15);
  EXPECT_NEAR(channel.word_success_probability(2), 0.81, 1e-15);
  EXPECT_NEAR(channel.word_failure_probability(2), 0.19, 1e-15);
}

TEST(Bsc, PerfectChannelNeverFails) {
  const BinarySymmetricChannel channel(0.0);
  EXPECT_DOUBLE_EQ(channel.word_failure_probability(1016), 0.0);
  numeric::Xoshiro256 rng(1);
  EXPECT_TRUE(channel.transmit_bit(true, rng));
  EXPECT_FALSE(channel.transmit_bit(false, rng));
}

TEST(Bsc, AlwaysFlippingChannel) {
  const BinarySymmetricChannel channel(1.0);
  numeric::Xoshiro256 rng(1);
  EXPECT_FALSE(channel.transmit_bit(true, rng));
  EXPECT_TRUE(channel.transmit_bit(false, rng));
}

TEST(Bsc, TransmitWordPreservesLength) {
  const BinarySymmetricChannel channel(0.5);
  numeric::Xoshiro256 rng(2);
  const std::vector<bool> word{true, false, true, true};
  EXPECT_EQ(channel.transmit_word(word, rng).size(), word.size());
}

TEST(Bsc, SimulatedFailureRateMatchesEquation2) {
  // Cross-validate paper Eq. 2 by Monte Carlo: BER = 1e-3, L = 127 bits.
  const BinarySymmetricChannel channel(1e-3);
  numeric::Xoshiro256 rng(42);
  const double analytic = channel.word_failure_probability(127);
  const double simulated = channel.simulate_word_failure_rate(127, 50000, rng);
  EXPECT_NEAR(simulated, analytic, 0.01);
}

TEST(Bsc, ZeroTrialsThrows) {
  const BinarySymmetricChannel channel(0.1);
  numeric::Xoshiro256 rng(1);
  EXPECT_THROW((void)channel.simulate_word_failure_rate(8, 0, rng),
               precondition_error);
}

}  // namespace
}  // namespace whart::phy
