#include "whart/phy/frame.hpp"

#include <gtest/gtest.h>

#include "whart/common/contracts.hpp"

namespace whart::phy {
namespace {

TEST(Frame, StandardConstants) {
  EXPECT_EQ(kSlotMilliseconds, 10u);
  EXPECT_EQ(kChannelCount, 16u);
  EXPECT_EQ(kMaxPayloadBytes, 127u);
  EXPECT_EQ(kMessageBits, 1016u);
}

TEST(MessageFailure, PaperSectionVBExample) {
  // Paper Section V-B: BER = 1e-4 with L = 1016 gives pfl = 0.0966.
  EXPECT_NEAR(message_failure_probability(1e-4), 0.0966, 5e-5);
}

TEST(MessageFailure, PaperTableIVValues) {
  // pfl3 = 1 - (1 - 9.14e-5)^1016 = 0.089; pfl4 with BER4 = 2.66e-4
  // gives 0.237.
  EXPECT_NEAR(message_failure_probability(9.14e-5), 0.089, 5e-4);
  EXPECT_NEAR(message_failure_probability(2.66e-4), 0.237, 5e-4);
}

TEST(MessageFailure, EdgeCases) {
  EXPECT_DOUBLE_EQ(message_failure_probability(0.0), 0.0);
  EXPECT_DOUBLE_EQ(message_failure_probability(1.0), 1.0);
  EXPECT_NEAR(message_failure_probability(0.5, 1), 0.5, 1e-15);
}

TEST(MessageFailure, MonotoneInLengthAndBer) {
  EXPECT_LT(message_failure_probability(1e-4, 100),
            message_failure_probability(1e-4, 1000));
  EXPECT_LT(message_failure_probability(1e-5),
            message_failure_probability(1e-4));
}

TEST(MessageFailure, InvalidArgumentsThrow) {
  EXPECT_THROW(message_failure_probability(-0.1), precondition_error);
  EXPECT_THROW(message_failure_probability(1.5), precondition_error);
  EXPECT_THROW(message_failure_probability(0.1, 0), precondition_error);
}

TEST(MessageFailureFromSnr, ComposesEq1AndEq2) {
  // Eb/N0 = 7 -> BER = 9.14e-5 -> pfl ~ 0.089 (paper Section VI-E).
  EXPECT_NEAR(message_failure_from_snr(EbN0::from_linear(7.0)), 0.089, 1e-3);
  // Eb/N0 = 6 -> pfl ~ 0.237.
  EXPECT_NEAR(message_failure_from_snr(EbN0::from_linear(6.0)), 0.237, 2e-3);
}

}  // namespace
}  // namespace whart::phy
