#include "whart/phy/snr.hpp"

#include <gtest/gtest.h>

#include "whart/common/contracts.hpp"

namespace whart::phy {
namespace {

TEST(EbN0, LinearRoundTrip) {
  const EbN0 snr = EbN0::from_linear(7.0);
  EXPECT_DOUBLE_EQ(snr.linear(), 7.0);
}

TEST(EbN0, DbConversion) {
  EXPECT_NEAR(EbN0::from_db(10.0).linear(), 10.0, 1e-12);
  EXPECT_NEAR(EbN0::from_db(0.0).linear(), 1.0, 1e-12);
  EXPECT_NEAR(EbN0::from_db(3.0).linear(), 1.9953, 1e-4);
}

TEST(EbN0, DbRoundTrip) {
  const EbN0 snr = EbN0::from_linear(6.0);
  EXPECT_NEAR(EbN0::from_db(snr.db()).linear(), 6.0, 1e-12);
}

TEST(EbN0, NegativeLinearThrows) {
  EXPECT_THROW(EbN0::from_linear(-1.0), precondition_error);
}

TEST(EbN0, Ordering) {
  EXPECT_LT(EbN0::from_linear(1.0), EbN0::from_linear(2.0));
  EXPECT_EQ(EbN0::from_linear(2.0), EbN0::from_db(EbN0::from_linear(2.0).db()));
}

TEST(Rssi, Ordering) {
  EXPECT_LT((Rssi{-90.0}), (Rssi{-40.0}));
}

}  // namespace
}  // namespace whart::phy
