#include "whart/phy/pilot.hpp"

#include <gtest/gtest.h>

#include "whart/common/contracts.hpp"
#include "whart/phy/modulation.hpp"

namespace whart::phy {
namespace {

TEST(Pilot, EstimateFromCountsPointAndInterval) {
  const ChannelEstimate e = estimate_from_counts(100000, 10);
  EXPECT_DOUBLE_EQ(e.ber, 1e-4);
  EXPECT_LT(e.ber_low, 1e-4);
  EXPECT_GT(e.ber_high, 1e-4);
  ASSERT_TRUE(e.ebn0.has_value());
  // Inverting then applying the curve must round-trip.
  EXPECT_NEAR(oqpsk_ber(*e.ebn0), 1e-4, 1e-10);
  // The conservative figure assumes more noise: lower Eb/N0.
  ASSERT_TRUE(e.ebn0_conservative.has_value());
  EXPECT_LT(e.ebn0_conservative->linear(), e.ebn0->linear());
}

TEST(Pilot, ZeroErrorsReportsUpperBound) {
  const ChannelEstimate e = estimate_from_counts(10000, 0);
  EXPECT_GT(e.ber, 0.0);  // the Wilson upper bound, not zero
  EXPECT_DOUBLE_EQ(e.ber, e.ber_high);
  EXPECT_TRUE(e.ebn0.has_value());
}

TEST(Pilot, HopelessChannelHasNoSnr) {
  const ChannelEstimate e = estimate_from_counts(1000, 600);
  EXPECT_FALSE(e.ebn0.has_value());
}

TEST(Pilot, InvalidCountsThrow) {
  EXPECT_THROW(estimate_from_counts(0, 0), precondition_error);
  EXPECT_THROW(estimate_from_counts(10, 11), precondition_error);
}

TEST(Pilot, CampaignRecoversTrueBer) {
  PilotCampaign campaign;
  campaign.packages = 2000;
  campaign.bits_per_package = 1000;  // 2e6 bits: tight estimate at 1e-4
  numeric::Xoshiro256 rng(99);
  const ChannelEstimate e = measure_channel(1e-4, campaign, rng);
  EXPECT_EQ(e.bits_sent, 2000000u);
  EXPECT_NEAR(e.ber, 1e-4, 3e-5);
  EXPECT_LE(e.ber_low, 1e-4 + 1e-12);
  EXPECT_GE(e.ber_high, 1e-4 - 1e-12);
  ASSERT_TRUE(e.ebn0.has_value());
  // The recovered Eb/N0 sits near the true channel's requirement.
  const EbN0 truth = oqpsk_required_ebn0(1e-4);
  EXPECT_NEAR(e.ebn0->db(), truth.db(), 0.5);
}

TEST(Pilot, ShortCampaignsHaveWiderIntervals) {
  numeric::Xoshiro256 rng(7);
  PilotCampaign quick;
  quick.packages = 10;
  quick.bits_per_package = 128;
  PilotCampaign thorough;
  thorough.packages = 1000;
  thorough.bits_per_package = 128;
  const ChannelEstimate fast = measure_channel(5e-3, quick, rng);
  const ChannelEstimate slow = measure_channel(5e-3, thorough, rng);
  EXPECT_GT(fast.ber_high - fast.ber_low, slow.ber_high - slow.ber_low);
}

TEST(Pilot, DegenerateChannels) {
  PilotCampaign campaign;
  numeric::Xoshiro256 rng(3);
  const ChannelEstimate clean = measure_channel(0.0, campaign, rng);
  EXPECT_EQ(clean.bit_errors, 0u);
  const ChannelEstimate jammed = measure_channel(1.0, campaign, rng);
  EXPECT_EQ(jammed.bit_errors, jammed.bits_sent);
  EXPECT_FALSE(jammed.ebn0.has_value());
  EXPECT_THROW(measure_channel(1.5, campaign, rng), precondition_error);
}

}  // namespace
}  // namespace whart::phy
