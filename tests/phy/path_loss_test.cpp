#include "whart/phy/path_loss.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "whart/common/contracts.hpp"
#include "whart/phy/modulation.hpp"

namespace whart::phy {
namespace {

TEST(PathLoss, ReferencePointAndSlope) {
  PathLossModel model;
  model.exponent = 2.0;
  model.reference_loss_db = 40.0;
  EXPECT_DOUBLE_EQ(model.path_loss_db(1.0), 40.0);
  // n = 2: +20 dB per decade.
  EXPECT_NEAR(model.path_loss_db(10.0), 60.0, 1e-12);
  EXPECT_NEAR(model.path_loss_db(100.0), 80.0, 1e-12);
}

TEST(PathLoss, MonotoneInDistanceAndExponent) {
  PathLossModel gentle;
  gentle.exponent = 2.0;
  PathLossModel harsh;
  harsh.exponent = 3.5;
  double previous = 0.0;
  for (double d = 1.0; d <= 200.0; d *= 2.0) {
    const double loss = gentle.path_loss_db(d);
    EXPECT_GT(loss, previous);
    previous = loss;
    if (d > 1.0) {
      EXPECT_GT(harsh.path_loss_db(d), gentle.path_loss_db(d));
    }
  }
}

TEST(PathLoss, BelowReferenceDistanceClamps) {
  const PathLossModel model;
  EXPECT_DOUBLE_EQ(model.path_loss_db(0.1), model.reference_loss_db);
  EXPECT_THROW((void)model.path_loss_db(0.0), precondition_error);
  EXPECT_THROW((void)model.path_loss_db(-1.0), precondition_error);
}

TEST(PathLoss, ShadowingAveragesToDeterministicLoss) {
  PathLossModel model;
  model.shadowing_sigma_db = 6.0;
  numeric::Xoshiro256 rng(13);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int samples = 20000;
  for (int i = 0; i < samples; ++i) {
    const double loss = model.sampled_path_loss_db(50.0, rng);
    sum += loss;
    sum_sq += loss * loss;
  }
  const double mean = sum / samples;
  const double variance = sum_sq / samples - mean * mean;
  EXPECT_NEAR(mean, model.path_loss_db(50.0), 0.2);
  EXPECT_NEAR(std::sqrt(variance), 6.0, 0.2);
}

TEST(LinkBudget, ReceivedPowerAndEbN0) {
  const LinkBudget budget;  // 0 dBm tx, -95 noise, +9 gain
  EXPECT_DOUBLE_EQ(budget.received_power_dbm(60.0), -60.0);
  // Eb/N0 = 0 - 60 - (-95) + 9 = 44 dB.
  EXPECT_NEAR(budget.ebn0_for_loss(60.0).db(), 44.0, 1e-12);
}

TEST(LinkBudget, NearbyLinksAreEssentiallyPerfect) {
  const LinkBudget budget;
  const PathLossModel propagation;
  const EbN0 close = budget.ebn0_at(5.0, propagation);
  EXPECT_LT(oqpsk_ber(close), 1e-12);
}

TEST(LinkBudget, FarLinksDegrade) {
  const LinkBudget budget;
  PathLossModel propagation;
  propagation.exponent = 3.2;
  const EbN0 near = budget.ebn0_at(20.0, propagation);
  const EbN0 far = budget.ebn0_at(200.0, propagation);
  EXPECT_GT(near.linear(), far.linear());
  EXPECT_GT(oqpsk_ber(far), oqpsk_ber(near));
}

TEST(LinkBudget, RangeInvertsTheBudget) {
  const LinkBudget budget;
  PathLossModel propagation;
  propagation.exponent = 2.8;
  const EbN0 required = EbN0::from_linear(7.0);
  const double range = range_for_ebn0(budget, propagation, required);
  EXPECT_GT(range, propagation.reference_distance_m);
  // At the computed range the delivered Eb/N0 equals the requirement.
  EXPECT_NEAR(budget.ebn0_at(range, propagation).db(), required.db(),
              1e-9);
  // Beyond it, less.
  EXPECT_LT(budget.ebn0_at(range * 2.0, propagation).db(), required.db());
}

TEST(LinkBudget, ImpossibleBudgetReturnsReferenceDistance) {
  LinkBudget feeble;
  feeble.tx_power_dbm = -100.0;
  const PathLossModel propagation;
  EXPECT_DOUBLE_EQ(
      range_for_ebn0(feeble, propagation, EbN0::from_linear(7.0)),
      propagation.reference_distance_m);
}

}  // namespace
}  // namespace whart::phy
