#include "whart/phy/modulation.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "whart/common/contracts.hpp"

namespace whart::phy {
namespace {

TEST(Modulation, Names) {
  EXPECT_EQ(name(Modulation::kOqpsk), "OQPSK");
  EXPECT_EQ(name(Modulation::kBpsk), "BPSK");
  EXPECT_EQ(name(Modulation::kQpsk), "QPSK");
  EXPECT_EQ(name(Modulation::kDbpsk), "DBPSK");
  EXPECT_EQ(name(Modulation::kNcfsk), "NCFSK");
}

TEST(QFunction, KnownValues) {
  EXPECT_NEAR(q_function(0.0), 0.5, 1e-12);
  EXPECT_NEAR(q_function(1.0), 0.158655, 1e-6);
  EXPECT_NEAR(q_function(3.0), 1.349898e-3, 1e-8);
}

TEST(OqpskBer, PaperTableIVValues) {
  // Paper Section VI-E: BER3 = 1/2 erfc(sqrt(7)) = 9.14e-5 and
  // BER4 = 1/2 erfc(sqrt(6)) = 2.66e-4.
  EXPECT_NEAR(oqpsk_ber(EbN0::from_linear(7.0)), 9.14e-5, 5e-7);
  EXPECT_NEAR(oqpsk_ber(EbN0::from_linear(6.0)), 2.66e-4, 5e-6);
}

TEST(OqpskBer, ZeroSnrIsHalf) {
  EXPECT_NEAR(oqpsk_ber(EbN0::from_linear(0.0)), 0.5, 1e-12);
}

TEST(OqpskBer, MonotoneDecreasingInSnr) {
  double previous = 1.0;
  for (double snr = 0.0; snr <= 12.0; snr += 0.5) {
    const double ber = oqpsk_ber(EbN0::from_linear(snr));
    EXPECT_LT(ber, previous);
    previous = ber;
  }
}

TEST(BitErrorRate, CoherentSchemesShareCurve) {
  const EbN0 snr = EbN0::from_linear(4.0);
  const double oqpsk = bit_error_rate(Modulation::kOqpsk, snr);
  EXPECT_DOUBLE_EQ(bit_error_rate(Modulation::kBpsk, snr), oqpsk);
  EXPECT_DOUBLE_EQ(bit_error_rate(Modulation::kQpsk, snr), oqpsk);
}

TEST(BitErrorRate, NonCoherentSchemesAreWorse) {
  const EbN0 snr = EbN0::from_linear(4.0);
  const double coherent = bit_error_rate(Modulation::kOqpsk, snr);
  EXPECT_GT(bit_error_rate(Modulation::kDbpsk, snr), coherent);
  EXPECT_GT(bit_error_rate(Modulation::kNcfsk, snr),
            bit_error_rate(Modulation::kDbpsk, snr));
}

TEST(BitErrorRate, DbpskClosedForm) {
  EXPECT_NEAR(bit_error_rate(Modulation::kDbpsk, EbN0::from_linear(2.0)),
              0.5 * std::exp(-2.0), 1e-15);
}

TEST(RequiredEbN0, InvertsTheBerCurve) {
  for (double ber : {1e-3, 1e-4, 1e-5, 1e-6}) {
    const EbN0 snr = oqpsk_required_ebn0(ber);
    EXPECT_NEAR(oqpsk_ber(snr) / ber, 1.0, 1e-9) << "ber=" << ber;
  }
}

TEST(RequiredEbN0, InvalidBerThrows) {
  EXPECT_THROW(oqpsk_required_ebn0(0.0), precondition_error);
  EXPECT_THROW(oqpsk_required_ebn0(0.5), precondition_error);
  EXPECT_THROW(oqpsk_required_ebn0(0.7), precondition_error);
}

}  // namespace
}  // namespace whart::phy
