#include "whart/markov/dtmc.hpp"

#include <gtest/gtest.h>

#include "whart/common/contracts.hpp"

namespace whart::markov {
namespace {

Dtmc two_state(double p01, double p10) {
  return Dtmc(2, {{0, 0, 1.0 - p01},
                  {0, 1, p01},
                  {1, 0, p10},
                  {1, 1, 1.0 - p10}});
}

TEST(Dtmc, ValidChainConstructs) {
  const Dtmc chain = two_state(0.3, 0.9);
  EXPECT_EQ(chain.num_states(), 2u);
  EXPECT_DOUBLE_EQ(chain.transition_probability(0, 1), 0.3);
}

TEST(Dtmc, NonStochasticRowThrows) {
  EXPECT_THROW(Dtmc(2, {{0, 0, 0.5}, {1, 1, 1.0}}), invariant_error);
  EXPECT_THROW(Dtmc(2, {{0, 0, 0.6}, {0, 1, 0.6}, {1, 1, 1.0}}),
               invariant_error);
}

TEST(Dtmc, NegativeProbabilityThrows) {
  EXPECT_THROW(Dtmc(2, {{0, 0, 1.2}, {0, 1, -0.2}, {1, 1, 1.0}}),
               invariant_error);
}

TEST(Dtmc, DuplicateTripletsAreSummed) {
  const Dtmc chain(1, {{0, 0, 0.4}, {0, 0, 0.6}});
  EXPECT_DOUBLE_EQ(chain.transition_probability(0, 0), 1.0);
}

TEST(Dtmc, StateNames) {
  const Dtmc chain(2, {{0, 1, 1.0}, {1, 1, 1.0}}, {"start", "end"});
  EXPECT_EQ(chain.state_name(0), "start");
  EXPECT_EQ(chain.state_name(1), "end");
  EXPECT_EQ(chain.find_state("end"), StateIndex{1});
  EXPECT_FALSE(chain.find_state("missing").has_value());
}

TEST(Dtmc, DefaultStateNames) {
  const Dtmc chain = two_state(0.5, 0.5);
  EXPECT_EQ(chain.state_name(1), "s1");
}

TEST(Dtmc, WrongNameCountThrows) {
  EXPECT_THROW(Dtmc(2, {{0, 1, 1.0}, {1, 1, 1.0}}, {"only-one"}),
               precondition_error);
}

TEST(Dtmc, AbsorbingDetection) {
  const Dtmc chain(3, {{0, 1, 1.0}, {1, 1, 1.0}, {2, 2, 1.0}});
  EXPECT_FALSE(chain.is_absorbing(0));
  EXPECT_TRUE(chain.is_absorbing(1));
  EXPECT_TRUE(chain.is_absorbing(2));
  EXPECT_EQ(chain.absorbing_states(),
            (std::vector<StateIndex>{1, 2}));
}

TEST(Dtmc, StepPreservesMass) {
  const Dtmc chain = two_state(0.3, 0.9);
  linalg::Vector p{0.6, 0.4};
  for (int i = 0; i < 10; ++i) {
    p = chain.step(p);
    EXPECT_NEAR(linalg::sum(p), 1.0, 1e-12);
  }
}

TEST(Dtmc, StepMatchesHandComputation) {
  const Dtmc chain = two_state(0.3, 0.9);
  const linalg::Vector p = chain.step(linalg::Vector{1.0, 0.0});
  EXPECT_DOUBLE_EQ(p[0], 0.7);
  EXPECT_DOUBLE_EQ(p[1], 0.3);
}

TEST(Dtmc, PointDistribution) {
  const linalg::Vector p = point_distribution(4, 2);
  EXPECT_DOUBLE_EQ(p[2], 1.0);
  EXPECT_DOUBLE_EQ(linalg::sum(p), 1.0);
}

}  // namespace
}  // namespace whart::markov
