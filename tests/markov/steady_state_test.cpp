#include "whart/markov/steady_state.hpp"

#include <gtest/gtest.h>

#include "whart/numeric/rng.hpp"

namespace whart::markov {
namespace {

Dtmc link_chain(double pfl, double prc) {
  return Dtmc(2, {{0, 0, 1.0 - pfl},
                  {0, 1, pfl},
                  {1, 0, prc},
                  {1, 1, 1.0 - prc}});
}

void expect_stationary(const Dtmc& chain, const linalg::Vector& pi,
                       double tol = 1e-10) {
  EXPECT_NEAR(linalg::sum(pi), 1.0, tol);
  const linalg::Vector next = chain.step(pi);
  EXPECT_LT(linalg::max_abs_diff(next, pi), tol);
}

TEST(SteadyState, DirectMatchesPaperEq4) {
  const Dtmc chain = link_chain(0.184, 0.9);
  const linalg::Vector pi = steady_state_direct(chain);
  EXPECT_NEAR(pi[0], 0.9 / (0.9 + 0.184), 1e-12);
  expect_stationary(chain, pi);
}

TEST(SteadyState, PowerMatchesDirect) {
  const Dtmc chain = link_chain(0.3, 0.7);
  const linalg::Vector direct = steady_state_direct(chain);
  const linalg::Vector power = steady_state_power(chain);
  EXPECT_LT(linalg::max_abs_diff(direct, power), 1e-9);
}

TEST(SteadyState, PeriodicChainHandledByLazyIteration) {
  // A two-cycle: 0 -> 1 -> 0 with period 2; stationary is uniform.
  const Dtmc chain(2, {{0, 1, 1.0}, {1, 0, 1.0}});
  const linalg::Vector pi = steady_state_power(chain);
  EXPECT_NEAR(pi[0], 0.5, 1e-9);
  EXPECT_NEAR(pi[1], 0.5, 1e-9);
  expect_stationary(chain, steady_state_direct(chain));
}

TEST(SteadyState, ThreeStateBirthDeath) {
  const Dtmc chain(3, {{0, 0, 0.5},
                       {0, 1, 0.5},
                       {1, 0, 0.25},
                       {1, 1, 0.25},
                       {1, 2, 0.5},
                       {2, 1, 0.5},
                       {2, 2, 0.5}});
  const linalg::Vector pi = steady_state_direct(chain);
  expect_stationary(chain, pi);
  // Detailed balance for this birth-death chain: pi0 * 0.5 = pi1 * 0.25.
  EXPECT_NEAR(pi[0] * 0.5, pi[1] * 0.25, 1e-12);
  EXPECT_NEAR(pi[1] * 0.5, pi[2] * 0.5, 1e-12);
}

class SteadyStateRandom : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SteadyStateRandom, DirectAndPowerAgreeOnRandomChains) {
  const std::size_t n = GetParam();
  numeric::Xoshiro256 rng(77 + n);
  std::vector<linalg::Triplet> triplets;
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> row(n);
    double total = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      row[j] = rng.uniform() + 0.01;  // strictly positive => irreducible
      total += row[j];
    }
    for (std::size_t j = 0; j < n; ++j)
      triplets.push_back({i, j, row[j] / total});
  }
  const Dtmc chain(n, std::move(triplets));
  const linalg::Vector direct = steady_state_direct(chain);
  const linalg::Vector power = steady_state_power(chain);
  EXPECT_LT(linalg::max_abs_diff(direct, power), 1e-8);
  expect_stationary(chain, direct, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SteadyStateRandom,
                         ::testing::Values(2, 3, 5, 10, 20));

}  // namespace
}  // namespace whart::markov
