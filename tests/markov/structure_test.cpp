#include "whart/markov/structure.hpp"

#include <gtest/gtest.h>

#include "whart/hart/path_model.hpp"
#include "whart/link/link_model.hpp"

namespace whart::markov {
namespace {

Dtmc link_chain(double pfl, double prc) {
  return Dtmc(2, {{0, 0, 1.0 - pfl},
                  {0, 1, pfl},
                  {1, 0, prc},
                  {1, 1, 1.0 - prc}});
}

TEST(Structure, LinkChainIsOneErgodicClass) {
  const Dtmc chain = link_chain(0.2, 0.9);
  EXPECT_TRUE(is_irreducible(chain));
  EXPECT_EQ(period(chain, 0), 1u);
  EXPECT_TRUE(is_ergodic(chain));
  EXPECT_EQ(recurrent_states(chain), (std::vector<StateIndex>{0, 1}));
  EXPECT_TRUE(transient_states(chain).empty());
}

TEST(Structure, TwoCycleHasPeriodTwo) {
  const Dtmc chain(2, {{0, 1, 1.0}, {1, 0, 1.0}});
  EXPECT_TRUE(is_irreducible(chain));
  EXPECT_EQ(period(chain, 0), 2u);
  EXPECT_FALSE(is_ergodic(chain));
}

TEST(Structure, ThreeCyclePeriodThree) {
  const Dtmc chain(3, {{0, 1, 1.0}, {1, 2, 1.0}, {2, 0, 1.0}});
  EXPECT_EQ(period(chain, 0), 3u);
  EXPECT_EQ(period(chain, 1), 3u);
}

TEST(Structure, AbsorbingChainDecomposition) {
  // 0 -> {1 absorbing, 2 absorbing}: three classes, two closed.
  const Dtmc chain(3, {{0, 1, 0.5}, {0, 2, 0.5}, {1, 1, 1.0}, {2, 2, 1.0}});
  const ClassDecomposition d = communicating_classes(chain);
  EXPECT_EQ(d.class_count(), 3u);
  EXPECT_FALSE(d.is_closed[d.class_of[0]]);
  EXPECT_TRUE(d.is_closed[d.class_of[1]]);
  EXPECT_TRUE(d.is_closed[d.class_of[2]]);
  EXPECT_EQ(transient_states(chain), (std::vector<StateIndex>{0}));
  EXPECT_EQ(recurrent_states(chain), (std::vector<StateIndex>{1, 2}));
}

TEST(Structure, MultiStateClassesDetected) {
  // {0,1} open class feeding the closed class {2,3}.
  const Dtmc chain(4, {{0, 1, 1.0},
                       {1, 0, 0.5},
                       {1, 2, 0.5},
                       {2, 3, 1.0},
                       {3, 2, 1.0}});
  const ClassDecomposition d = communicating_classes(chain);
  EXPECT_EQ(d.class_count(), 2u);
  EXPECT_EQ(d.class_of[0], d.class_of[1]);
  EXPECT_EQ(d.class_of[2], d.class_of[3]);
  EXPECT_FALSE(d.is_closed[d.class_of[0]]);
  EXPECT_TRUE(d.is_closed[d.class_of[2]]);
}

TEST(Structure, TransientStateWithoutCycleHasPeriodZero) {
  const Dtmc chain(2, {{0, 1, 1.0}, {1, 1, 1.0}});
  EXPECT_EQ(period(chain, 0), 0u);
  EXPECT_EQ(period(chain, 1), 1u);
}

TEST(Structure, PathModelClassesMatchAbsorbingStructure) {
  // The unrolled path DTMC: every transient state is its own singleton
  // open class (the graph is a DAG); the goals and Discard are closed.
  hart::PathModelConfig config;
  config.hop_slots = {3, 6, 7};
  config.superframe = net::SuperframeConfig::symmetric(7);
  config.reporting_interval = 2;
  const hart::PathModel model(config);
  const hart::SteadyStateLinks links(
      3, link::LinkModel::from_availability(0.75));
  const Dtmc chain = model.to_dtmc(links);

  const std::vector<StateIndex> recurrent = recurrent_states(chain);
  EXPECT_EQ(recurrent.size(), 3u);  // R7, R14, Discard
  EXPECT_EQ(transient_states(chain).size(), chain.num_states() - 3);
  EXPECT_FALSE(is_irreducible(chain));
}

TEST(Structure, IrreducibleRandomWalkOnARing) {
  // 5-state lazy ring: irreducible and aperiodic (self-loops).
  std::vector<linalg::Triplet> t;
  for (StateIndex s = 0; s < 5; ++s) {
    t.push_back({s, s, 0.5});
    t.push_back({s, (s + 1) % 5, 0.5});
  }
  const Dtmc chain(5, std::move(t));
  EXPECT_TRUE(is_ergodic(chain));
}

}  // namespace
}  // namespace whart::markov
