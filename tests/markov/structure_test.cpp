#include "whart/markov/structure.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "whart/hart/link_probability.hpp"
#include "whart/hart/path_model.hpp"
#include "whart/link/link_model.hpp"

namespace whart::markov {
namespace {

Dtmc link_chain(double pfl, double prc) {
  return Dtmc(2, {{0, 0, 1.0 - pfl},
                  {0, 1, pfl},
                  {1, 0, prc},
                  {1, 1, 1.0 - prc}});
}

TEST(Structure, LinkChainIsOneErgodicClass) {
  const Dtmc chain = link_chain(0.2, 0.9);
  EXPECT_TRUE(is_irreducible(chain));
  EXPECT_EQ(period(chain, 0), 1u);
  EXPECT_TRUE(is_ergodic(chain));
  EXPECT_EQ(recurrent_states(chain), (std::vector<StateIndex>{0, 1}));
  EXPECT_TRUE(transient_states(chain).empty());
}

TEST(Structure, TwoCycleHasPeriodTwo) {
  const Dtmc chain(2, {{0, 1, 1.0}, {1, 0, 1.0}});
  EXPECT_TRUE(is_irreducible(chain));
  EXPECT_EQ(period(chain, 0), 2u);
  EXPECT_FALSE(is_ergodic(chain));
}

TEST(Structure, ThreeCyclePeriodThree) {
  const Dtmc chain(3, {{0, 1, 1.0}, {1, 2, 1.0}, {2, 0, 1.0}});
  EXPECT_EQ(period(chain, 0), 3u);
  EXPECT_EQ(period(chain, 1), 3u);
}

TEST(Structure, AbsorbingChainDecomposition) {
  // 0 -> {1 absorbing, 2 absorbing}: three classes, two closed.
  const Dtmc chain(3, {{0, 1, 0.5}, {0, 2, 0.5}, {1, 1, 1.0}, {2, 2, 1.0}});
  const ClassDecomposition d = communicating_classes(chain);
  EXPECT_EQ(d.class_count(), 3u);
  EXPECT_FALSE(d.is_closed[d.class_of[0]]);
  EXPECT_TRUE(d.is_closed[d.class_of[1]]);
  EXPECT_TRUE(d.is_closed[d.class_of[2]]);
  EXPECT_EQ(transient_states(chain), (std::vector<StateIndex>{0}));
  EXPECT_EQ(recurrent_states(chain), (std::vector<StateIndex>{1, 2}));
}

TEST(Structure, MultiStateClassesDetected) {
  // {0,1} open class feeding the closed class {2,3}.
  const Dtmc chain(4, {{0, 1, 1.0},
                       {1, 0, 0.5},
                       {1, 2, 0.5},
                       {2, 3, 1.0},
                       {3, 2, 1.0}});
  const ClassDecomposition d = communicating_classes(chain);
  EXPECT_EQ(d.class_count(), 2u);
  EXPECT_EQ(d.class_of[0], d.class_of[1]);
  EXPECT_EQ(d.class_of[2], d.class_of[3]);
  EXPECT_FALSE(d.is_closed[d.class_of[0]]);
  EXPECT_TRUE(d.is_closed[d.class_of[2]]);
}

TEST(Structure, TransientStateWithoutCycleHasPeriodZero) {
  const Dtmc chain(2, {{0, 1, 1.0}, {1, 1, 1.0}});
  EXPECT_EQ(period(chain, 0), 0u);
  EXPECT_EQ(period(chain, 1), 1u);
}

TEST(Structure, PathModelClassesMatchAbsorbingStructure) {
  // The unrolled path DTMC: every transient state is its own singleton
  // open class (the graph is a DAG); the goals and Discard are closed.
  hart::PathModelConfig config;
  config.hop_slots = {3, 6, 7};
  config.superframe = net::SuperframeConfig::symmetric(7);
  config.reporting_interval = 2;
  const hart::PathModel model(config);
  const hart::SteadyStateLinks links(
      3, link::LinkModel::from_availability(0.75));
  const Dtmc chain = model.to_dtmc(links);

  const std::vector<StateIndex> recurrent = recurrent_states(chain);
  EXPECT_EQ(recurrent.size(), 3u);  // R7, R14, Discard
  EXPECT_EQ(transient_states(chain).size(), chain.num_states() - 3);
  EXPECT_FALSE(is_irreducible(chain));
}

TEST(Structure, ResidualsMeasureDeviationFromStochastic) {
  // 0.25 + 0.75 is exact in binary; 0.2 + 0.8 is off by half an ulp.
  const Dtmc exact = link_chain(0.25, 0.75);
  EXPECT_EQ(max_row_sum_residual(exact), 0.0);
  EXPECT_LE(max_row_sum_residual(link_chain(0.2, 0.9)), 1e-16);
  linalg::Vector distribution(2);
  distribution[0] = 0.5;
  distribution[1] = 0.5;
  EXPECT_EQ(distribution_mass_residual(distribution), 0.0);
  distribution[1] = 0.5 + 1e-9;
  EXPECT_NEAR(distribution_mass_residual(distribution), 1e-9, 1e-15);
}

// Row-normalization drift regression: on a ~20k-state path chain
// stepped across its whole 2000-slot horizon, both the row sums and the
// propagated probability mass stay within 1e-12 of exact (measured
// ~1e-16; the bound leaves headroom for other FPUs/compilers).  If an
// edit to the path-model assembly or the sparse stepping kernel
// introduces accumulation error, this pins it.
TEST(Structure, LargeChainResidualsStayBelow1em12) {
  hart::PathModelConfig config;
  for (int h = 0; h < 10; ++h)
    config.hop_slots.push_back(static_cast<std::uint32_t>(3 * h + 2));
  config.superframe = {40, 40};
  config.reporting_interval = 50;
  const hart::PathModel model(config);
  const hart::SteadyStateLinks links{std::vector<double>(10, 0.83)};
  const Dtmc chain = model.to_dtmc(links);
  ASSERT_GT(chain.num_states(), 15000u);

  EXPECT_LE(max_row_sum_residual(chain), 1e-12);

  linalg::Vector distribution =
      point_distribution(chain.num_states(), 0);
  double worst = 0.0;
  const std::uint64_t horizon = 2000;  // Is * Fup slots
  for (std::uint64_t t = 0; t < horizon; ++t) {
    distribution = chain.step(distribution);
    worst = std::max(worst, distribution_mass_residual(distribution));
  }
  EXPECT_LE(worst, 1e-12);
}

TEST(Structure, IrreducibleRandomWalkOnARing) {
  // 5-state lazy ring: irreducible and aperiodic (self-loops).
  std::vector<linalg::Triplet> t;
  for (StateIndex s = 0; s < 5; ++s) {
    t.push_back({s, s, 0.5});
    t.push_back({s, (s + 1) % 5, 0.5});
  }
  const Dtmc chain(5, std::move(t));
  EXPECT_TRUE(is_ergodic(chain));
}

}  // namespace
}  // namespace whart::markov
