#include "whart/markov/incremental_product.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "whart/common/contracts.hpp"
#include "whart/linalg/sparse.hpp"
#include "whart/markov/structure.hpp"
#include "whart/numeric/rng.hpp"

namespace whart::markov {
namespace {

/// Random square CSR chain factor: every row gets a self entry plus a
/// few random columns, so the chain product never collapses to empty.
linalg::CsrMatrix random_factor(std::size_t n, numeric::Xoshiro256& rng) {
  std::vector<linalg::Triplet> entries;
  for (std::size_t r = 0; r < n; ++r) {
    entries.push_back({r, r, 0.2 + 0.6 * rng.uniform()});
    const std::size_t extra = rng.below(3);
    for (std::size_t e = 0; e < extra; ++e)
      entries.push_back({r, rng.below(n), 0.01 + 0.5 * rng.uniform()});
  }
  return linalg::CsrMatrix(n, n, std::move(entries));
}

std::vector<CsrPattern> patterns_of(
    const std::vector<linalg::CsrMatrix>& factors) {
  std::vector<CsrPattern> patterns;
  patterns.reserve(factors.size());
  for (const linalg::CsrMatrix& m : factors)
    patterns.push_back(CsrPattern::of(m));
  return patterns;
}

void expect_bitwise(std::span<const double> a, std::span<const double> b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    ASSERT_EQ(std::bit_cast<std::uint64_t>(a[i]),
              std::bit_cast<std::uint64_t>(b[i]))
        << "entry " << i << ": " << a[i] << " vs " << b[i];
}

TEST(IncrementalProduct, RefillMatchesSkeletonBitwise) {
  numeric::Xoshiro256 rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 2 + rng.below(7);
    const std::size_t chain_length = 1 + rng.below(6);
    std::vector<linalg::CsrMatrix> factors;
    for (std::size_t k = 0; k < chain_length; ++k)
      factors.push_back(random_factor(n, rng));
    const std::vector<CsrPattern> patterns = patterns_of(factors);
    const ChainProductSkeleton chain(patterns);

    ChainRefillArena arena;
    std::vector<double> expected(chain.pattern().nonzeros());
    chain.refill(factors, arena, expected);

    IncrementalProduct product(chain, patterns);
    EXPECT_FALSE(product.seeded());
    product.refill(factors);
    EXPECT_TRUE(product.seeded());
    expect_bitwise(expected, product.values());
  }
}

TEST(IncrementalProduct, TargetedUpdatesMatchFullRefillBitwise) {
  numeric::Xoshiro256 rng(23);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 3 + rng.below(6);
    const std::size_t chain_length = 2 + rng.below(5);
    std::vector<linalg::CsrMatrix> factors;
    for (std::size_t k = 0; k < chain_length; ++k)
      factors.push_back(random_factor(n, rng));
    const std::vector<CsrPattern> patterns = patterns_of(factors);
    const ChainProductSkeleton chain(patterns);
    IncrementalProduct product(chain, patterns);
    product.refill(factors);

    ChainRefillArena arena;
    std::vector<double> expected(chain.pattern().nonzeros());
    // Several rounds of sparse mutations against the same product: the
    // dirty-row replay must stay bitwise equal to a from-scratch refill
    // after every round, not just the first.
    for (int round = 0; round < 4; ++round) {
      const std::size_t mutations = 1 + rng.below(4);
      for (std::size_t m = 0; m < mutations; ++m) {
        const std::size_t k = rng.below(factors.size());
        const std::size_t vi = rng.below(factors[k].nonzeros());
        factors[k].values()[vi] = 0.01 + 0.9 * rng.uniform();
        product.update(k, vi);
      }
      product.propagate(factors);
      chain.refill(factors, arena, expected);
      expect_bitwise(expected, product.values());
    }
  }
}

TEST(IncrementalProduct, PropagateWithoutPendingIsANoop) {
  numeric::Xoshiro256 rng(5);
  std::vector<linalg::CsrMatrix> factors;
  for (int k = 0; k < 3; ++k) factors.push_back(random_factor(4, rng));
  const std::vector<CsrPattern> patterns = patterns_of(factors);
  const ChainProductSkeleton chain(patterns);
  IncrementalProduct product(chain, patterns);
  product.refill(factors);
  const std::uint64_t replayed_before = product.rows_replayed();
  EXPECT_EQ(product.propagate(factors), 0u);
  EXPECT_EQ(product.rows_replayed(), replayed_before);
}

TEST(IncrementalProduct, PropagateBeforeSeedingThrows) {
  numeric::Xoshiro256 rng(7);
  std::vector<linalg::CsrMatrix> factors{random_factor(3, rng)};
  const std::vector<CsrPattern> patterns = patterns_of(factors);
  const ChainProductSkeleton chain(patterns);
  IncrementalProduct product(chain, patterns);
  product.update(0, 0);
  EXPECT_THROW(product.propagate(factors), precondition_error);
}

TEST(IncrementalProduct, LastFactorUpdateReplaysOnlyTheFinalStage) {
  // Bidiagonal factors (the shape of per-slot superframe matrices): an
  // update confined to the last factor can dirty rows of the final
  // partial only — the replay must not walk earlier stages.
  const std::size_t n = 16;
  const std::size_t chain_length = 8;
  numeric::Xoshiro256 rng(41);
  std::vector<linalg::CsrMatrix> factors;
  for (std::size_t k = 0; k < chain_length; ++k) {
    std::vector<linalg::Triplet> entries;
    for (std::size_t r = 0; r < n; ++r) {
      entries.push_back({r, r, 0.3 + 0.5 * rng.uniform()});
      if (r + 1 < n) entries.push_back({r, r + 1, 0.1 + 0.3 * rng.uniform()});
    }
    factors.push_back(linalg::CsrMatrix(n, n, std::move(entries)));
  }
  const std::vector<CsrPattern> patterns = patterns_of(factors);
  const ChainProductSkeleton chain(patterns);
  IncrementalProduct product(chain, patterns);
  product.refill(factors);

  const std::size_t k = chain_length - 1;
  factors[k].values()[0] = 0.123456789;
  product.update(k, 0);
  const std::size_t replayed = product.propagate(factors);
  EXPECT_GT(replayed, 0u);
  EXPECT_LE(replayed, n);  // one stage, at most every row of it

  ChainRefillArena arena;
  std::vector<double> expected(chain.pattern().nonzeros());
  chain.refill(factors, arena, expected);
  expect_bitwise(expected, product.values());
}

TEST(IncrementalProduct, RejectsMismatchedFactors) {
  numeric::Xoshiro256 rng(3);
  std::vector<linalg::CsrMatrix> factors;
  for (int k = 0; k < 2; ++k) factors.push_back(random_factor(4, rng));
  const std::vector<CsrPattern> patterns = patterns_of(factors);
  const ChainProductSkeleton chain(patterns);
  const std::vector<CsrPattern> too_few(patterns.begin(),
                                        patterns.begin() + 1);
  EXPECT_THROW(IncrementalProduct(chain, too_few), precondition_error);
}

}  // namespace
}  // namespace whart::markov
