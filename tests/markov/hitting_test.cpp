#include "whart/markov/hitting.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "whart/common/contracts.hpp"
#include "whart/link/link_model.hpp"

namespace whart::markov {
namespace {

Dtmc link_chain(double pfl, double prc) {
  return Dtmc(2, {{0, 0, 1.0 - pfl},
                  {0, 1, pfl},
                  {1, 0, prc},
                  {1, 1, 1.0 - prc}});
}

TEST(Hitting, LinkRecoveryTimeIsGeometricMean) {
  // From DOWN (state 1), hitting UP (state 0) takes 1/prc steps.
  const Dtmc chain = link_chain(0.2, 0.4);
  const linalg::Vector k = expected_hitting_times(chain, {0});
  EXPECT_DOUBLE_EQ(k[0], 0.0);
  EXPECT_NEAR(k[1], 1.0 / 0.4, 1e-12);
}

TEST(Hitting, ProbabilitiesAreOneInAnIrreducibleChain) {
  const Dtmc chain = link_chain(0.3, 0.9);
  const linalg::Vector h = hitting_probabilities(chain, {1});
  EXPECT_NEAR(h[0], 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(h[1], 1.0);
}

TEST(Hitting, GamblersRuinProbabilities) {
  // Fair walk on 0..4, both ends absorbing; P(hit 4 | start i) = i/4.
  std::vector<linalg::Triplet> t{{0, 0, 1.0}, {4, 4, 1.0}};
  for (StateIndex s : {1, 2, 3}) {
    t.push_back({s, s - 1, 0.5});
    t.push_back({s, s + 1, 0.5});
  }
  const Dtmc chain(5, std::move(t));
  const linalg::Vector h = hitting_probabilities(chain, {4});
  EXPECT_NEAR(h[1], 0.25, 1e-12);
  EXPECT_NEAR(h[2], 0.50, 1e-12);
  EXPECT_NEAR(h[3], 0.75, 1e-12);
  EXPECT_DOUBLE_EQ(h[0], 0.0);  // absorbed at the wrong end

  // Expected time to hit 4 is infinite from every interior state
  // (positive probability of ruin at 0 first).
  const linalg::Vector k = expected_hitting_times(chain, {4});
  EXPECT_TRUE(std::isinf(k[2]));
  EXPECT_DOUBLE_EQ(k[4], 0.0);
}

TEST(Hitting, BothEndsAsTargetsGivesFiniteTimes) {
  std::vector<linalg::Triplet> t{{0, 0, 1.0}, {4, 4, 1.0}};
  for (StateIndex s : {1, 2, 3}) {
    t.push_back({s, s - 1, 0.5});
    t.push_back({s, s + 1, 0.5});
  }
  const Dtmc chain(5, std::move(t));
  const linalg::Vector k = expected_hitting_times(chain, {0, 4});
  // Classic i(4-i): 3, 4, 3 from the interior.
  EXPECT_NEAR(k[1], 3.0, 1e-12);
  EXPECT_NEAR(k[2], 4.0, 1e-12);
  EXPECT_NEAR(k[3], 3.0, 1e-12);
}

TEST(Hitting, UnreachableTargetsGiveZeroProbAndInfiniteTime) {
  const Dtmc chain(3, {{0, 1, 1.0}, {1, 0, 1.0}, {2, 2, 1.0}});
  const linalg::Vector h = hitting_probabilities(chain, {2});
  EXPECT_DOUBLE_EQ(h[0], 0.0);
  EXPECT_DOUBLE_EQ(h[1], 0.0);
  const linalg::Vector k = expected_hitting_times(chain, {2});
  EXPECT_TRUE(std::isinf(k[0]));
  EXPECT_DOUBLE_EQ(k[2], 0.0);
}

TEST(Hitting, MatchesLinkModelSlotsToSteadyStateScale) {
  // Cross-module check: the expected DOWN->UP hitting time of a link
  // chain is 1/prc, matching LinkModel's recovery dynamics.
  const link::LinkModel model(0.184, 0.9);
  const linalg::Vector k =
      expected_hitting_times(model.to_dtmc(), {0});
  EXPECT_NEAR(k[1], 1.0 / model.recovery_probability(), 1e-12);
}

TEST(Hitting, EmptyTargetsThrow) {
  const Dtmc chain = link_chain(0.2, 0.9);
  EXPECT_THROW(hitting_probabilities(chain, {}), precondition_error);
  EXPECT_THROW(expected_hitting_times(chain, {}), precondition_error);
}

}  // namespace
}  // namespace whart::markov
