#include "whart/markov/transient.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "whart/common/contracts.hpp"
#include "whart/linalg/matrix.hpp"

namespace whart::markov {
namespace {

Dtmc link_chain(double pfl, double prc) {
  return Dtmc(2, {{0, 0, 1.0 - pfl},
                  {0, 1, pfl},
                  {1, 0, prc},
                  {1, 1, 1.0 - prc}});
}

TEST(Transient, ZeroStepsIsInitial) {
  const Dtmc chain = link_chain(0.2, 0.9);
  const linalg::Vector p0{0.3, 0.7};
  EXPECT_EQ(distribution_after(chain, p0, 0), p0);
}

TEST(Transient, OneStepMatchesMatrixProduct) {
  const Dtmc chain = link_chain(0.2, 0.9);
  const linalg::Vector p0{1.0, 0.0};
  const linalg::Vector p1 = distribution_after(chain, p0, 1);
  EXPECT_DOUBLE_EQ(p1[0], 0.8);
  EXPECT_DOUBLE_EQ(p1[1], 0.2);
}

TEST(Transient, ManyStepsApproachSteadyState) {
  // pi(up) = prc / (prc + pfl) = 0.9 / 1.1.
  const Dtmc chain = link_chain(0.2, 0.9);
  const linalg::Vector p = distribution_after(chain, {0.0, 1.0}, 200);
  EXPECT_NEAR(p[0], 0.9 / 1.1, 1e-12);
}

TEST(Transient, MatchesClosedFormEq3) {
  // Paper Eq. 3 closed form: p_up(t) = pi + (p0 - pi) (1-pfl-prc)^t.
  const double pfl = 0.184;
  const double prc = 0.9;
  const Dtmc chain = link_chain(pfl, prc);
  const double pi = prc / (prc + pfl);
  const double lambda = 1.0 - pfl - prc;
  linalg::Vector p{0.0, 1.0};  // start DOWN
  for (int t = 1; t <= 6; ++t) {
    p = chain.step(p);
    const double expected = pi + (0.0 - pi) * std::pow(lambda, t);
    EXPECT_NEAR(p[0], expected, 1e-14) << "t=" << t;
  }
}

TEST(Transient, TrajectoryHasOneEntryPerStep) {
  const Dtmc chain = link_chain(0.1, 0.9);
  const auto traj = distribution_trajectory(chain, {1.0, 0.0}, 5);
  ASSERT_EQ(traj.size(), 6u);
  EXPECT_EQ(traj[0], (linalg::Vector{1.0, 0.0}));
  EXPECT_EQ(traj[1], chain.step(traj[0]));
  EXPECT_EQ(traj[5], chain.step(traj[4]));
}

TEST(Transient, SizeMismatchThrows) {
  const Dtmc chain = link_chain(0.1, 0.9);
  EXPECT_THROW(distribution_after(chain, linalg::Vector(3), 1),
               precondition_error);
}

TEST(Transient, TransientProbabilityOfState) {
  const Dtmc chain = link_chain(0.5, 0.5);
  EXPECT_DOUBLE_EQ(
      transient_probability(chain, {1.0, 0.0}, 1, 1), 0.5);
  EXPECT_THROW(transient_probability(chain, {1.0, 0.0}, 2, 1),
               precondition_error);
}

TEST(Transient, InhomogeneousStepsApplyPerStepMatrices) {
  // Step 1 uses a chain that always moves 0 -> 1, step 2 one that always
  // moves 1 -> 0.
  const linalg::CsrMatrix move01(2, 2, {{0, 1, 1.0}, {1, 1, 1.0}});
  const linalg::CsrMatrix move10(2, 2, {{0, 0, 1.0}, {1, 0, 1.0}});
  const auto matrix_for_step =
      [&](std::uint64_t step) -> const linalg::CsrMatrix& {
    return step == 1 ? move01 : move10;
  };
  const linalg::Vector p =
      distribution_after_inhomogeneous(matrix_for_step, {1.0, 0.0}, 2);
  EXPECT_DOUBLE_EQ(p[0], 1.0);
  EXPECT_DOUBLE_EQ(p[1], 0.0);
}

}  // namespace
}  // namespace whart::markov
