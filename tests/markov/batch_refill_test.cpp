// The lane-equivalence battery of the SoA batch solve (DESIGN.md §13).
// Two layers: (1) markov::BatchRefill against the scalar
// ChainProductSkeleton::refill on randomized matrix chains, every lane
// checked independently; (2) PathModelSkeleton::analyze_batch_into
// against scalar analyze_into over the generated scenario corpus and
// the edge cases the batch partition must route around — single-lane
// batches, lane counts straddling the hardware vector width, TTL cuts,
// one-slot frames and degenerate (pfl 0/1) lanes that must fall back to
// the scalar path inside a mixed batch.
#include "whart/markov/batch_refill.hpp"

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "whart/hart/link_probability.hpp"
#include "whart/hart/path_model.hpp"
#include "whart/linalg/simd.hpp"
#include "whart/linalg/sparse.hpp"
#include "whart/markov/structure.hpp"
#include "whart/numeric/rng.hpp"
#include "whart/verify/scenario.hpp"

namespace whart::markov {
namespace {

// Per-lane arithmetic order matches the scalar refill, so lanes agree
// with scalar solves to rounding; 1e-12 relative absorbs backend FMA
// contraction differences with nine digits to spare.
constexpr double kTol = 1e-12;

void expect_close(double batched, double scalar, const std::string& what) {
  const double scale =
      std::max({1.0, std::abs(batched), std::abs(scalar)});
  EXPECT_LE(std::abs(batched - scalar), kTol * scale) << what;
}

// --- Layer 1: the markov core on randomized chains ---------------------

// A random square CSR pattern with values: every row gets 1..3 entries
// (always the diagonal, so no factor annihilates the chain).
linalg::CsrMatrix random_factor(std::size_t dim, numeric::Xoshiro256& rng) {
  std::vector<linalg::Triplet> entries;
  for (std::size_t r = 0; r < dim; ++r) {
    entries.push_back({r, r, 0.25 + 0.5 * rng.uniform()});
    const std::size_t extra = rng.next() % 3;
    for (std::size_t e = 0; e < extra; ++e) {
      const std::size_t c = rng.next() % dim;
      if (c != r) entries.push_back({r, c, rng.uniform()});
    }
  }
  return linalg::CsrMatrix(dim, dim, std::move(entries));
}

// Same pattern as `base`, fresh values for lane `lane`.
linalg::CsrMatrix lane_variant(const linalg::CsrMatrix& base,
                               std::size_t lane) {
  const CsrPattern pattern = CsrPattern::of(base);
  std::vector<double> values(base.values().begin(), base.values().end());
  for (std::size_t k = 0; k < values.size(); ++k)
    values[k] = values[k] * (1.0 + 0.01 * static_cast<double>(lane)) +
                0.001 * static_cast<double>(lane + k % 3);
  return linalg::CsrMatrix::from_parts(pattern.rows, pattern.cols,
                                       pattern.row_start, pattern.col_index,
                                       std::move(values));
}

void expect_batch_matches_scalar_chain(std::size_t dim,
                                       std::size_t factor_count,
                                       std::size_t lanes,
                                       std::uint64_t seed) {
  numeric::Xoshiro256 rng(seed);
  std::vector<linalg::CsrMatrix> base;
  base.reserve(factor_count);
  for (std::size_t k = 0; k < factor_count; ++k)
    base.push_back(random_factor(dim, rng));

  std::vector<CsrPattern> patterns;
  patterns.reserve(factor_count);
  for (const linalg::CsrMatrix& factor : base)
    patterns.push_back(CsrPattern::of(factor));
  const ChainProductSkeleton chain(patterns);

  // Per-lane factor sets and their SoA transpose.
  std::vector<std::vector<linalg::CsrMatrix>> lane_factors(lanes);
  std::vector<std::vector<double>> soa(factor_count);
  for (std::size_t k = 0; k < factor_count; ++k)
    soa[k].resize(patterns[k].nonzeros() * lanes);
  for (std::size_t l = 0; l < lanes; ++l) {
    lane_factors[l].reserve(factor_count);
    for (std::size_t k = 0; k < factor_count; ++k) {
      lane_factors[l].push_back(lane_variant(base[k], l));
      const auto values = lane_factors[l].back().values();
      for (std::size_t e = 0; e < values.size(); ++e)
        soa[k][e * lanes + l] = values[e];
    }
  }

  BatchLaneArena arena;
  std::vector<double> batched(chain.pattern().nonzeros() * lanes);
  const BatchRefill batch(chain, patterns);
  batch.refill(soa, lanes, arena, std::span<double>(batched));
  // Warm second pass must be identical (arena reuse is value-clean).
  std::vector<double> warm(batched.size(), -1.0);
  batch.refill(soa, lanes, arena, std::span<double>(warm));
  EXPECT_EQ(batched, warm);

  ChainRefillArena scalar_arena;
  std::vector<double> scalar(chain.pattern().nonzeros());
  for (std::size_t l = 0; l < lanes; ++l) {
    chain.refill(lane_factors[l], scalar_arena, std::span<double>(scalar));
    for (std::size_t k = 0; k < scalar.size(); ++k)
      expect_close(batched[k * lanes + l], scalar[k],
                   "entry " + std::to_string(k) + " lane " +
                       std::to_string(l));
  }
}

TEST(BatchRefill, LanesMatchScalarRefillOnRandomChains) {
  for (const std::size_t lanes : {std::size_t{1}, std::size_t{2},
                                  std::size_t{4}, std::size_t{7}}) {
    SCOPED_TRACE("lanes " + std::to_string(lanes));
    expect_batch_matches_scalar_chain(6, 4, lanes, 17 + lanes);
    expect_batch_matches_scalar_chain(9, 7, lanes, 400 + lanes);
  }
}

TEST(BatchRefill, LaneCountsStraddlingVectorWidth) {
  // The remainder loop of every simd helper: widths around kWidth and a
  // count that is not a multiple of it.
  const std::size_t w = linalg::simd::kWidth;
  std::vector<std::size_t> widths = {w, w + 1, 2 * w + 1, 3};
  if (w > 1) widths.push_back(w - 1);
  for (const std::size_t lanes : widths) {
    SCOPED_TRACE("lanes " + std::to_string(lanes));
    expect_batch_matches_scalar_chain(7, 5, lanes, 900 + lanes);
  }
}

TEST(BatchRefill, SingleFactorChainIsAPassthrough) {
  expect_batch_matches_scalar_chain(5, 1, 3, 7);
}

// --- Layer 2: the hart batch solve against scalar analyze_into ---------

using hart::PathAnalysisOptions;
using hart::PathModel;
using hart::PathModelConfig;
using hart::PathModelSkeleton;
using hart::PathTransientResult;
using hart::SteadyStateLinks;
using hart::TransientKernel;

void expect_lane_matches_scalar(const PathTransientResult& batched,
                                const PathTransientResult& scalar,
                                const std::string& lane) {
  ASSERT_EQ(batched.cycle_probabilities.size(),
            scalar.cycle_probabilities.size());
  for (std::size_t i = 0; i < scalar.cycle_probabilities.size(); ++i)
    expect_close(batched.cycle_probabilities[i],
                 scalar.cycle_probabilities[i],
                 lane + " cycle " + std::to_string(i));
  expect_close(batched.discard_probability, scalar.discard_probability,
               lane + " discard");
  expect_close(batched.expected_transmissions,
               scalar.expected_transmissions, lane + " transmissions");
  expect_close(batched.expected_transmissions_delivered,
               scalar.expected_transmissions_delivered,
               lane + " delivered");
  ASSERT_EQ(batched.expected_transmissions_per_hop.size(),
            scalar.expected_transmissions_per_hop.size());
  for (std::size_t h = 0;
       h < scalar.expected_transmissions_per_hop.size(); ++h)
    expect_close(batched.expected_transmissions_per_hop[h],
                 scalar.expected_transmissions_per_hop[h],
                 lane + " hop " + std::to_string(h));
  EXPECT_EQ(batched.trajectory_stride, scalar.trajectory_stride) << lane;
  ASSERT_EQ(batched.goal_trajectory.size(), scalar.goal_trajectory.size());
  for (std::size_t k = 0; k < scalar.goal_trajectory.size(); ++k) {
    ASSERT_EQ(batched.goal_trajectory[k].size(),
              scalar.goal_trajectory[k].size());
    for (std::size_t i = 0; i < scalar.goal_trajectory[k].size(); ++i)
      expect_close(batched.goal_trajectory[k][i],
                   scalar.goal_trajectory[k][i],
                   lane + " trajectory " + std::to_string(k) + "," +
                       std::to_string(i));
  }
}

// Solve `lane_availabilities` as one batch through a shared skeleton and
// check every lane against its own scalar refill.
void expect_batch_solve_matches_scalar(
    const PathModelConfig& config,
    const std::vector<std::vector<double>>& lane_availabilities) {
  const PathModelSkeleton skeleton(config);
  std::vector<SteadyStateLinks> links;
  links.reserve(lane_availabilities.size());
  for (const std::vector<double>& availabilities : lane_availabilities)
    links.emplace_back(availabilities);
  std::vector<const hart::LinkProbabilityProvider*> providers;
  providers.reserve(links.size());
  for (const SteadyStateLinks& provider : links)
    providers.push_back(&provider);

  PathAnalysisOptions options;
  options.kernel = TransientKernel::kSuperframeProduct;
  options.batch_lanes = lane_availabilities.size();

  hart::BatchSolveWorkspace workspace;
  std::vector<PathTransientResult> batched(links.size());
  skeleton.analyze_batch_into(providers, options, workspace, batched);
  // Warm pass through the same workspace must agree too.
  std::vector<PathTransientResult> warm(links.size());
  skeleton.analyze_batch_into(providers, options, workspace, warm);

  hart::SolveWorkspace scalar_ws;
  PathTransientResult scalar;
  for (std::size_t l = 0; l < links.size(); ++l) {
    skeleton.analyze_into(links[l], options, scalar_ws, scalar);
    expect_lane_matches_scalar(batched[l], scalar,
                               "lane " + std::to_string(l));
    expect_lane_matches_scalar(warm[l], scalar,
                               "warm lane " + std::to_string(l));
  }
}

// Deform base availabilities into `lanes` distinct points, all strictly
// inside (0, 1).
std::vector<std::vector<double>> deformed_lanes(
    const std::vector<double>& base, std::size_t lanes) {
  std::vector<std::vector<double>> out;
  out.reserve(lanes);
  for (std::size_t l = 0; l < lanes; ++l) {
    std::vector<double> lane = base;
    const double blend = 0.08 * static_cast<double>(l);
    for (double& a : lane)
      a = a * (1.0 - blend) + 0.5 * blend + 0.001 * static_cast<double>(l);
    out.push_back(std::move(lane));
  }
  return out;
}

TEST(BatchSolve, EveryLaneMatchesScalarAcrossScenarioCorpus) {
  const verify::ScenarioGenerator generator;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const verify::Scenario scenario = generator.generate(seed);
    for (std::size_t p = 0; p < scenario.path_count(); ++p) {
      SCOPED_TRACE("path " + std::to_string(p));
      expect_batch_solve_matches_scalar(
          scenario.path_config(p),
          deformed_lanes(scenario.hop_availabilities(p), 4));
    }
  }
}

PathModelConfig three_hop_config() {
  PathModelConfig config;
  config.hop_slots = {2, 5, 7};
  config.superframe = net::SuperframeConfig::symmetric(9);
  config.reporting_interval = 4;
  return config;
}

TEST(BatchSolve, SingleLaneBatchMatchesScalar) {
  expect_batch_solve_matches_scalar(three_hop_config(),
                                    deformed_lanes({0.7, 0.85, 0.9}, 1));
}

TEST(BatchSolve, LaneCountsAroundVectorWidth) {
  const std::size_t w = linalg::simd::kWidth;
  std::vector<std::size_t> widths = {w, w + 1, 2 * w + 1};
  if (w > 1) widths.push_back(w - 1);
  for (const std::size_t lanes : widths) {
    SCOPED_TRACE("lanes " + std::to_string(lanes));
    expect_batch_solve_matches_scalar(
        three_hop_config(), deformed_lanes({0.7, 0.85, 0.9}, lanes));
  }
}

TEST(BatchSolve, TtlCutBatchesMatchScalar) {
  PathModelConfig config = three_hop_config();
  config.ttl = 14;  // cuts the horizon mid-cycle
  expect_batch_solve_matches_scalar(config,
                                    deformed_lanes({0.6, 0.8, 0.95}, 5));
}

TEST(BatchSolve, OneSlotFrameBatchesMatchScalar) {
  PathModelConfig config;
  config.hop_slots = {1};
  config.superframe = net::SuperframeConfig::symmetric(1);
  config.reporting_interval = 3;
  expect_batch_solve_matches_scalar(config, deformed_lanes({0.75}, 4));
}

TEST(BatchSolve, DegenerateLanesFallBackInsideAMixedBatch) {
  // pfl of 0 or 1 changes the sparsity pattern, so those lanes must be
  // routed to the scalar per-lane path while the rest still batch — and
  // every lane, batched or fallen back, must match its scalar solve.
  expect_batch_solve_matches_scalar(
      three_hop_config(),
      {{0.7, 0.85, 0.9},
       {0.0, 0.85, 0.9},    // dead hop: scalar fallback
       {1.0, 1.0, 1.0},     // perfect links: scalar fallback
       {0.72, 0.83, 0.88},  // batchable
       {0.68, 0.8, 0.93}});
}

TEST(BatchSolve, PerSlotKernelFallsBackToScalarLanes) {
  // The per-slot kernel has no SoA core; analyze_batch_into must route
  // every lane through the scalar refill and still match.
  const PathModelConfig config = three_hop_config();
  const PathModelSkeleton skeleton(config);
  const std::vector<std::vector<double>> lanes =
      deformed_lanes({0.7, 0.85, 0.9}, 3);
  std::vector<SteadyStateLinks> links;
  links.reserve(lanes.size());
  for (const std::vector<double>& availabilities : lanes)
    links.emplace_back(availabilities);
  std::vector<const hart::LinkProbabilityProvider*> providers;
  providers.reserve(links.size());
  for (const SteadyStateLinks& provider : links)
    providers.push_back(&provider);

  PathAnalysisOptions options;
  options.kernel = TransientKernel::kPerSlot;
  options.batch_lanes = lanes.size();
  hart::BatchSolveWorkspace workspace;
  std::vector<PathTransientResult> batched(links.size());
  skeleton.analyze_batch_into(providers, options, workspace, batched);

  hart::SolveWorkspace scalar_ws;
  PathTransientResult scalar;
  for (std::size_t l = 0; l < links.size(); ++l) {
    skeleton.analyze_into(links[l], options, scalar_ws, scalar);
    expect_lane_matches_scalar(batched[l], scalar,
                               "lane " + std::to_string(l));
  }
}

TEST(BatchSolve, LaneSwapInjectionBreaksLaneEquivalence) {
  // The lane-swap fault must actually contaminate lanes — otherwise the
  // oracle's batch arm (and its WILL_FAIL self-test) verifies nothing.
  const PathModelConfig config = three_hop_config();
  const PathModelSkeleton skeleton(config);
  const std::vector<std::vector<double>> lanes =
      deformed_lanes({0.7, 0.85, 0.9}, 4);
  std::vector<SteadyStateLinks> links;
  links.reserve(lanes.size());
  for (const std::vector<double>& availabilities : lanes)
    links.emplace_back(availabilities);
  std::vector<const hart::LinkProbabilityProvider*> providers;
  providers.reserve(links.size());
  for (const SteadyStateLinks& provider : links)
    providers.push_back(&provider);

  PathAnalysisOptions options;
  options.kernel = TransientKernel::kSuperframeProduct;
  options.batch_lanes = lanes.size();
  options.inject_lane_swap = true;
  hart::BatchSolveWorkspace workspace;
  std::vector<PathTransientResult> swapped(links.size());
  skeleton.analyze_batch_into(providers, options, workspace, swapped);

  hart::SolveWorkspace scalar_ws;
  PathTransientResult scalar;
  skeleton.analyze_into(links[0], options, scalar_ws, scalar);
  EXPECT_NE(swapped[0].cycle_probabilities, scalar.cycle_probabilities);
}

}  // namespace
}  // namespace whart::markov
