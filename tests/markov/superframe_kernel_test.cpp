// The superframe-product transient kernel against the per-slot solver:
// the cycle collapse must reproduce every solver output to 1e-12 across
// a seeded corpus of generated scenarios (out-of-order slots, retry
// slots, mid-horizon TTLs, degenerate links) and the structural edge
// cases called out in DESIGN.md §11 — Fup = 1, TTL = 1, and horizons
// that are not a multiple of the superframe.
#include "whart/markov/superframe_kernel.hpp"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "whart/common/contracts.hpp"
#include "whart/hart/link_probability.hpp"
#include "whart/hart/path_model.hpp"
#include "whart/linalg/matrix.hpp"
#include "whart/markov/transient.hpp"
#include "whart/verify/scenario.hpp"

namespace whart::markov {
namespace {

constexpr double kTol = 1e-12;

hart::PathAnalysisOptions superframe_options() {
  hart::PathAnalysisOptions options;
  options.kernel = hart::TransientKernel::kSuperframeProduct;
  return options;
}

/// Every solver output of the two kernels must agree to kTol.
void expect_equivalent(const hart::PathModelConfig& config,
                       const std::vector<double>& availabilities) {
  const hart::PathModel model(config);
  const hart::SteadyStateLinks links{availabilities};
  const hart::PathTransientResult per_slot = model.analyze(links);
  const hart::PathTransientResult collapsed =
      model.analyze(links, superframe_options());

  ASSERT_EQ(collapsed.diagnostics.kernel,
            hart::TransientKernel::kSuperframeProduct);
  ASSERT_EQ(per_slot.diagnostics.kernel, hart::TransientKernel::kPerSlot);

  ASSERT_EQ(collapsed.cycle_probabilities.size(),
            per_slot.cycle_probabilities.size());
  for (std::size_t i = 0; i < per_slot.cycle_probabilities.size(); ++i)
    EXPECT_NEAR(collapsed.cycle_probabilities[i],
                per_slot.cycle_probabilities[i], kTol)
        << "cycle " << i;
  EXPECT_NEAR(collapsed.discard_probability, per_slot.discard_probability,
              kTol);
  EXPECT_NEAR(collapsed.expected_transmissions,
              per_slot.expected_transmissions, kTol);
  EXPECT_NEAR(collapsed.expected_transmissions_delivered,
              per_slot.expected_transmissions_delivered, kTol);
  ASSERT_EQ(collapsed.expected_transmissions_per_hop.size(),
            per_slot.expected_transmissions_per_hop.size());
  for (std::size_t h = 0; h < per_slot.expected_transmissions_per_hop.size();
       ++h)
    EXPECT_NEAR(collapsed.expected_transmissions_per_hop[h],
                per_slot.expected_transmissions_per_hop[h], kTol)
        << "hop " << h;
  EXPECT_LE(collapsed.diagnostics.mass_residual, 1e-12);

  // The collapsed trajectory records cycle boundaries; entry k must
  // match the per-slot trajectory at t = k * Fup.
  EXPECT_EQ(per_slot.trajectory_stride, 1u);
  EXPECT_EQ(collapsed.trajectory_stride, config.superframe.uplink_slots);
  ASSERT_EQ(collapsed.goal_trajectory.size(),
            static_cast<std::size_t>(config.reporting_interval) + 1);
  for (std::size_t k = 0; k < collapsed.goal_trajectory.size(); ++k) {
    const std::size_t t = k * config.superframe.uplink_slots;
    ASSERT_LT(t, per_slot.goal_trajectory.size());
    for (std::size_t i = 0; i < collapsed.goal_trajectory[k].size(); ++i)
      EXPECT_NEAR(collapsed.goal_trajectory[k][i],
                  per_slot.goal_trajectory[t][i], kTol)
          << "boundary " << k << " cycle " << i;
  }
}

TEST(SuperframeKernel, EquivalentAcrossSeededScenarioCorpus) {
  const verify::ScenarioGenerator generator;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const verify::Scenario scenario = generator.generate(seed);
    for (std::size_t p = 0; p < scenario.path_count(); ++p) {
      SCOPED_TRACE("seed " + std::to_string(seed) + " path " +
                   std::to_string(p));
      expect_equivalent(scenario.path_config(p),
                        scenario.hop_availabilities(p));
    }
  }
}

TEST(SuperframeKernel, EquivalentWithSingleSlotFrame) {
  // Fup = 1: the "cycle product" is the single slot matrix and every
  // cycle delivers or retries the one hop.
  hart::PathModelConfig config;
  config.hop_slots = {1};
  config.superframe = net::SuperframeConfig{1, 1};
  config.reporting_interval = 6;
  expect_equivalent(config, {0.7});
}

TEST(SuperframeKernel, EquivalentWithTtlOne) {
  // TTL = 1: the very first uplink slot is also the discard slot, so the
  // whole solve is tail — the collapse must not advance a single cycle.
  hart::PathModelConfig config;
  config.hop_slots = {1, 2, 3};
  config.superframe = net::SuperframeConfig{4, 4};
  config.reporting_interval = 3;
  config.ttl = 1;
  expect_equivalent(config, {0.9, 0.8, 0.7});
}

TEST(SuperframeKernel, EquivalentWithMidCycleTtl) {
  // A TTL strictly inside a later cycle: full cycles collapse, the TTL
  // cycle runs per-slot, trailing cycles contribute nothing.
  hart::PathModelConfig config;
  config.hop_slots = {2, 1, 4};  // out of hop order on purpose
  config.superframe = net::SuperframeConfig{5, 5};
  config.reporting_interval = 4;
  config.ttl = 13;
  expect_equivalent(config, {0.85, 0.6, 0.95});
}

TEST(SuperframeKernel, EquivalentWithTtlOnCycleBoundary) {
  hart::PathModelConfig config;
  config.hop_slots = {1, 3};
  config.superframe = net::SuperframeConfig{3, 3};
  config.reporting_interval = 4;
  config.ttl = 6;  // exactly two cycles
  expect_equivalent(config, {0.75, 0.8});
}

TEST(SuperframeKernel, EquivalentWithRetrySlots) {
  hart::PathModelConfig config;
  config.hop_slots = {1, 3};
  config.retry_slots = {2, 0};
  config.superframe = net::SuperframeConfig{4, 4};
  config.reporting_interval = 3;
  expect_equivalent(config, {0.5, 0.9});
}

// --- raw markov::SuperframeKernel behaviour -----------------------------

/// The per-slot matrices of a small 2-hop model, via the production path.
std::vector<linalg::CsrMatrix> small_slot_matrices() {
  hart::PathModelConfig config;
  config.hop_slots = {1, 2};
  config.superframe = net::SuperframeConfig{3, 3};
  config.reporting_interval = 2;
  const hart::PathModel model(config);
  const hart::SteadyStateLinks links{std::vector<double>{0.8, 0.6}};
  return model.slot_matrices(links);
}

TEST(SuperframeKernel, ProductIsRowStochastic) {
  const SuperframeKernel kernel(small_slot_matrices());
  EXPECT_EQ(kernel.period(), 6u);  // Fup + Fdown
  EXPECT_EQ(kernel.dimension(), 4u);
  EXPECT_LE(kernel.product_row_sum_residual(), 1e-15);
}

TEST(SuperframeKernel, StepsNotMultipleOfPeriodUseTail) {
  const std::vector<linalg::CsrMatrix> slots = small_slot_matrices();
  const SuperframeKernel kernel(slots);
  linalg::Vector initial(kernel.dimension());
  initial[0] = 1.0;
  // 2 full cycles + 4 tail slots: compare against the naive per-slot
  // product over the periodic sequence.
  const std::uint64_t steps = 2 * kernel.period() + 4;
  const linalg::Vector collapsed =
      distribution_after_periodic(kernel, initial, steps);
  linalg::Vector naive = initial;
  for (std::uint64_t t = 0; t < steps; ++t)
    naive = slots[t % slots.size()].left_multiply(naive);
  ASSERT_EQ(collapsed.size(), naive.size());
  for (std::size_t i = 0; i < naive.size(); ++i)
    EXPECT_NEAR(collapsed[i], naive[i], kTol);
}

TEST(SuperframeKernel, ZeroStepsReturnsInitialUnchanged) {
  const SuperframeKernel kernel(small_slot_matrices());
  linalg::Vector initial(kernel.dimension());
  initial[1] = 0.25;
  initial[2] = 0.75;
  const linalg::Vector after = distribution_after_periodic(kernel, initial, 0);
  EXPECT_EQ(after, initial);
}

TEST(SuperframeKernel, BatchedSolveMatchesSequentialRows) {
  const SuperframeKernel kernel(small_slot_matrices());
  const std::size_t dim = kernel.dimension();
  linalg::Matrix initials(dim + 3, dim);
  for (std::size_t r = 0; r < initials.rows(); ++r)
    for (std::size_t c = 0; c < dim; ++c)
      initials(r, c) = (r + c) % dim == 0 ? 0.4 : 0.6 / double(dim - 1);
  const std::uint64_t steps = kernel.period() + 2;
  const linalg::Matrix batched =
      distributions_after_periodic(kernel, initials, steps);
  ASSERT_EQ(batched.rows(), initials.rows());
  for (std::size_t r = 0; r < initials.rows(); ++r) {
    linalg::Vector row(dim);
    for (std::size_t c = 0; c < dim; ++c) row[c] = initials(r, c);
    const linalg::Vector single =
        distribution_after_periodic(kernel, row, steps);
    for (std::size_t c = 0; c < dim; ++c)
      // Identical accumulation order — bitwise, not just near.
      EXPECT_EQ(batched(r, c), single[c]) << "row " << r << " col " << c;
  }
}

TEST(SuperframeKernel, PerturbedProductEntryChangesTheSolve) {
  SuperframeKernel kernel(small_slot_matrices());
  linalg::Vector initial(kernel.dimension());
  initial[0] = 1.0;
  const linalg::Vector clean =
      kernel.distribution_after(initial, 2 * kernel.period());
  kernel.perturb_product_entry(0, 0, 1e-3);
  const linalg::Vector corrupt =
      kernel.distribution_after(initial, 2 * kernel.period());
  double max_diff = 0.0;
  for (std::size_t i = 0; i < clean.size(); ++i)
    max_diff = std::max(max_diff, std::abs(clean[i] - corrupt[i]));
  EXPECT_GT(max_diff, 1e-5);
  EXPECT_GT(kernel.product_row_sum_residual(), 1e-5);
}

TEST(SuperframeKernel, RejectsEmptyAndMismatchedMatrices) {
  EXPECT_THROW(SuperframeKernel(std::vector<linalg::CsrMatrix>{}),
               precondition_error);
  std::vector<linalg::CsrMatrix> mismatched;
  mismatched.push_back(linalg::CsrMatrix::identity(3));
  mismatched.push_back(linalg::CsrMatrix::identity(4));
  EXPECT_THROW(SuperframeKernel(std::move(mismatched)), precondition_error);
}

}  // namespace
}  // namespace whart::markov
