#include "whart/markov/export.hpp"

#include <sstream>

#include <gtest/gtest.h>

#include "whart/common/contracts.hpp"
#include "whart/hart/path_model.hpp"

namespace whart::markov {
namespace {

Dtmc small_chain() {
  return Dtmc(3, {{0, 1, 0.3}, {0, 0, 0.7}, {1, 1, 1.0}, {2, 2, 1.0}},
              {"start", "goal", "sink"});
}

TEST(ExportDot, ContainsStatesAndEdges) {
  std::ostringstream out;
  write_dot(out, small_chain());
  const std::string dot = out.str();
  EXPECT_NE(dot.find("digraph dtmc"), std::string::npos);
  EXPECT_NE(dot.find("rankdir=LR"), std::string::npos);
  EXPECT_NE(dot.find("label=\"start\""), std::string::npos);
  EXPECT_NE(dot.find("label=\"goal\", shape=doublecircle"),
            std::string::npos);
  EXPECT_NE(dot.find("s0 -> s1 [label=\"0.3\"]"), std::string::npos);
  // Absorbing self-loops are suppressed for readability.
  EXPECT_EQ(dot.find("s1 -> s1"), std::string::npos);
}

TEST(ExportDot, MinProbabilityFiltersEdges) {
  DotOptions options;
  options.min_probability = 0.5;
  std::ostringstream out;
  write_dot(out, small_chain(), options);
  EXPECT_EQ(out.str().find("s0 -> s1"), std::string::npos);
  EXPECT_NE(out.str().find("s0 -> s0"), std::string::npos);
}

TEST(ExportPrism, TransitionFileFormat) {
  std::ostringstream out;
  write_prism_transitions(out, small_chain());
  EXPECT_EQ(out.str(),
            "3 4\n0 0 0.7\n0 1 0.3\n1 1 1\n2 2 1\n");
}

TEST(ExportPrism, LabelFileMarksInitAndAbsorbing) {
  std::ostringstream out;
  write_prism_labels(out, small_chain());
  EXPECT_EQ(out.str(),
            "0=\"init\" 1=\"goal\" 2=\"sink\"\n0: 0\n1: 1\n2: 2\n");
}

TEST(ExportPrism, InitialOutOfRangeThrows) {
  std::ostringstream out;
  EXPECT_THROW(write_prism_labels(out, small_chain(), 5),
               precondition_error);
}

TEST(Export, PathModelChainRoundTripsThroughBothFormats) {
  hart::PathModelConfig config;
  config.hop_slots = {3, 6, 7};
  config.superframe = net::SuperframeConfig::symmetric(7);
  config.reporting_interval = 2;
  const hart::PathModel model(config);
  const hart::SteadyStateLinks links(
      3, link::LinkModel::from_availability(0.75));
  const Dtmc chain = model.to_dtmc(links);

  std::ostringstream dot;
  write_dot(dot, chain);
  EXPECT_NE(dot.str().find("(1,-,-)"), std::string::npos);
  EXPECT_NE(dot.str().find("R7"), std::string::npos);
  EXPECT_NE(dot.str().find("Discard"), std::string::npos);

  std::ostringstream tra;
  write_prism_transitions(tra, chain);
  // Header announces the state and transition counts; count the lines.
  std::istringstream lines(tra.str());
  std::string first;
  std::getline(lines, first);
  EXPECT_EQ(first, std::to_string(chain.num_states()) + " " +
                       std::to_string(chain.matrix().nonzeros()));
  std::size_t count = 0;
  for (std::string line; std::getline(lines, line);) ++count;
  EXPECT_EQ(count, chain.matrix().nonzeros());
}

}  // namespace
}  // namespace whart::markov
