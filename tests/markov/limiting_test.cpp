#include "whart/markov/limiting.hpp"

#include <gtest/gtest.h>

#include "whart/common/contracts.hpp"
#include "whart/markov/steady_state.hpp"
#include "whart/markov/transient.hpp"

namespace whart::markov {
namespace {

TEST(Limiting, IrreducibleChainGivesStationaryDistribution) {
  const Dtmc chain(2, {{0, 0, 0.8},
                       {0, 1, 0.2},
                       {1, 0, 0.9},
                       {1, 1, 0.1}});
  const linalg::Vector from_up =
      long_run_distribution(chain, {1.0, 0.0});
  const linalg::Vector stationary = steady_state_direct(chain);
  EXPECT_LT(linalg::max_abs_diff(from_up, stationary), 1e-12);
  // Independent of the start.
  const linalg::Vector from_down =
      long_run_distribution(chain, {0.0, 1.0});
  EXPECT_LT(linalg::max_abs_diff(from_down, stationary), 1e-12);
}

TEST(Limiting, GamblersRuinSplitsMassBetweenAbsorbers) {
  std::vector<linalg::Triplet> t{{0, 0, 1.0}, {4, 4, 1.0}};
  for (StateIndex s : {1, 2, 3}) {
    t.push_back({s, s - 1, 0.5});
    t.push_back({s, s + 1, 0.5});
  }
  const Dtmc chain(5, std::move(t));
  const linalg::Vector limit =
      long_run_distribution(chain, point_distribution(5, 1));
  EXPECT_NEAR(limit[0], 0.75, 1e-12);
  EXPECT_NEAR(limit[4], 0.25, 1e-12);
  EXPECT_NEAR(limit[1] + limit[2] + limit[3], 0.0, 1e-12);

  const linalg::Vector capture =
      capture_probabilities(chain, point_distribution(5, 3));
  ASSERT_EQ(capture.size(), 2u);  // classes {0} and {4}
  EXPECT_NEAR(capture[0], 0.25, 1e-12);
  EXPECT_NEAR(capture[1], 0.75, 1e-12);
}

TEST(Limiting, TransientFeedsAMultiStateClosedClass) {
  // 0 -> closed class {1, 2} with an asymmetric internal chain.
  const Dtmc chain(3, {{0, 1, 1.0},
                       {1, 1, 0.6},
                       {1, 2, 0.4},
                       {2, 1, 0.8},
                       {2, 2, 0.2}});
  const linalg::Vector limit =
      long_run_distribution(chain, point_distribution(3, 0));
  // Stationary of the {1,2} chain: pi1 * 0.4 = pi2 * 0.8.
  EXPECT_NEAR(limit[1], 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(limit[2], 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(limit[0], 0.0);
}

TEST(Limiting, MatchesLongTransientIterationWhenAperiodic) {
  // Mixed chain: one transient state, two closed classes (one of them
  // two states).  Compare with brute-force iteration.
  const Dtmc chain(4, {{0, 1, 0.3},
                       {0, 2, 0.5},
                       {0, 0, 0.2},
                       {1, 1, 1.0},
                       {2, 2, 0.5},
                       {2, 3, 0.5},
                       {3, 2, 0.7},
                       {3, 3, 0.3}});
  const linalg::Vector initial{1.0, 0.0, 0.0, 0.0};
  const linalg::Vector analytic = long_run_distribution(chain, initial);
  const linalg::Vector iterated =
      distribution_after(chain, initial, 2000);
  EXPECT_LT(linalg::max_abs_diff(analytic, iterated), 1e-10);
}

TEST(Limiting, CesaroLimitOfAPeriodicClassIsUniform) {
  // The plain limit of a 2-cycle does not exist; the Cesàro limit is the
  // stationary (uniform) distribution.
  const Dtmc chain(2, {{0, 1, 1.0}, {1, 0, 1.0}});
  const linalg::Vector limit =
      long_run_distribution(chain, {1.0, 0.0});
  EXPECT_NEAR(limit[0], 0.5, 1e-12);
  EXPECT_NEAR(limit[1], 0.5, 1e-12);
}

TEST(Limiting, MassIsConserved) {
  const Dtmc chain(3, {{0, 1, 0.5}, {0, 2, 0.5}, {1, 1, 1.0}, {2, 2, 1.0}});
  const linalg::Vector limit =
      long_run_distribution(chain, {0.6, 0.3, 0.1});
  EXPECT_NEAR(linalg::sum(limit), 1.0, 1e-12);
  const linalg::Vector capture =
      capture_probabilities(chain, {0.6, 0.3, 0.1});
  EXPECT_NEAR(linalg::sum(capture), 1.0, 1e-12);
}

TEST(Limiting, SizeMismatchThrows) {
  const Dtmc chain(2, {{0, 0, 1.0}, {1, 1, 1.0}});
  EXPECT_THROW(long_run_distribution(chain, linalg::Vector(3)),
               precondition_error);
  EXPECT_THROW(capture_probabilities(chain, linalg::Vector(1)),
               precondition_error);
}

}  // namespace
}  // namespace whart::markov
