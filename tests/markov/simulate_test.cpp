#include "whart/markov/simulate.hpp"

#include <gtest/gtest.h>

#include "whart/common/contracts.hpp"
#include "whart/markov/transient.hpp"

namespace whart::markov {
namespace {

Dtmc link_chain(double pfl, double prc) {
  return Dtmc(2, {{0, 0, 1.0 - pfl},
                  {0, 1, pfl},
                  {1, 0, prc},
                  {1, 1, 1.0 - prc}});
}

TEST(Simulate, TrajectoryShapeAndDeterminism) {
  const Dtmc chain = link_chain(0.3, 0.9);
  numeric::Xoshiro256 rng_a(12);
  numeric::Xoshiro256 rng_b(12);
  const auto a = sample_trajectory(chain, 0, 50, rng_a);
  const auto b = sample_trajectory(chain, 0, 50, rng_b);
  ASSERT_EQ(a.size(), 51u);
  EXPECT_EQ(a.front(), 0u);
  EXPECT_EQ(a, b);
}

TEST(Simulate, DeterministicChainFollowsTheOnlyEdge) {
  const Dtmc chain(3, {{0, 1, 1.0}, {1, 2, 1.0}, {2, 0, 1.0}});
  numeric::Xoshiro256 rng(5);
  const auto trajectory = sample_trajectory(chain, 0, 6, rng);
  EXPECT_EQ(trajectory,
            (std::vector<StateIndex>{0, 1, 2, 0, 1, 2, 0}));
}

TEST(Simulate, AbsorbingStateStaysPut) {
  const Dtmc chain(2, {{0, 1, 1.0}, {1, 1, 1.0}});
  numeric::Xoshiro256 rng(3);
  EXPECT_EQ(sample_step(chain, 1, rng), 1u);
}

TEST(Simulate, EmpiricalDistributionMatchesTransientAnalysis) {
  const Dtmc chain = link_chain(0.184, 0.9);
  numeric::Xoshiro256 rng(77);
  const linalg::Vector empirical =
      empirical_distribution(chain, 1, 4, 50000, rng);
  const linalg::Vector exact =
      distribution_after(chain, point_distribution(2, 1), 4);
  EXPECT_NEAR(empirical[0], exact[0], 0.01);
  EXPECT_NEAR(empirical[1], exact[1], 0.01);
}

TEST(Simulate, HittingTimesMatchGeometricMean) {
  // From DOWN, hitting UP is geometric with p = prc = 0.5: mean 2.
  const Dtmc chain = link_chain(0.2, 0.5);
  numeric::Xoshiro256 rng(11);
  double total = 0.0;
  const int runs = 20000;
  for (int i = 0; i < runs; ++i) {
    const auto t = sample_hitting_time(chain, 1, {0}, 1000, rng);
    ASSERT_TRUE(t.has_value());
    total += static_cast<double>(*t);
  }
  EXPECT_NEAR(total / runs, 2.0, 0.05);
}

TEST(Simulate, HittingTargetAtStartIsZero) {
  const Dtmc chain = link_chain(0.2, 0.5);
  numeric::Xoshiro256 rng(1);
  EXPECT_EQ(sample_hitting_time(chain, 0, {0}, 10, rng), 0u);
}

TEST(Simulate, UnreachableTargetGivesNullopt) {
  const Dtmc chain(2, {{0, 0, 1.0}, {1, 1, 1.0}});
  numeric::Xoshiro256 rng(1);
  EXPECT_FALSE(sample_hitting_time(chain, 0, {1}, 100, rng).has_value());
}

TEST(Simulate, InvalidArgumentsThrow) {
  const Dtmc chain = link_chain(0.2, 0.5);
  numeric::Xoshiro256 rng(1);
  EXPECT_THROW(sample_trajectory(chain, 5, 10, rng), precondition_error);
  EXPECT_THROW(empirical_distribution(chain, 0, 1, 0, rng),
               precondition_error);
  EXPECT_THROW(sample_hitting_time(chain, 0, {}, 10, rng),
               precondition_error);
}

}  // namespace
}  // namespace whart::markov
