#include "whart/markov/absorbing.hpp"

#include <gtest/gtest.h>

#include "whart/common/contracts.hpp"

namespace whart::markov {
namespace {

TEST(Absorbing, GamblersRuinAbsorptionProbabilities) {
  // States 0..4; 0 and 4 absorbing; fair coin moves +-1.
  std::vector<linalg::Triplet> t{{0, 0, 1.0}, {4, 4, 1.0}};
  for (StateIndex s : {1, 2, 3}) {
    t.push_back({s, s - 1, 0.5});
    t.push_back({s, s + 1, 0.5});
  }
  const Dtmc chain(5, std::move(t));
  const AbsorbingAnalysis analysis = analyze_absorbing(chain);

  ASSERT_EQ(analysis.absorbing_states, (std::vector<StateIndex>{0, 4}));
  ASSERT_EQ(analysis.transient_states, (std::vector<StateIndex>{1, 2, 3}));

  // From state i, P(absorbed at 4) = i / 4 for the fair gambler's ruin.
  EXPECT_NEAR(analysis.absorption_probability(0, 1), 0.25, 1e-12);
  EXPECT_NEAR(analysis.absorption_probability(1, 1), 0.50, 1e-12);
  EXPECT_NEAR(analysis.absorption_probability(2, 1), 0.75, 1e-12);

  // Expected steps from the middle: i (4 - i) => 4 from state 2.
  EXPECT_NEAR(analysis.expected_steps[1], 4.0, 1e-12);
  EXPECT_NEAR(analysis.expected_steps[0], 3.0, 1e-12);
}

TEST(Absorbing, RowsOfBSumToOne) {
  std::vector<linalg::Triplet> t{{0, 0, 1.0}, {3, 3, 1.0}};
  t.push_back({1, 0, 0.3});
  t.push_back({1, 2, 0.7});
  t.push_back({2, 1, 0.4});
  t.push_back({2, 3, 0.6});
  const Dtmc chain(4, std::move(t));
  const AbsorbingAnalysis analysis = analyze_absorbing(chain);
  for (std::size_t i = 0; i < analysis.transient_states.size(); ++i) {
    double row = 0.0;
    for (std::size_t j = 0; j < analysis.absorbing_states.size(); ++j)
      row += analysis.absorption_probability(i, j);
    EXPECT_NEAR(row, 1.0, 1e-12);
  }
}

TEST(Absorbing, FundamentalMatrixCountsVisits) {
  // Single transient state looping with p = 0.5 before absorbing:
  // expected visits = 1 / (1 - 0.5) = 2.
  const Dtmc chain(2, {{0, 0, 0.5}, {0, 1, 0.5}, {1, 1, 1.0}});
  const AbsorbingAnalysis analysis = analyze_absorbing(chain);
  EXPECT_NEAR(analysis.expected_visits(0, 0), 2.0, 1e-12);
  EXPECT_NEAR(analysis.expected_steps[0], 2.0, 1e-12);
}

TEST(Absorbing, NoAbsorbingStateThrows) {
  const Dtmc chain(2, {{0, 1, 1.0}, {1, 0, 1.0}});
  EXPECT_THROW(analyze_absorbing(chain), precondition_error);
}

TEST(Absorbing, UnreachableAbsorptionThrows) {
  // State 1 loops to itself and state 2 forever; absorbing state 0 is
  // unreachable from them => I - Q singular.
  const Dtmc chain(3, {{0, 0, 1.0}, {1, 2, 1.0}, {2, 1, 1.0}});
  EXPECT_THROW(analyze_absorbing(chain), invariant_error);
}

TEST(Absorbing, FullyAbsorbingChain) {
  const Dtmc chain(2, {{0, 0, 1.0}, {1, 1, 1.0}});
  const AbsorbingAnalysis analysis = analyze_absorbing(chain);
  EXPECT_TRUE(analysis.transient_states.empty());
  EXPECT_EQ(analysis.absorbing_states.size(), 2u);
}

}  // namespace
}  // namespace whart::markov
