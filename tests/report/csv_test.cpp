#include "whart/report/csv.hpp"

#include <sstream>

#include <gtest/gtest.h>

namespace whart::report {
namespace {

TEST(Csv, PlainFieldsUnquoted) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.write_row({"a", "b", "c"});
  EXPECT_EQ(out.str(), "a,b,c\n");
}

TEST(Csv, FieldsWithCommasAreQuoted) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.write_row({"a,b", "c"});
  EXPECT_EQ(out.str(), "\"a,b\",c\n");
}

TEST(Csv, QuotesAreDoubled) {
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Csv, NewlinesAreQuoted) {
  EXPECT_EQ(CsvWriter::escape("two\nlines"), "\"two\nlines\"");
}

TEST(Csv, EmptyRowAndField) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.write_row({});
  writer.write_row({""});
  EXPECT_EQ(out.str(), "\n\n");
}

TEST(Csv, MultipleRows) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.write_row({"h1", "h2"});
  writer.write_row({"1", "2"});
  EXPECT_EQ(out.str(), "h1,h2\n1,2\n");
}

}  // namespace
}  // namespace whart::report
