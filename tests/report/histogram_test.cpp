#include "whart/report/histogram.hpp"

#include <algorithm>

#include <gtest/gtest.h>

#include "whart/common/contracts.hpp"

namespace whart::report {
namespace {

TEST(Histogram, RendersOneLinePerEntry) {
  const std::vector<std::string> labels{"70 ms", "210 ms"};
  const std::vector<double> values{0.4, 0.2};
  const std::string out = histogram_to_string(labels, values, 10);
  EXPECT_NE(out.find("70 ms"), std::string::npos);
  EXPECT_NE(out.find("210 ms"), std::string::npos);
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 2);
}

TEST(Histogram, LargestValueGetsFullWidth) {
  const std::vector<std::string> labels{"a", "b"};
  const std::vector<double> values{1.0, 0.5};
  const std::string out = histogram_to_string(labels, values, 10);
  EXPECT_NE(out.find(std::string(10, '#')), std::string::npos);
  EXPECT_EQ(out.find(std::string(11, '#')), std::string::npos);
}

TEST(Histogram, AllZerosRenderEmptyBars) {
  const std::vector<std::string> labels{"a"};
  const std::vector<double> values{0.0};
  const std::string out = histogram_to_string(labels, values, 10);
  EXPECT_EQ(out.find('#'), std::string::npos);
}

TEST(Histogram, MismatchedSizesThrow) {
  const std::vector<std::string> labels{"a"};
  const std::vector<double> values{1.0, 2.0};
  EXPECT_THROW(histogram_to_string(labels, values), precondition_error);
}

TEST(Histogram, NegativeValuesThrow) {
  const std::vector<std::string> labels{"a"};
  const std::vector<double> values{-0.1};
  EXPECT_THROW(histogram_to_string(labels, values), precondition_error);
}

}  // namespace
}  // namespace whart::report
