// JSON export of metrics snapshots and Chrome trace_event span dumps:
// structural well-formedness (checked by a tiny JSON scanner — no JSON
// library is available by design), escaping, and the derived figures.
#include "whart/report/metrics_export.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "whart/common/obs.hpp"

namespace whart::report {
namespace {

using common::obs::HistogramSnapshot;
using common::obs::MetricsSnapshot;
using common::obs::SpanAggregate;
using common::obs::SpanRecord;

/// Minimal structural JSON validator: tracks bracket/brace nesting and
/// string/escape state.  Catches unbalanced structure, raw control
/// characters and bare inf/nan tokens — the failure modes a
/// hand-written serializer can actually produce.
bool json_well_formed(const std::string& text) {
  std::vector<char> stack;
  bool in_string = false;
  bool escaped = false;
  for (const char c : text) {
    if (in_string) {
      if (escaped)
        escaped = false;
      else if (c == '\\')
        escaped = true;
      else if (c == '"')
        in_string = false;
      else if (static_cast<unsigned char>(c) < 0x20)
        return false;  // raw control char inside a string
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': stack.push_back('}'); break;
      case '[': stack.push_back(']'); break;
      case '}':
      case ']':
        if (stack.empty() || stack.back() != c) return false;
        stack.pop_back();
        break;
      default: break;
    }
  }
  if (in_string || !stack.empty()) return false;
  if (text.find("inf") != std::string::npos) return false;
  if (text.find("nan") != std::string::npos) return false;
  return true;
}

MetricsSnapshot sample_snapshot() {
  MetricsSnapshot snapshot;
  snapshot.counters["hart.path_cache.hits"] = 30;
  snapshot.counters["hart.path_cache.misses"] = 10;
  snapshot.counters["parallel.tasks"] = 4;
  snapshot.counters["parallel.busy_ns"] = 4000;
  snapshot.gauges["parallel.pool.size"] = 8.0;
  HistogramSnapshot hist;
  hist.count = 2;
  hist.sum = 12;
  hist.min = 4;
  hist.max = 8;
  hist.buckets = {{4, 7, 1}, {8, 15, 1}};
  snapshot.histograms["hart.path_solve.ns"] = hist;
  return snapshot;
}

TEST(MetricsExport, WritesWellFormedJsonWithAllSections) {
  std::ostringstream out;
  write_metrics_json(out, sample_snapshot());
  const std::string text = out.str();
  EXPECT_TRUE(json_well_formed(text)) << text;
  EXPECT_NE(text.find("\"counters\""), std::string::npos);
  EXPECT_NE(text.find("\"gauges\""), std::string::npos);
  EXPECT_NE(text.find("\"histograms\""), std::string::npos);
  EXPECT_NE(text.find("\"derived\""), std::string::npos);
  EXPECT_NE(text.find("\"hart.path_cache.hits\": 30"), std::string::npos);
  EXPECT_NE(text.find("\"hart.path_solve.ns\""), std::string::npos);
}

TEST(MetricsExport, DerivesCacheHitRatioAndMeanTaskTime) {
  std::ostringstream out;
  write_metrics_json(out, sample_snapshot());
  const std::string text = out.str();
  // 30 hits / 40 lookups and 4000 ns / 4 tasks.
  EXPECT_NE(text.find("\"cache_hit_ratio\": 0.75"), std::string::npos);
  EXPECT_NE(text.find("\"parallel_mean_task_ns\": 1000"), std::string::npos);
}

TEST(MetricsExport, EmptySnapshotStillValid) {
  std::ostringstream out;
  write_metrics_json(out, MetricsSnapshot{});
  EXPECT_TRUE(json_well_formed(out.str())) << out.str();
}

TEST(MetricsExport, NonFiniteGaugeBecomesNull) {
  MetricsSnapshot snapshot;
  snapshot.gauges["bad.gauge"] = std::numeric_limits<double>::infinity();
  std::ostringstream out;
  write_metrics_json(out, snapshot);
  const std::string text = out.str();
  EXPECT_TRUE(json_well_formed(text)) << text;
  EXPECT_NE(text.find("\"bad.gauge\": null"), std::string::npos);
}

TEST(MetricsExport, EscapesMetricNames) {
  MetricsSnapshot snapshot;
  snapshot.counters["evil\"name\\with\nnewline"] = 1;
  std::ostringstream out;
  write_metrics_json(out, snapshot);
  EXPECT_TRUE(json_well_formed(out.str())) << out.str();
}

TEST(MetricsExport, SpansSectionPresentOnlyWhenGiven) {
  std::ostringstream without;
  write_metrics_json(without, sample_snapshot());
  EXPECT_EQ(without.str().find("\"spans\""), std::string::npos);

  std::vector<SpanAggregate> spans = {
      {"analyze_network", 2, 5000, 2000, 3000}};
  std::ostringstream with;
  write_metrics_json(with, sample_snapshot(), spans);
  const std::string text = with.str();
  EXPECT_TRUE(json_well_formed(text)) << text;
  EXPECT_NE(text.find("\"spans\""), std::string::npos);
  EXPECT_NE(text.find("\"analyze_network\""), std::string::npos);
  EXPECT_NE(text.find("\"total_ns\": 5000"), std::string::npos);
}

TEST(ChromeTrace, WritesCompleteEventsWithMicrosecondTimes) {
  std::vector<SpanRecord> events;
  events.push_back({"path_solve", 0, 0, 1'000'000, 2'500'000});
  events.push_back({"sim_shard", 3, 1, 2'000'000, 500'000});
  std::ostringstream out;
  write_chrome_trace_json(out, events);
  const std::string text = out.str();
  EXPECT_TRUE(json_well_formed(text)) << text;
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(text.find("\"tid\": 3"), std::string::npos);
  // 1'000'000 ns -> 1000 us.
  EXPECT_NE(text.find("\"ts\": 1000"), std::string::npos);
  EXPECT_NE(text.find("\"dur\": 2500"), std::string::npos);
  EXPECT_NE(text.find("\"depth\": 1"), std::string::npos);
}

TEST(ChromeTrace, EmptyEventListStillValid) {
  std::ostringstream out;
  write_chrome_trace_json(out, {});
  const std::string text = out.str();
  EXPECT_TRUE(json_well_formed(text)) << text;
  EXPECT_NE(text.find("\"traceEvents\": []"), std::string::npos);
}

TEST(SpanTable, PrintsOneRowPerSpan) {
  std::vector<SpanAggregate> spans = {
      {"analyze_network", 1, 4'000'000, 4'000'000, 4'000'000},
      {"path_solve", 10, 2'000'000, 100'000, 400'000}};
  std::ostringstream out;
  print_span_table(out, spans);
  const std::string text = out.str();
  EXPECT_NE(text.find("analyze_network"), std::string::npos);
  EXPECT_NE(text.find("path_solve"), std::string::npos);
  EXPECT_NE(text.find("total ms"), std::string::npos);
}

}  // namespace
}  // namespace whart::report
