// JSON export of metrics snapshots and Chrome trace_event span dumps:
// structural well-formedness (checked by a tiny JSON scanner — no JSON
// library is available by design), escaping, and the derived figures.
#include "whart/report/metrics_export.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "whart/common/obs.hpp"

namespace whart::report {
namespace {

using common::obs::FlowRecord;
using common::obs::HistogramSnapshot;
using common::obs::MetricsSnapshot;
using common::obs::SpanAggregate;
using common::obs::SpanRecord;
using common::obs::TimedMetricsSnapshot;

/// Minimal structural JSON validator: tracks bracket/brace nesting and
/// string/escape state.  Catches unbalanced structure, raw control
/// characters and bare inf/nan tokens — the failure modes a
/// hand-written serializer can actually produce.
bool json_well_formed(const std::string& text) {
  std::vector<char> stack;
  bool in_string = false;
  bool escaped = false;
  for (const char c : text) {
    if (in_string) {
      if (escaped)
        escaped = false;
      else if (c == '\\')
        escaped = true;
      else if (c == '"')
        in_string = false;
      else if (static_cast<unsigned char>(c) < 0x20)
        return false;  // raw control char inside a string
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': stack.push_back('}'); break;
      case '[': stack.push_back(']'); break;
      case '}':
      case ']':
        if (stack.empty() || stack.back() != c) return false;
        stack.pop_back();
        break;
      default: break;
    }
  }
  if (in_string || !stack.empty()) return false;
  if (text.find("inf") != std::string::npos) return false;
  if (text.find("nan") != std::string::npos) return false;
  return true;
}

MetricsSnapshot sample_snapshot() {
  MetricsSnapshot snapshot;
  snapshot.counters["hart.path_cache.hits"] = 30;
  snapshot.counters["hart.path_cache.misses"] = 10;
  snapshot.counters["parallel.tasks"] = 4;
  snapshot.counters["parallel.busy_ns"] = 4000;
  snapshot.gauges["parallel.pool.size"] = 8.0;
  HistogramSnapshot hist;
  hist.count = 2;
  hist.sum = 12;
  hist.min = 4;
  hist.max = 8;
  hist.buckets = {{4, 7, 1}, {8, 15, 1}};
  snapshot.histograms["hart.path_solve.ns"] = hist;
  return snapshot;
}

TEST(MetricsExport, WritesWellFormedJsonWithAllSections) {
  std::ostringstream out;
  write_metrics_json(out, sample_snapshot());
  const std::string text = out.str();
  EXPECT_TRUE(json_well_formed(text)) << text;
  EXPECT_NE(text.find("\"counters\""), std::string::npos);
  EXPECT_NE(text.find("\"gauges\""), std::string::npos);
  EXPECT_NE(text.find("\"histograms\""), std::string::npos);
  EXPECT_NE(text.find("\"derived\""), std::string::npos);
  EXPECT_NE(text.find("\"hart.path_cache.hits\": 30"), std::string::npos);
  EXPECT_NE(text.find("\"hart.path_solve.ns\""), std::string::npos);
}

TEST(MetricsExport, DerivesCacheHitRatioAndMeanTaskTime) {
  std::ostringstream out;
  write_metrics_json(out, sample_snapshot());
  const std::string text = out.str();
  // 30 hits / 40 lookups and 4000 ns / 4 tasks.
  EXPECT_NE(text.find("\"cache_hit_ratio\": 0.75"), std::string::npos);
  EXPECT_NE(text.find("\"parallel_mean_task_ns\": 1000"), std::string::npos);
}

TEST(MetricsExport, EmptySnapshotStillValid) {
  std::ostringstream out;
  write_metrics_json(out, MetricsSnapshot{});
  EXPECT_TRUE(json_well_formed(out.str())) << out.str();
}

TEST(MetricsExport, NonFiniteGaugeBecomesNull) {
  MetricsSnapshot snapshot;
  snapshot.gauges["bad.gauge"] = std::numeric_limits<double>::infinity();
  std::ostringstream out;
  write_metrics_json(out, snapshot);
  const std::string text = out.str();
  EXPECT_TRUE(json_well_formed(text)) << text;
  EXPECT_NE(text.find("\"bad.gauge\": null"), std::string::npos);
}

TEST(MetricsExport, EscapesMetricNames) {
  MetricsSnapshot snapshot;
  snapshot.counters["evil\"name\\with\nnewline"] = 1;
  std::ostringstream out;
  write_metrics_json(out, snapshot);
  EXPECT_TRUE(json_well_formed(out.str())) << out.str();
}

TEST(MetricsExport, SpansSectionPresentOnlyWhenGiven) {
  std::ostringstream without;
  write_metrics_json(without, sample_snapshot());
  EXPECT_EQ(without.str().find("\"spans\""), std::string::npos);

  std::vector<SpanAggregate> spans = {
      {"analyze_network", 2, 5000, 2000, 3000}};
  std::ostringstream with;
  write_metrics_json(with, sample_snapshot(), spans);
  const std::string text = with.str();
  EXPECT_TRUE(json_well_formed(text)) << text;
  EXPECT_NE(text.find("\"spans\""), std::string::npos);
  EXPECT_NE(text.find("\"analyze_network\""), std::string::npos);
  EXPECT_NE(text.find("\"total_ns\": 5000"), std::string::npos);
}

TEST(ChromeTrace, WritesCompleteEventsWithMicrosecondTimes) {
  std::vector<SpanRecord> events;
  events.push_back({"path_solve", 0, 0, 1'000'000, 2'500'000});
  events.push_back({"sim_shard", 3, 1, 2'000'000, 500'000});
  std::ostringstream out;
  write_chrome_trace_json(out, events);
  const std::string text = out.str();
  EXPECT_TRUE(json_well_formed(text)) << text;
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(text.find("\"tid\": 3"), std::string::npos);
  // 1'000'000 ns -> 1000 us.
  EXPECT_NE(text.find("\"ts\": 1000"), std::string::npos);
  EXPECT_NE(text.find("\"dur\": 2500"), std::string::npos);
  EXPECT_NE(text.find("\"depth\": 1"), std::string::npos);
}

TEST(ChromeTrace, EmptyEventListStillValid) {
  std::ostringstream out;
  write_chrome_trace_json(out, {});
  const std::string text = out.str();
  EXPECT_TRUE(json_well_formed(text)) << text;
  EXPECT_NE(text.find("\"traceEvents\": []"), std::string::npos);
}

TEST(MetricsExport, HistogramJsonCarriesQuantileEstimates) {
  std::ostringstream out;
  write_metrics_json(out, sample_snapshot());
  const std::string text = out.str();
  EXPECT_NE(text.find("\"p50\""), std::string::npos);
  EXPECT_NE(text.find("\"p90\""), std::string::npos);
  EXPECT_NE(text.find("\"p99\""), std::string::npos);
}

TEST(ChromeTrace, CausalityIdsAppearOnlyWhenNonzero) {
  std::vector<SpanRecord> events;
  SpanRecord with_ids{"pool_task", 1, 0, 1'000, 2'000};
  with_ids.span_id = 7;
  with_ids.parent_id = 3;
  with_ids.request_id = 2;
  with_ids.flow_id = 5;
  events.push_back(with_ids);
  events.push_back({"legacy_span", 0, 0, 500, 100});
  std::ostringstream out;
  write_chrome_trace_json(out, events);
  const std::string text = out.str();
  EXPECT_TRUE(json_well_formed(text)) << text;
  EXPECT_NE(text.find("\"span\": 7"), std::string::npos);
  EXPECT_NE(text.find("\"parent\": 3"), std::string::npos);
  EXPECT_NE(text.find("\"request\": 2"), std::string::npos);
  EXPECT_NE(text.find("\"flow\": 5"), std::string::npos);
  // The pre-causality record gets no id keys at all.
  EXPECT_EQ(text.find("\"span\": 0"), std::string::npos);
  EXPECT_EQ(text.find("\"parent\": 0"), std::string::npos);
}

TEST(ChromeTrace, FlowEventsPairStartAndFinish) {
  std::vector<FlowRecord> flows;
  flows.push_back({9, 1'000, 0, true});
  flows.push_back({9, 3'000, 2, false});
  std::ostringstream out;
  write_chrome_trace_json(out, {}, flows);
  const std::string text = out.str();
  EXPECT_TRUE(json_well_formed(text)) << text;
  EXPECT_NE(text.find("\"ph\": \"s\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\": \"f\""), std::string::npos);
  EXPECT_NE(text.find("\"id\": 9"), std::string::npos);
  // Chrome requires bp:"e" on the finish side to bind to the enclosing
  // slice; the start side must not carry it.
  const std::size_t f_pos = text.find("\"ph\": \"f\"");
  EXPECT_NE(text.find("\"bp\": \"e\"", f_pos), std::string::npos);
  EXPECT_EQ(text.find("\"bp\": \"e\""), text.find("\"bp\": \"e\"", f_pos));
}

TEST(PrometheusText, RendersCountersGaugesAndSummaries) {
  std::ostringstream out;
  write_prometheus_text(out, sample_snapshot());
  const std::string text = out.str();
  EXPECT_NE(text.find("# TYPE whart_hart_path_cache_hits_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("whart_hart_path_cache_hits_total 30"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE whart_parallel_pool_size gauge"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE whart_hart_path_solve_ns summary"),
            std::string::npos);
  EXPECT_NE(text.find("whart_hart_path_solve_ns{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(text.find("whart_hart_path_solve_ns_sum 12"), std::string::npos);
  EXPECT_NE(text.find("whart_hart_path_solve_ns_count 2"),
            std::string::npos);
}

TEST(PrometheusText, SanitizesNamesAndSpellsNonFinite) {
  MetricsSnapshot snapshot;
  snapshot.gauges["weird-name.with/slash"] =
      std::numeric_limits<double>::infinity();
  std::ostringstream out;
  write_prometheus_text(out, snapshot);
  const std::string text = out.str();
  EXPECT_NE(text.find("whart_weird_name_with_slash +Inf"),
            std::string::npos);
}

TEST(TimeseriesCsv, LongFormatWithHistogramExpansion) {
  TimedMetricsSnapshot sample;
  sample.t_ns = 2'000'000;  // 2 ms
  sample.metrics = sample_snapshot();
  std::ostringstream out;
  write_timeseries_csv(out, {sample});
  const std::string text = out.str();
  EXPECT_NE(text.find("t_ms,name,value\n"), std::string::npos);
  EXPECT_NE(text.find("2.000,parallel.tasks,4"), std::string::npos);
  EXPECT_NE(text.find("2.000,parallel.pool.size,8"), std::string::npos);
  EXPECT_NE(text.find("2.000,hart.path_solve.ns.count,2"),
            std::string::npos);
  EXPECT_NE(text.find("hart.path_solve.ns.p50,"), std::string::npos);
  EXPECT_NE(text.find("hart.path_solve.ns.p99,"), std::string::npos);
}

TEST(TimeseriesCsv, EmptySeriesIsJustTheHeader) {
  std::ostringstream out;
  write_timeseries_csv(out, {});
  EXPECT_EQ(out.str(), "t_ms,name,value\n");
}

TEST(SpanTable, PrintsQuantileColumns) {
  std::vector<SpanAggregate> spans = {
      {"path_solve", 10, 2'000'000, 100'000, 400'000, 150'000, 350'000,
       400'000}};
  std::ostringstream out;
  print_span_table(out, spans);
  const std::string text = out.str();
  EXPECT_NE(text.find("p50 ms"), std::string::npos);
  EXPECT_NE(text.find("p99 ms"), std::string::npos);
  EXPECT_NE(text.find("0.150"), std::string::npos);
  EXPECT_NE(text.find("0.400"), std::string::npos);
}

TEST(SpanTable, PrintsOneRowPerSpan) {
  std::vector<SpanAggregate> spans = {
      {"analyze_network", 1, 4'000'000, 4'000'000, 4'000'000},
      {"path_solve", 10, 2'000'000, 100'000, 400'000}};
  std::ostringstream out;
  print_span_table(out, spans);
  const std::string text = out.str();
  EXPECT_NE(text.find("analyze_network"), std::string::npos);
  EXPECT_NE(text.find("path_solve"), std::string::npos);
  EXPECT_NE(text.find("total ms"), std::string::npos);
}

}  // namespace
}  // namespace whart::report
