#include "whart/report/table.hpp"

#include <sstream>

#include <gtest/gtest.h>

#include "whart/common/contracts.hpp"

namespace whart::report {
namespace {

TEST(Table, EmptyHeadersThrow) {
  EXPECT_THROW(Table{std::vector<std::string>{}}, precondition_error);
}

TEST(Table, RowWidthMustMatchHeader) {
  Table table({"a", "b"});
  EXPECT_THROW(table.add_row({"only one"}), precondition_error);
  table.add_row({"1", "2"});
  EXPECT_EQ(table.row_count(), 1u);
}

TEST(Table, RendersAlignedColumns) {
  Table table({"name", "value"});
  table.add_row({"x", "1"});
  table.add_row({"longer", "22"});
  const std::string rendered = table.to_string();
  EXPECT_NE(rendered.find("name    value"), std::string::npos);
  EXPECT_NE(rendered.find("longer  22"), std::string::npos);
  EXPECT_NE(rendered.find("-----"), std::string::npos);
}

TEST(Table, FixedFormatting) {
  EXPECT_EQ(Table::fixed(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fixed(3.0, 0), "3");
  EXPECT_EQ(Table::fixed(-1.005, 1), "-1.0");
}

TEST(Table, PercentFormatting) {
  EXPECT_EQ(Table::percent(0.9907), "99.07%");
  EXPECT_EQ(Table::percent(0.5, 0), "50%");
  EXPECT_EQ(Table::percent(1.0, 1), "100.0%");
}

TEST(Table, ScientificFormatting) {
  EXPECT_EQ(Table::scientific(1e-4), "1.00e-04");
  EXPECT_EQ(Table::scientific(9.14e-5, 2), "9.14e-05");
}

TEST(Table, PrintToStream) {
  Table table({"h"});
  table.add_row({"v"});
  std::ostringstream out;
  table.print(out);
  EXPECT_FALSE(out.str().empty());
}

}  // namespace
}  // namespace whart::report
