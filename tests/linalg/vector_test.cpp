#include "whart/linalg/vector.hpp"

#include <gtest/gtest.h>

#include "whart/common/contracts.hpp"

namespace whart::linalg {
namespace {

TEST(Vector, ConstructionForms) {
  EXPECT_TRUE(Vector().empty());
  EXPECT_EQ(Vector(3).size(), 3u);
  EXPECT_DOUBLE_EQ(Vector(3)[1], 0.0);
  EXPECT_DOUBLE_EQ(Vector(2, 7.5)[0], 7.5);
  const Vector v{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(v[2], 3.0);
}

TEST(Vector, AtBoundsChecked) {
  Vector v(2);
  EXPECT_NO_THROW(v.at(1) = 5.0);
  EXPECT_DOUBLE_EQ(v.at(1), 5.0);
  EXPECT_THROW(v.at(2), precondition_error);
}

TEST(Vector, Arithmetic) {
  const Vector a{1.0, 2.0};
  const Vector b{10.0, 20.0};
  const Vector sum = a + b;
  EXPECT_DOUBLE_EQ(sum[0], 11.0);
  EXPECT_DOUBLE_EQ(sum[1], 22.0);
  const Vector diff = b - a;
  EXPECT_DOUBLE_EQ(diff[0], 9.0);
  const Vector scaled = 2.0 * a;
  EXPECT_DOUBLE_EQ(scaled[1], 4.0);
}

TEST(Vector, MismatchedSizesThrow) {
  Vector a(2);
  const Vector b(3);
  EXPECT_THROW(a += b, precondition_error);
  EXPECT_THROW(dot(a, b), precondition_error);
  EXPECT_THROW(max_abs_diff(a, b), precondition_error);
}

TEST(Vector, DotAndNorms) {
  const Vector a{3.0, -4.0};
  EXPECT_DOUBLE_EQ(dot(a, a), 25.0);
  EXPECT_DOUBLE_EQ(norm1(a), 7.0);
  EXPECT_DOUBLE_EQ(norm_inf(a), 4.0);
  EXPECT_DOUBLE_EQ(norm2(a), 5.0);
  EXPECT_DOUBLE_EQ(sum(a), -1.0);
}

TEST(Vector, NormsOfEmptyVector) {
  const Vector v;
  EXPECT_DOUBLE_EQ(norm1(v), 0.0);
  EXPECT_DOUBLE_EQ(norm_inf(v), 0.0);
  EXPECT_DOUBLE_EQ(sum(v), 0.0);
}

TEST(Vector, MaxAbsDiff) {
  const Vector a{1.0, 5.0};
  const Vector b{2.0, 3.0};
  EXPECT_DOUBLE_EQ(max_abs_diff(a, b), 2.0);
}

TEST(Vector, UnitVector) {
  const Vector e = unit(4, 2);
  EXPECT_DOUBLE_EQ(e[2], 1.0);
  EXPECT_DOUBLE_EQ(norm1(e), 1.0);
  EXPECT_THROW(unit(4, 4), precondition_error);
}

TEST(Vector, Equality) {
  EXPECT_EQ((Vector{1.0, 2.0}), (Vector{1.0, 2.0}));
  EXPECT_NE((Vector{1.0, 2.0}), (Vector{1.0, 2.1}));
}

}  // namespace
}  // namespace whart::linalg
