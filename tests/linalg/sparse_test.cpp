#include "whart/linalg/sparse.hpp"

#include <gtest/gtest.h>

#include "whart/common/contracts.hpp"

namespace whart::linalg {
namespace {

TEST(Csr, EmptyMatrix) {
  const CsrMatrix m(3, 3, {});
  EXPECT_EQ(m.nonzeros(), 0u);
  EXPECT_DOUBLE_EQ(m.at(1, 1), 0.0);
  EXPECT_DOUBLE_EQ(m.row_sum(0), 0.0);
}

TEST(Csr, StoresAndLooksUpEntries) {
  const CsrMatrix m(2, 3, {{0, 1, 2.0}, {1, 0, 3.0}, {1, 2, 4.0}});
  EXPECT_EQ(m.nonzeros(), 3u);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m.at(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(m.at(1, 2), 4.0);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 0.0);
}

TEST(Csr, DuplicatesAreSummed) {
  const CsrMatrix m(2, 2, {{0, 0, 1.0}, {0, 0, 2.5}});
  EXPECT_EQ(m.nonzeros(), 1u);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 3.5);
}

TEST(Csr, OutOfRangeTripletThrows) {
  EXPECT_THROW(CsrMatrix(2, 2, {{2, 0, 1.0}}), precondition_error);
  EXPECT_THROW(CsrMatrix(2, 2, {{0, 2, 1.0}}), precondition_error);
}

TEST(Csr, LeftMultiplyIsDistributionStep) {
  // Two-state chain: stay 0.7 / move 0.3 from state 0; absorbing state 1.
  const CsrMatrix p(2, 2, {{0, 0, 0.7}, {0, 1, 0.3}, {1, 1, 1.0}});
  const Vector initial{1.0, 0.0};
  const Vector next = p.left_multiply(initial);
  EXPECT_DOUBLE_EQ(next[0], 0.7);
  EXPECT_DOUBLE_EQ(next[1], 0.3);
}

TEST(Csr, RightMultiply) {
  const CsrMatrix m(2, 2, {{0, 0, 1.0}, {0, 1, 2.0}, {1, 1, 3.0}});
  const Vector x{1.0, 1.0};
  const Vector y = m.right_multiply(x);
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 3.0);
}

TEST(Csr, MultiplySizeMismatchThrows) {
  const CsrMatrix m(2, 3, {});
  EXPECT_THROW(m.left_multiply(Vector(3)), precondition_error);
  EXPECT_THROW(m.right_multiply(Vector(2)), precondition_error);
}

TEST(Csr, RowSums) {
  const CsrMatrix m(2, 2, {{0, 0, 0.25}, {0, 1, 0.75}, {1, 0, 1.0}});
  EXPECT_DOUBLE_EQ(m.row_sum(0), 1.0);
  EXPECT_DOUBLE_EQ(m.row_sum(1), 1.0);
  EXPECT_THROW((void)m.row_sum(2), precondition_error);
}

TEST(Csr, ForEachInRowVisitsSortedColumns) {
  const CsrMatrix m(1, 5, {{0, 4, 4.0}, {0, 1, 1.0}, {0, 3, 3.0}});
  std::vector<std::size_t> cols;
  m.for_each_in_row(0, [&](std::size_t col, double) { cols.push_back(col); });
  EXPECT_EQ(cols, (std::vector<std::size_t>{1, 3, 4}));
}

}  // namespace
}  // namespace whart::linalg
