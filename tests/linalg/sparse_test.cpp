#include "whart/linalg/sparse.hpp"

#include <gtest/gtest.h>

#include "whart/common/contracts.hpp"
#include "whart/linalg/matrix.hpp"

namespace whart::linalg {
namespace {

TEST(Csr, EmptyMatrix) {
  const CsrMatrix m(3, 3, {});
  EXPECT_EQ(m.nonzeros(), 0u);
  EXPECT_DOUBLE_EQ(m.at(1, 1), 0.0);
  EXPECT_DOUBLE_EQ(m.row_sum(0), 0.0);
}

TEST(Csr, StoresAndLooksUpEntries) {
  const CsrMatrix m(2, 3, {{0, 1, 2.0}, {1, 0, 3.0}, {1, 2, 4.0}});
  EXPECT_EQ(m.nonzeros(), 3u);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m.at(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(m.at(1, 2), 4.0);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 0.0);
}

TEST(Csr, DuplicatesAreSummed) {
  const CsrMatrix m(2, 2, {{0, 0, 1.0}, {0, 0, 2.5}});
  EXPECT_EQ(m.nonzeros(), 1u);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 3.5);
}

TEST(Csr, OutOfRangeTripletThrows) {
  EXPECT_THROW(CsrMatrix(2, 2, {{2, 0, 1.0}}), precondition_error);
  EXPECT_THROW(CsrMatrix(2, 2, {{0, 2, 1.0}}), precondition_error);
}

TEST(Csr, LeftMultiplyIsDistributionStep) {
  // Two-state chain: stay 0.7 / move 0.3 from state 0; absorbing state 1.
  const CsrMatrix p(2, 2, {{0, 0, 0.7}, {0, 1, 0.3}, {1, 1, 1.0}});
  const Vector initial{1.0, 0.0};
  const Vector next = p.left_multiply(initial);
  EXPECT_DOUBLE_EQ(next[0], 0.7);
  EXPECT_DOUBLE_EQ(next[1], 0.3);
}

TEST(Csr, RightMultiply) {
  const CsrMatrix m(2, 2, {{0, 0, 1.0}, {0, 1, 2.0}, {1, 1, 3.0}});
  const Vector x{1.0, 1.0};
  const Vector y = m.right_multiply(x);
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 3.0);
}

TEST(Csr, MultiplySizeMismatchThrows) {
  const CsrMatrix m(2, 3, {});
  EXPECT_THROW(m.left_multiply(Vector(3)), precondition_error);
  EXPECT_THROW(m.right_multiply(Vector(2)), precondition_error);
}

TEST(Csr, RowSums) {
  const CsrMatrix m(2, 2, {{0, 0, 0.25}, {0, 1, 0.75}, {1, 0, 1.0}});
  EXPECT_DOUBLE_EQ(m.row_sum(0), 1.0);
  EXPECT_DOUBLE_EQ(m.row_sum(1), 1.0);
  EXPECT_THROW((void)m.row_sum(2), precondition_error);
}

TEST(Csr, ForEachInRowVisitsSortedColumns) {
  const CsrMatrix m(1, 5, {{0, 4, 4.0}, {0, 1, 1.0}, {0, 3, 3.0}});
  std::vector<std::size_t> cols;
  m.for_each_in_row(0, [&](std::size_t col, double) { cols.push_back(col); });
  EXPECT_EQ(cols, (std::vector<std::size_t>{1, 3, 4}));
}

TEST(Csr, IdentityActsAsNeutralElement) {
  const CsrMatrix i = CsrMatrix::identity(3);
  EXPECT_EQ(i.nonzeros(), 3u);
  const CsrMatrix m(3, 3, {{0, 1, 2.0}, {1, 2, 3.0}, {2, 0, 4.0}});
  const CsrMatrix left = multiply(i, m);
  const CsrMatrix right = multiply(m, i);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(left.at(r, c), m.at(r, c));
      EXPECT_DOUBLE_EQ(right.at(r, c), m.at(r, c));
    }
}

TEST(Csr, MultiplyMatchesDenseArithmetic) {
  const CsrMatrix a(2, 3, {{0, 0, 1.0}, {0, 2, 2.0}, {1, 1, 3.0}});
  const CsrMatrix b(3, 2, {{0, 0, 5.0}, {0, 1, 6.0}, {1, 0, 7.0}, {2, 1, 8.0}});
  const CsrMatrix p = multiply(a, b);
  ASSERT_EQ(p.rows(), 2u);
  ASSERT_EQ(p.cols(), 2u);
  EXPECT_DOUBLE_EQ(p.at(0, 0), 5.0);    // 1*5
  EXPECT_DOUBLE_EQ(p.at(0, 1), 22.0);   // 1*6 + 2*8
  EXPECT_DOUBLE_EQ(p.at(1, 0), 21.0);   // 3*7
  EXPECT_DOUBLE_EQ(p.at(1, 1), 0.0);
}

TEST(Csr, MultiplyDimensionMismatchThrows) {
  const CsrMatrix a(2, 3, {});
  const CsrMatrix b(2, 2, {});
  EXPECT_THROW((void)multiply(a, b), precondition_error);
}

TEST(Csr, MultiplyPreservesEmptyRows) {
  // Row 1 of A is empty; it must stay an empty row of the product, and
  // an all-empty B must produce an all-empty product.
  const CsrMatrix a(3, 3, {{0, 0, 1.0}, {2, 1, 2.0}});
  const CsrMatrix b(3, 3, {{0, 2, 4.0}, {1, 0, 5.0}});
  const CsrMatrix p = multiply(a, b);
  std::size_t row1 = 0;
  p.for_each_in_row(1, [&](std::size_t, double) { ++row1; });
  EXPECT_EQ(row1, 0u);
  EXPECT_DOUBLE_EQ(p.at(0, 2), 4.0);
  EXPECT_DOUBLE_EQ(p.at(2, 0), 10.0);

  const CsrMatrix empty(3, 3, {});
  EXPECT_EQ(multiply(a, empty).nonzeros(), 0u);
  EXPECT_EQ(multiply(empty, b).nonzeros(), 0u);
}

TEST(Csr, ArenaIsReusableAcrossProductsOfDifferentShape) {
  SparseProductArena arena;
  const CsrMatrix a(2, 4, {{0, 3, 1.0}, {1, 0, 2.0}});
  const CsrMatrix b(4, 2, {{3, 1, 5.0}, {0, 0, 6.0}});
  const CsrMatrix first = multiply(a, b, arena);
  EXPECT_DOUBLE_EQ(first.at(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(first.at(1, 0), 12.0);
  // Same arena, larger shapes — the workspace must grow transparently.
  const CsrMatrix c = CsrMatrix::identity(6);
  const CsrMatrix d(6, 6, {{5, 0, 9.0}, {0, 5, 8.0}});
  const CsrMatrix second = multiply(c, d, arena);
  EXPECT_DOUBLE_EQ(second.at(5, 0), 9.0);
  EXPECT_DOUBLE_EQ(second.at(0, 5), 8.0);
  EXPECT_EQ(second.nonzeros(), 2u);
}

TEST(Csr, FromPartsRoundTripsEmptyRows) {
  // Hand-built CSR with rows 0 and 2 empty.
  CsrMatrix m = CsrMatrix::from_parts(3, 2, {0, 0, 2, 2}, {0, 1}, {1.5, 2.5});
  EXPECT_EQ(m.nonzeros(), 2u);
  EXPECT_DOUBLE_EQ(m.at(1, 0), 1.5);
  EXPECT_DOUBLE_EQ(m.at(1, 1), 2.5);
  EXPECT_DOUBLE_EQ(m.row_sum(0), 0.0);
  EXPECT_DOUBLE_EQ(m.row_sum(2), 0.0);
}

TEST(Csr, FromPartsValidatesShape) {
  // row_start[0] != 0.
  EXPECT_THROW((void)CsrMatrix::from_parts(2, 2, {1, 1, 1}, {}, {}),
               precondition_error);
  // row_start not monotone.
  EXPECT_THROW(
      (void)CsrMatrix::from_parts(2, 2, {0, 1, 0}, {0}, {1.0}),
      precondition_error);
  // Final row_start disagrees with the payload length.
  EXPECT_THROW(
      (void)CsrMatrix::from_parts(2, 2, {0, 1, 2}, {0}, {1.0}),
      precondition_error);
  // Column out of range.
  EXPECT_THROW(
      (void)CsrMatrix::from_parts(1, 2, {0, 1}, {2}, {1.0}),
      precondition_error);
  // Columns not strictly increasing within a row.
  EXPECT_THROW(
      (void)CsrMatrix::from_parts(1, 3, {0, 2}, {1, 1}, {1.0, 2.0}),
      precondition_error);
}

TEST(Csr, LeftMultiplyBatchMatchesRowWiseLeftMultiply) {
  const CsrMatrix a(3, 3,
                    {{0, 0, 0.5}, {0, 1, 0.5}, {1, 2, 1.0}, {2, 2, 1.0}});
  // 70 rows exercises several 32-row blocks plus a partial tail block.
  Matrix x(70, 3);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    x(r, r % 3) = 0.25 + 0.5 * static_cast<double>(r) / 70.0;
    x(r, (r + 1) % 3) = 1.0 - x(r, r % 3);
  }
  const Matrix y = left_multiply_batch(x, a);
  ASSERT_EQ(y.rows(), x.rows());
  ASSERT_EQ(y.cols(), 3u);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    Vector row(3);
    for (std::size_t c = 0; c < 3; ++c) row[c] = x(r, c);
    const Vector expect = a.left_multiply(row);
    for (std::size_t c = 0; c < 3; ++c)
      EXPECT_EQ(y(r, c), expect[c]) << "row " << r << " col " << c;
  }
}

}  // namespace
}  // namespace whart::linalg
