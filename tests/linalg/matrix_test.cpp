#include "whart/linalg/matrix.hpp"

#include <gtest/gtest.h>

#include "whart/common/contracts.hpp"

namespace whart::linalg {
namespace {

TEST(Matrix, ConstructionAndAccess) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_FALSE(m.square());
  m(1, 2) = 4.0;
  EXPECT_DOUBLE_EQ(m(1, 2), 4.0);
  EXPECT_THROW(m.at(2, 0), precondition_error);
}

TEST(Matrix, InitializerList) {
  const Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), precondition_error);
}

TEST(Matrix, Identity) {
  const Matrix id = Matrix::identity(3);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j)
      EXPECT_DOUBLE_EQ(id(i, j), i == j ? 1.0 : 0.0);
}

TEST(Matrix, Multiply) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  const Matrix c = multiply(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, MultiplyShapeMismatchThrows) {
  const Matrix a(2, 3);
  const Matrix b(2, 3);
  EXPECT_THROW(multiply(a, b), precondition_error);
}

TEST(Matrix, MatrixVectorProducts) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Vector x{1.0, 1.0};
  const Vector ax = multiply(a, x);
  EXPECT_DOUBLE_EQ(ax[0], 3.0);
  EXPECT_DOUBLE_EQ(ax[1], 7.0);
  const Vector xa = multiply(x, a);
  EXPECT_DOUBLE_EQ(xa[0], 4.0);
  EXPECT_DOUBLE_EQ(xa[1], 6.0);
}

TEST(Matrix, Transpose) {
  const Matrix a{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const Matrix t = transpose(a);
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(Matrix, TransposeIsInvolution) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(transpose(transpose(a)), a);
}

TEST(Matrix, PowerZeroIsIdentity) {
  const Matrix a{{2.0, 0.0}, {0.0, 2.0}};
  EXPECT_EQ(power(a, 0), Matrix::identity(2));
}

TEST(Matrix, PowerMatchesRepeatedMultiplication) {
  const Matrix a{{0.5, 0.5}, {0.25, 0.75}};
  Matrix expected = Matrix::identity(2);
  for (int i = 0; i < 7; ++i) expected = multiply(expected, a);
  EXPECT_LT(max_abs_diff(power(a, 7), expected), 1e-12);
}

TEST(Matrix, PowerOfNonSquareThrows) {
  EXPECT_THROW(power(Matrix(2, 3), 2), precondition_error);
}

TEST(Matrix, AdditionAndScaling) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b = a + a;
  EXPECT_DOUBLE_EQ(b(1, 1), 8.0);
  const Matrix c = b - a;
  EXPECT_EQ(c, a);
  const Matrix d = 3.0 * a;
  EXPECT_DOUBLE_EQ(d(0, 0), 3.0);
}

}  // namespace
}  // namespace whart::linalg
