#include "whart/linalg/lu.hpp"

#include <gtest/gtest.h>

#include "whart/common/contracts.hpp"
#include "whart/numeric/rng.hpp"

namespace whart::linalg {
namespace {

TEST(Lu, SolvesSimpleSystem) {
  const Matrix a{{2.0, 1.0}, {1.0, 3.0}};
  const Vector b{3.0, 5.0};
  const Vector x = solve(a, b);
  EXPECT_NEAR(x[0], 0.8, 1e-12);
  EXPECT_NEAR(x[1], 1.4, 1e-12);
}

TEST(Lu, SolveRequiresPivoting) {
  // Zero on the leading diagonal forces a row swap.
  const Matrix a{{0.0, 1.0}, {1.0, 0.0}};
  const Vector b{2.0, 3.0};
  const Vector x = solve(a, b);
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Lu, SingularMatrixThrows) {
  const Matrix a{{1.0, 2.0}, {2.0, 4.0}};
  EXPECT_THROW(LuDecomposition{a}, invariant_error);
}

TEST(Lu, NonSquareThrows) {
  EXPECT_THROW(LuDecomposition{Matrix(2, 3)}, precondition_error);
}

TEST(Lu, Determinant) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_NEAR(LuDecomposition(a).determinant(), -2.0, 1e-12);
  const Matrix swap{{0.0, 1.0}, {1.0, 0.0}};
  EXPECT_NEAR(LuDecomposition(swap).determinant(), -1.0, 1e-12);
}

TEST(Lu, InverseTimesOriginalIsIdentity) {
  const Matrix a{{4.0, 7.0}, {2.0, 6.0}};
  const Matrix inv = inverse(a);
  EXPECT_LT(max_abs_diff(multiply(a, inv), Matrix::identity(2)), 1e-12);
}

TEST(Lu, MatrixRightHandSide) {
  const Matrix a{{2.0, 0.0}, {0.0, 4.0}};
  const Matrix b{{2.0, 4.0}, {8.0, 12.0}};
  const Matrix x = LuDecomposition(a).solve(b);
  EXPECT_DOUBLE_EQ(x(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(x(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(x(1, 0), 2.0);
  EXPECT_DOUBLE_EQ(x(1, 1), 3.0);
}

TEST(Lu, RhsSizeMismatchThrows) {
  const Matrix a{{1.0, 0.0}, {0.0, 1.0}};
  EXPECT_THROW(LuDecomposition(a).solve(Vector(3)), precondition_error);
}

class LuRandomProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LuRandomProperty, ReconstructsRandomSolutions) {
  const std::size_t n = GetParam();
  numeric::Xoshiro256 rng(1000 + n);
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.uniform() - 0.5;
    a(i, i) += static_cast<double>(n);  // diagonally dominant => nonsingular
  }
  Vector x_true(n);
  for (std::size_t i = 0; i < n; ++i) x_true[i] = rng.uniform() * 10.0;
  const Vector b = multiply(a, x_true);
  const Vector x = solve(a, b);
  EXPECT_LT(max_abs_diff(x, x_true), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuRandomProperty,
                         ::testing::Values(1, 2, 3, 5, 10, 25, 50));

}  // namespace
}  // namespace whart::linalg
