#include "whart/linalg/convolution.hpp"

#include <numeric>

#include <gtest/gtest.h>

namespace whart::linalg {
namespace {

TEST(Convolution, EmptyInputsGiveEmptyResult) {
  EXPECT_TRUE(convolve(std::vector<double>{}, std::vector<double>{1.0})
                  .empty());
  EXPECT_TRUE(convolve(std::vector<double>{1.0}, std::vector<double>{})
                  .empty());
}

TEST(Convolution, DeltaIsIdentity) {
  const std::vector<double> delta{1.0};
  const std::vector<double> f{0.2, 0.3, 0.5};
  EXPECT_EQ(convolve(delta, f), f);
  EXPECT_EQ(convolve(f, delta), f);
}

TEST(Convolution, KnownSmallCase) {
  const std::vector<double> a{1.0, 2.0};
  const std::vector<double> b{3.0, 4.0};
  const auto c = convolve(a, b);
  ASSERT_EQ(c.size(), 3u);
  EXPECT_DOUBLE_EQ(c[0], 3.0);
  EXPECT_DOUBLE_EQ(c[1], 10.0);
  EXPECT_DOUBLE_EQ(c[2], 8.0);
}

TEST(Convolution, Commutative) {
  const std::vector<double> a{0.5, 0.25, 0.25};
  const std::vector<double> b{0.1, 0.9};
  EXPECT_EQ(convolve(a, b), convolve(b, a));
}

TEST(Convolution, MassIsProductOfMasses) {
  const std::vector<double> a{0.5, 0.3};
  const std::vector<double> b{0.6, 0.2, 0.1};
  const auto c = convolve(a, b);
  const double mass_a = std::accumulate(a.begin(), a.end(), 0.0);
  const double mass_b = std::accumulate(b.begin(), b.end(), 0.0);
  const double mass_c = std::accumulate(c.begin(), c.end(), 0.0);
  EXPECT_NEAR(mass_c, mass_a * mass_b, 1e-12);
}

TEST(ConvolutionTruncated, TruncatesLongResults) {
  const std::vector<double> a{1.0, 1.0};
  const std::vector<double> b{1.0, 1.0};
  const auto c = convolve_truncated(a, b, 2);
  ASSERT_EQ(c.size(), 2u);
  EXPECT_DOUBLE_EQ(c[0], 1.0);
  EXPECT_DOUBLE_EQ(c[1], 2.0);
}

TEST(ConvolutionTruncated, ZeroPadsShortResults) {
  const std::vector<double> a{1.0};
  const std::vector<double> b{1.0};
  const auto c = convolve_truncated(a, b, 4);
  ASSERT_EQ(c.size(), 4u);
  EXPECT_DOUBLE_EQ(c[0], 1.0);
  EXPECT_DOUBLE_EQ(c[3], 0.0);
}

}  // namespace
}  // namespace whart::linalg
