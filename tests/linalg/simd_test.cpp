// The SIMD lane primitives (DESIGN.md §13): every helper must match the
// plain scalar loop it replaces on every length — in particular lengths
// straddling the hardware vector width, where the remainder loop takes
// over — and must keep per-lane results within rounding of the scalar
// expression (exact when no FMA contraction is involved, as in mul/add).
#include "whart/linalg/simd.hpp"

#include <cmath>
#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

namespace whart::linalg {
namespace {

// Deterministic, irregular test values — no RNG needed.
std::vector<double> pattern(std::size_t n, double phase) {
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = 0.25 + 0.5 * std::sin(0.7 * static_cast<double>(i) + phase);
  return v;
}

// Lengths around multiples of the vector width exercise both the full
// vector body and the scalar remainder of every helper.
std::vector<std::size_t> interesting_lengths() {
  std::vector<std::size_t> lengths = {0, 1, 2, 3, 5, 7, 8, 13, 64};
  lengths.push_back(simd::kWidth);
  if (simd::kWidth > 1) lengths.push_back(simd::kWidth - 1);
  lengths.push_back(simd::kWidth + 1);
  lengths.push_back(3 * simd::kWidth + 1);
  return lengths;
}

TEST(Simd, BackendReportsPositiveWidth) {
  EXPECT_GE(simd::kWidth, 1u);
  EXPECT_NE(simd::backend_name(), nullptr);
}

TEST(Simd, MulMatchesScalarLoopExactly) {
  for (const std::size_t n : interesting_lengths()) {
    SCOPED_TRACE("n=" + std::to_string(n));
    const std::vector<double> a = pattern(n, 0.1);
    const std::vector<double> b = pattern(n, 1.9);
    std::vector<double> out(n, -7.0);
    simd::mul(out.data(), a.data(), b.data(), n);
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(out[i], a[i] * b[i]);
  }
}

TEST(Simd, MulAddMatchesScalarLoop) {
  for (const std::size_t n : interesting_lengths()) {
    SCOPED_TRACE("n=" + std::to_string(n));
    const std::vector<double> a = pattern(n, 0.4);
    const std::vector<double> b = pattern(n, 2.3);
    std::vector<double> acc = pattern(n, 4.0);
    std::vector<double> expected = acc;
    simd::mul_add(acc.data(), a.data(), b.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      // The vector body may contract to a fused multiply-add; allow one
      // ulp-scale difference from the unfused scalar expression.
      expected[i] += a[i] * b[i];
      EXPECT_NEAR(acc[i], expected[i], 1e-15 * (1.0 + std::abs(expected[i])));
    }
  }
}

TEST(Simd, AddMatchesScalarLoopExactly) {
  for (const std::size_t n : interesting_lengths()) {
    SCOPED_TRACE("n=" + std::to_string(n));
    const std::vector<double> a = pattern(n, 0.9);
    std::vector<double> acc = pattern(n, 3.1);
    std::vector<double> expected = acc;
    simd::add(acc.data(), a.data(), n);
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(acc[i], expected[i] + a[i]);
  }
}

TEST(Simd, FillAndCopyCoverEveryElement) {
  for (const std::size_t n : interesting_lengths()) {
    SCOPED_TRACE("n=" + std::to_string(n));
    std::vector<double> out(n, -1.0);
    simd::fill(out.data(), 0.625, n);
    for (const double x : out) EXPECT_EQ(x, 0.625);
    const std::vector<double> a = pattern(n, 5.5);
    simd::copy(out.data(), a.data(), n);
    EXPECT_EQ(out, a);
  }
}

TEST(Simd, HelpersLeaveTailUntouched) {
  // Writing past `n` would corrupt the neighbouring lane block in the
  // SoA layout; guard bytes after the requested length must survive.
  constexpr std::size_t kN = 11;
  const std::vector<double> a = pattern(kN, 0.2);
  const std::vector<double> b = pattern(kN, 1.2);
  std::vector<double> out(kN + 4, 99.0);
  simd::mul(out.data(), a.data(), b.data(), kN);
  simd::mul_add(out.data(), a.data(), b.data(), kN);
  simd::add(out.data(), a.data(), kN);
  simd::fill(out.data(), 1.0, kN);
  simd::copy(out.data(), a.data(), kN);
  for (std::size_t i = kN; i < out.size(); ++i) EXPECT_EQ(out[i], 99.0);
}

}  // namespace
}  // namespace whart::linalg
