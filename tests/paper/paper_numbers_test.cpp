// End-to-end reproduction of every number the paper reports, computed
// through the public API exactly the way the benchmark harness does.
// These tests are the contract for EXPERIMENTS.md.
#include <numeric>

#include <gtest/gtest.h>

#include "whart/hart/analytic.hpp"
#include "whart/hart/composition.hpp"
#include "whart/hart/failure.hpp"
#include "whart/hart/fast_control.hpp"
#include "whart/hart/network_analysis.hpp"
#include "whart/hart/path_analysis.hpp"
#include "whart/link/link_model.hpp"
#include "whart/net/typical_network.hpp"

namespace whart {
namespace {

using hart::PathModel;
using hart::PathModelConfig;
using hart::SteadyStateLinks;
using link::LinkModel;

PathModelConfig example_path(std::uint32_t is) {
  PathModelConfig config;
  config.hop_slots = {3, 6, 7};
  config.superframe = net::SuperframeConfig::symmetric(7);
  config.reporting_interval = is;
  return config;
}

// The paper's availability labels are rounded presentations of the
// availabilities induced by a BER ladder through Eqs. 1-2 (e.g. "0.83" is
// BER = 2e-4 => pi(up) = 0.83034); the unrounded values reproduce the
// paper's digits exactly.
LinkModel paper_link(double label) {
  if (label == 0.693) return LinkModel::from_ber(5e-4);
  if (label == 0.774) return LinkModel::from_ber(3e-4);
  if (label == 0.83) return LinkModel::from_ber(2e-4);
  if (label == 0.903) return LinkModel::from_ber(1e-4);
  if (label == 0.948) return LinkModel::from_ber(5e-5);
  if (label == 0.989) return LinkModel::from_ber(1e-5);
  return LinkModel::from_availability(label);
}

hart::PathMeasures example_measures(double availability,
                                    std::uint32_t is = 4) {
  const PathModel model(example_path(is));
  const SteadyStateLinks links(3, paper_link(availability));
  return compute_path_measures(model, links);
}

// ---------------------------------------------------------------- Fig. 6
TEST(PaperFig6, GoalStateTransientsAtEndOfInterval) {
  const auto m = example_measures(0.75);
  EXPECT_NEAR(m.cycle_probabilities[0], 0.4219, 5e-5);
  EXPECT_NEAR(m.cycle_probabilities[1], 0.3164, 5e-5);
  EXPECT_NEAR(m.cycle_probabilities[2], 0.1582, 5e-5);
  EXPECT_NEAR(m.cycle_probabilities[3], 0.06592, 5e-6);
  EXPECT_NEAR(m.reachability, 0.9624, 5e-5);
}

TEST(PaperFig6, GoalProbabilitiesFillOnlyAtGatewaySlots) {
  const PathModel model(example_path(4));
  const SteadyStateLinks links(3, LinkModel::from_availability(0.75));
  const auto result = model.analyze(links);
  // R7 fills exactly at t = 7 and stays constant.
  EXPECT_DOUBLE_EQ(result.goal_trajectory[6][0], 0.0);
  EXPECT_NEAR(result.goal_trajectory[7][0], 0.4219, 5e-5);
  EXPECT_NEAR(result.goal_trajectory[28][0], 0.4219, 5e-5);
}

// ---------------------------------------------------------------- Fig. 7
TEST(PaperFig7, DelayDistributionOfExamplePath) {
  const auto m = example_measures(0.75);
  EXPECT_EQ(m.delays_ms,
            (std::vector<double>{70.0, 210.0, 350.0, 490.0}));
  EXPECT_NEAR(m.expected_delay_ms, 190.8, 0.05);
  // "It reaches the gateway after 70 ms with probability 0.4219."
  EXPECT_NEAR(m.cycle_probabilities[0], 0.4219, 5e-5);
  // "The control loop could be completed in one cycle with probability
  // 0.4219^2 = 0.178" (symmetric downlink).
  EXPECT_NEAR(m.cycle_probabilities[0] * m.cycle_probabilities[0], 0.178,
              5e-4);
}

// ---------------------------------------------------------------- Fig. 8
TEST(PaperFig8, ReachabilityVsLinkAvailability) {
  EXPECT_NEAR(example_measures(0.693).reachability, 0.924, 5e-4);
  EXPECT_NEAR(example_measures(0.774).reachability, 0.9737, 5e-5);
  EXPECT_NEAR(example_measures(0.83).reachability, 0.9907, 5e-5);
  EXPECT_NEAR(example_measures(0.903).reachability, 0.9989, 5e-5);
  EXPECT_NEAR(example_measures(0.948).reachability, 0.9999, 5e-5);
}

// ---------------------------------------------------------------- Fig. 9
TEST(PaperFig9, BerDrivenDelayDistributions) {
  // The four curves are parameterized by BER; via Eq. 1-2 they give the
  // availabilities 0.774 / 0.830 / 0.903 / 0.948 used above.
  const std::vector<std::pair<double, double>> ber_to_availability{
      {3e-4, 0.774}, {2e-4, 0.830}, {1e-4, 0.903}, {5e-5, 0.948}};
  for (const auto& [ber, pi] : ber_to_availability) {
    const LinkModel link = LinkModel::from_ber(ber);
    EXPECT_NEAR(link.steady_state_availability(), pi, 2.5e-3)
        << "BER=" << ber;
  }
  // Sharper distribution at higher availability: paper labels
  // tau(210 ms) = 0.1332 at pi = 0.948 vs 0.3228 at pi = 0.774... the
  // head probability at 70 ms dominates for good links.
  const auto good = example_measures(0.948);
  const auto bad = example_measures(0.774);
  EXPECT_GT(good.delay_distribution[0], bad.delay_distribution[0]);
  EXPECT_LT(good.delay_distribution[3], bad.delay_distribution[3]);
}

// --------------------------------------------------------------- Table I
TEST(PaperTable1, AvailabilityVsReachabilityAndDelay) {
  const struct {
    double availability;
    double reachability;
    double delay_ms;
  } rows[] = {{0.774, 0.9737, 179.0},
              {0.83, 0.9907, 151.0},
              {0.903, 0.9989, 113.0},
              {0.948, 0.9999, 93.0}};
  for (const auto& row : rows) {
    const auto m = example_measures(row.availability);
    EXPECT_NEAR(m.reachability, row.reachability, 5e-5);
    EXPECT_NEAR(m.expected_delay_ms, row.delay_ms, 2.0)
        << "pi=" << row.availability;
  }
}

// ---------------------------------------------------------------- Fig. 10
TEST(PaperFig10, ReachabilityVsHopCount) {
  const double expected[] = {0.9992, 0.9964, 0.9907, 0.9812};
  for (std::uint32_t hops = 1; hops <= 4; ++hops) {
    PathModelConfig config;
    for (std::uint32_t h = 0; h < hops; ++h)
      config.hop_slots.push_back(h + 1);
    config.superframe = net::SuperframeConfig::symmetric(7);
    config.reporting_interval = 4;
    const PathModel model(config);
    const SteadyStateLinks links(hops, paper_link(0.83));
    const auto m = compute_path_measures(model, links);
    EXPECT_NEAR(m.reachability, expected[hops - 1], 5e-5)
        << hops << " hops";
  }
}

// ---------------------------------------------------------------- Fig. 13
TEST(PaperFig13, NetworkPathReachabilities) {
  const net::TypicalNetwork t =
      net::make_typical_network(paper_link(0.903));
  const auto measures = hart::analyze_network(
      t.network, t.paths, t.eta_a, t.superframe, 4);
  // "With pi(up) = 0.9, messages still reach the gateway with
  // probability R > 0.999 even for three-hop paths" — the three-hop value
  // is 0.9989 (Fig. 8), i.e. the text's 0.999 is a rounding.
  for (const auto& m : measures.per_path)
    EXPECT_GT(m.reachability, 0.9988);
  EXPECT_GT(measures.per_path[0].reachability, 0.9999);

  const net::TypicalNetwork bad =
      net::make_typical_network(paper_link(0.693));
  const auto bad_measures = hart::analyze_network(
      bad.network, bad.paths, bad.eta_a, bad.superframe, 4);
  // "The reachability drops to 0.93" for the three-hop paths.
  EXPECT_NEAR(bad_measures.per_path[9].reachability, 0.924, 1e-3);
  EXPECT_LT(bad_measures.per_path[9].reachability, 0.93);
}

// ---------------------------------------------------------------- Fig. 14
TEST(PaperFig14, OverallDelayShares) {
  const net::TypicalNetwork t =
      net::make_typical_network(LinkModel::from_availability(0.83));
  const auto measures = hart::analyze_network(
      t.network, t.paths, t.eta_a, t.superframe, 4);
  double cumulative = 0.0;
  double by_second_cycle = 0.0;
  double by_third_cycle = 0.0;
  for (const auto& point : measures.overall_delay_distribution) {
    cumulative += point.probability;
    if (point.delay_ms < 800.0) by_second_cycle = cumulative;
    if (point.delay_ms < 1200.0) by_third_cycle = cumulative;
  }
  // Paper: 92.6% by the end of the second cycle, ~98.3% by the third;
  // longest delay 1400 ms.
  EXPECT_NEAR(by_second_cycle, 0.926, 0.005);
  EXPECT_NEAR(by_third_cycle, 0.983, 0.005);
  EXPECT_NEAR(measures.overall_delay_distribution.back().delay_ms, 1390.0,
              1e-9);
}

// ---------------------------------------------------------------- Fig. 15
TEST(PaperFig15, ExpectedDelaysUnderEtaA) {
  const net::TypicalNetwork t =
      net::make_typical_network(LinkModel::from_availability(0.83));
  const auto measures = hart::analyze_network(
      t.network, t.paths, t.eta_a, t.superframe, 4);
  EXPECT_NEAR(measures.mean_delay_ms, 235.0, 1.5);
  EXPECT_NEAR(measures.per_path[9].expected_delay_ms, 421.4, 1.0);
}

// ---------------------------------------------------------------- Fig. 16
TEST(PaperFig16, EtaBEliminatesTheBottleneck) {
  const net::TypicalNetwork t =
      net::make_typical_network(LinkModel::from_availability(0.83));
  const auto b = hart::analyze_network(t.network, t.paths, t.eta_b,
                                       t.superframe, 4);
  // Path 10: 421 -> ~291 ms; new bottleneck is a two-hop path at ~318 ms;
  // overall mean rises to ~272 ms.
  EXPECT_NEAR(b.per_path[9].expected_delay_ms, 291.9, 1.0);
  EXPECT_NEAR(b.per_path[b.bottleneck_by_delay].expected_delay_ms, 318.0,
              1.0);
  EXPECT_EQ(t.paths[b.bottleneck_by_delay].hop_count(), 2u);
  EXPECT_NEAR(b.mean_delay_ms, 272.0, 1.5);
}

// --------------------------------------------------------------- Table II
TEST(PaperTable2, UtilizationVsAvailability) {
  const struct {
    double availability;
    double utilization;
    double tolerance;
  } rows[] = {{0.693, 0.313, 0.002}, {0.774, 0.297, 0.002},
              {0.83, 0.283, 0.002},  {0.903, 0.263, 0.002},
              {0.948, 0.25, 0.002},  {0.989, 0.24, 0.002}};
  for (const auto& row : rows) {
    const net::TypicalNetwork t =
        net::make_typical_network(paper_link(row.availability));
    const auto measures = hart::analyze_network(
        t.network, t.paths, t.eta_a, t.superframe, 4);
    // Table II counts only delivered messages' attempts (see DESIGN.md).
    EXPECT_NEAR(measures.network_utilization_delivered, row.utilization,
                row.tolerance)
        << "pi=" << row.availability;
    // The physically-exact count (including discarded messages' retries)
    // is necessarily at least as large.
    EXPECT_GE(measures.network_utilization,
              measures.network_utilization_delivered);
  }
}

// ---------------------------------------------------------------- Fig. 17
TEST(PaperFig17, LinkRecoveryIsAlmostImmediate) {
  for (double pfl : {0.184, 0.05}) {
    const LinkModel link(pfl, 0.9);
    const double pi = link.steady_state_availability();
    // After a transient error the link is within 1% of steady state in
    // at most 2 slots.
    EXPECT_NEAR(link.up_probability_after(link::LinkState::kDown, 2), pi,
                0.01)
        << "pfl=" << pfl;
  }
}

// -------------------------------------------------------------- Table III
TEST(PaperTable3, OneCycleFailureOfE3) {
  const double ps = paper_link(0.83).steady_state_availability();
  EXPECT_NEAR(hart::cycle_shift_reachability(1, ps, 4, 0), 0.9992, 5e-5);
  EXPECT_NEAR(hart::cycle_shift_reachability(2, ps, 4, 0), 0.9964, 1e-4);
  EXPECT_NEAR(hart::cycle_shift_reachability(3, ps, 4, 0), 0.9907, 1e-4);
  EXPECT_NEAR(hart::cycle_shift_reachability(1, ps, 4, 1), 0.9951, 5e-5);
  EXPECT_NEAR(hart::cycle_shift_reachability(2, ps, 4, 1), 0.9830, 1e-4);
  EXPECT_NEAR(hart::cycle_shift_reachability(3, ps, 4, 1), 0.9628, 1e-4);
}

// ---------------------------------------------------------------- Fig. 18
TEST(PaperFig18, OneHopReachabilityPerReportingInterval) {
  EXPECT_NEAR(hart::one_hop_message_blocks(0.903, 4, 1)[0].reachability,
              0.903, 1e-12);
  EXPECT_NEAR(hart::one_hop_message_blocks(0.903, 4, 2)[0].reachability,
              0.99, 1e-3);
  EXPECT_NEAR(hart::one_hop_message_blocks(0.903, 4, 4)[0].reachability,
              0.999, 1e-3);
}

// ---------------------------------------------------------------- Fig. 19
TEST(PaperFig19, FastControlLowersReachabilityMoreOnLongPaths) {
  for (double pi : {0.693, 0.774, 0.83, 0.903}) {
    const net::TypicalNetwork t =
        net::make_typical_network(LinkModel::from_availability(pi));
    const auto slow = hart::analyze_network(t.network, t.paths, t.eta_a,
                                            t.superframe, 4);
    const auto fast = hart::analyze_network(t.network, t.paths, t.eta_a,
                                            t.superframe, 2);
    for (std::size_t p = 0; p < 10; ++p)
      EXPECT_LT(fast.per_path[p].reachability,
                slow.per_path[p].reachability)
          << "pi=" << pi << " path=" << p + 1;
    // The gap grows with hop count: compare path 1 (1 hop) vs 10 (3).
    const double gap1 = slow.per_path[0].reachability -
                        fast.per_path[0].reachability;
    const double gap10 = slow.per_path[9].reachability -
                         fast.per_path[9].reachability;
    EXPECT_GT(gap10, gap1);
  }
}

// -------------------------------------------------------------- Table IV
TEST(PaperTable4, CompositionPrediction) {
  const auto g1 = hart::analytic_cycle_probabilities(2, 0.83, 4);
  const auto g2 = hart::analytic_cycle_probabilities(1, 0.83, 4);
  const auto alpha =
      hart::predict_route(phy::EbN0::from_linear(7.0), g1, 2, 4);
  const auto beta =
      hart::predict_route(phy::EbN0::from_linear(6.0), g2, 1, 4);
  EXPECT_NEAR(alpha.reachability, 0.9946, 1e-3);
  EXPECT_NEAR(beta.reachability, 0.9945, 1e-3);
  EXPECT_EQ(hart::best_route({alpha, beta}), 1u);
}

// ------------------------------------------------- Section V-B anchors
TEST(PaperSectionVB, BerToAvailabilityPipeline) {
  const LinkModel link = LinkModel::from_ber(1e-4);
  EXPECT_NEAR(link.failure_probability(), 0.0966, 5e-5);
  EXPECT_NEAR(link.steady_state_availability(), 0.9031, 5e-5);
}

}  // namespace
}  // namespace whart
