// Golden regression values for the Section VI typical network re-solved
// under a bursty correlated-channel regime: every link runs a slow
// Gilbert-Elliott chain (p_good->bad = 0.005, p_bad->good = 0.0125 —
// mean bad burst 80 slots, two full superframe cycles) rescaled to the
// paper's pi(up) = 0.83 operating point.  Attempts a cycle apart stay
// correlated, so the expected delivery ratios drop well below the
// i.i.d. goldens of section6_golden_test.cpp (three-hop paths:
// 0.9906 -> 0.9538) — pinning these values guards the channel-enlarged
// solver end to end (enlarged matrix assembly, both transient kernels,
// Eq. 6-11 aggregation over the enlarged chain).
//
// Tolerances as in section6_golden_test.cpp: 1e-9 absolute for
// probabilities, 1e-6 ms for delays.  If a deliberate change moves
// these values, re-derive them with full precision from
// hart::analyze_network (AnalysisOptions::channel set) and update the
// table in the same commit.
#include <gtest/gtest.h>

#include "whart/hart/network_analysis.hpp"
#include "whart/net/typical_network.hpp"
#include "whart/sim/simulator.hpp"

namespace whart {
namespace {

struct PathGolden {
  std::size_t hop_count;
  double reachability;
  double expected_delay_ms;
};

constexpr double kProbabilityTolerance = 1e-9;
constexpr double kDelayToleranceMs = 1e-6;

link::ChannelModel bursty_channel() {
  // Mean bad burst 1 / 0.0125 = 80 slots; error rates 0/1 before the
  // per-link rescale to availability 0.83.
  return link::ChannelModel::gilbert_elliott(0.005, 0.0125, 0.0, 1.0);
}

void expect_golden(const net::Schedule& schedule,
                   const net::TypicalNetwork& t,
                   const std::vector<PathGolden>& golden,
                   double mean_delay_ms, std::size_t bottleneck) {
  for (hart::TransientKernel kernel :
       {hart::TransientKernel::kPerSlot,
        hart::TransientKernel::kSuperframeProduct}) {
    hart::AnalysisOptions options;
    options.kernel = kernel;
    options.channel = bursty_channel();
    const hart::NetworkMeasures m = hart::analyze_network(
        t.network, t.paths, schedule, t.superframe, 4, options);
    ASSERT_EQ(m.per_path.size(), golden.size());
    for (std::size_t p = 0; p < golden.size(); ++p) {
      EXPECT_EQ(t.paths[p].hop_count(), golden[p].hop_count)
          << "path " << p + 1;
      EXPECT_NEAR(m.per_path[p].reachability, golden[p].reachability,
                  kProbabilityTolerance)
          << "path " << p + 1;
      EXPECT_NEAR(m.per_path[p].expected_delay_ms,
                  golden[p].expected_delay_ms, kDelayToleranceMs)
          << "path " << p + 1;
    }
    EXPECT_NEAR(m.mean_delay_ms, mean_delay_ms, kDelayToleranceMs);
    EXPECT_EQ(m.bottleneck_by_delay, bottleneck);
    // More attempts per delivery than i.i.d. (0.28536 / 0.28286): bursts
    // waste retries while every delivery still charges its n + i - 1.
    EXPECT_NEAR(m.network_utilization, 0.29584239293112324,
                kProbabilityTolerance);
    EXPECT_NEAR(m.network_utilization_delivered, 0.28119847563711081,
                kProbabilityTolerance);
  }
}

TEST(PaperSection6Bursty, EtaASchedule) {
  const net::TypicalNetwork t = net::make_typical_network(
      link::LinkModel::from_availability(0.83));
  expect_golden(t.eta_a, t,
                {{1, 0.99069053815610497, 103.32612908107455},
                 {1, 0.99069053815610497, 113.32612908107455},
                 {1, 0.99069053815610497, 123.32612908107455},
                 {2, 0.97520883751623033, 226.89223451969994},
                 {2, 0.97520883751623033, 246.89223451969997},
                 {2, 0.97520883751623033, 266.89223451969997},
                 {2, 0.97520883751623033, 286.89223451969997},
                 {2, 0.97520883751623033, 306.89223451969997},
                 {3, 0.95376922190210001, 411.49417168517556},
                 {3, 0.95376922190210001, 441.49417168517562}},
                252.74279032120751, 9);
}

TEST(PaperSection6Bursty, EtaBSchedule) {
  const net::TypicalNetwork t = net::make_typical_network(
      link::LinkModel::from_availability(0.83));
  expect_golden(t.eta_b, t,
                {{1, 0.99069053815610497, 263.32612908107461},
                 {1, 0.99069053815610497, 273.32612908107455},
                 {1, 0.99069053815610497, 283.32612908107455},
                 {2, 0.97520883751623033, 256.89223451969997},
                 {2, 0.97520883751623033, 276.89223451969997},
                 {2, 0.97520883751623033, 296.89223451969991},
                 {2, 0.97520883751623033, 316.89223451969997},
                 {2, 0.97520883751623033, 336.89223451969997},
                 {3, 0.95376922190210001, 281.49417168517562},
                 {3, 0.95376922190210001, 311.49417168517556}},
                289.74279032120751, 7);
}

TEST(PaperSection6Bursty, BurstsStrictlyDegradeTheIidGoldens) {
  // Same marginal availability; the only difference is memory.  Every
  // multi-hop delivery ratio must sit strictly below its i.i.d. golden
  // (0.99916479 / 0.9963919 / 0.9906381) and the mean delay above it.
  const net::TypicalNetwork t = net::make_typical_network(
      link::LinkModel::from_availability(0.83));
  hart::AnalysisOptions options;
  options.channel = bursty_channel();
  const hart::NetworkMeasures bursty = hart::analyze_network(
      t.network, t.paths, t.eta_a, t.superframe, 4, options);
  const hart::NetworkMeasures iid = hart::analyze_network(
      t.network, t.paths, t.eta_a, t.superframe, 4);
  for (std::size_t p = 0; p < t.paths.size(); ++p)
    EXPECT_LT(bursty.per_path[p].reachability,
              iid.per_path[p].reachability - 1e-3)
        << "path " << p + 1;
  EXPECT_GT(bursty.mean_delay_ms, iid.mean_delay_ms + 1.0);
}

TEST(PaperSection6Bursty, SimulatorConfirmsTheBurstyDeliveryRatios) {
  // Cross-validation against the kChannel Monte-Carlo: the pinned
  // analytic delivery ratios — including the mean-burst-80 correlation
  // structure — must sit inside the empirical confidence band.
  const net::TypicalNetwork t = net::make_typical_network(
      link::LinkModel::from_availability(0.83));
  hart::AnalysisOptions options;
  options.channel = bursty_channel();
  const hart::NetworkMeasures model = hart::analyze_network(
      t.network, t.paths, t.eta_a, t.superframe, 4, options);

  sim::SimulatorConfig config;
  config.superframe = t.superframe;
  config.reporting_interval = 4;
  config.intervals = 20000;
  config.seed = 1234;
  config.shards = 4;
  config.regime = sim::LinkRegime::kChannel;
  config.channel = bursty_channel();
  const sim::NetworkSimulator simulator(t.network, t.paths, t.eta_a, config);
  const sim::SimulationReport report = simulator.run();

  for (std::size_t p = 0; p < t.paths.size(); ++p) {
    const auto ci = report.per_path[p].reachability_interval(4.0);
    EXPECT_TRUE(ci.contains(model.per_path[p].reachability))
        << "path " << p + 1 << ": analytic "
        << model.per_path[p].reachability << " not in [" << ci.low << ", "
        << ci.high << "] (empirical "
        << report.per_path[p].reachability() << ")";
  }
}

}  // namespace
}  // namespace whart
