// Golden regression values for the paper's Section VI evaluation: the
// 10-path typical network (hop mix 30% one-hop / 50% two-hop / 20%
// three-hop) under both schedules, eta_a (shortest-paths-first) and
// eta_b (longest-paths-first), at the paper's pi(up) = 0.83 operating
// point.
//
// Unlike tests/paper/paper_numbers_test.cpp — which checks the ROUNDED
// digits the paper prints — these pin the exact values this codebase
// computes, so any numerical drift in the solver pipeline (matrix
// assembly, transient stepping, Eq. 6-11 aggregation) shows up even
// when it stays inside the paper's rounding.
//
// Tolerances: 1e-9 absolute for probabilities and 1e-6 ms for delays
// (both ~1e-9 relative).  That is loose enough for a different
// compiler/FMA contraction to reassociate a few ulps, and tight enough
// that any algorithmic change trips it.  If a deliberate change moves
// these values, re-derive them with full precision from
// hart::analyze_network and update the table in the same commit.
#include <gtest/gtest.h>

#include "whart/hart/network_analysis.hpp"
#include "whart/net/typical_network.hpp"

namespace whart {
namespace {

struct PathGolden {
  std::size_t hop_count;
  double reachability;
  double expected_delay_ms;
};

constexpr double kProbabilityTolerance = 1e-9;
constexpr double kDelayToleranceMs = 1e-6;

void expect_golden_with_kernel(const net::Schedule& schedule,
                               const net::TypicalNetwork& t,
                               const std::vector<PathGolden>& golden,
                               double mean_delay_ms, std::size_t bottleneck,
                               hart::TransientKernel kernel) {
  hart::AnalysisOptions options;
  options.kernel = kernel;
  const hart::NetworkMeasures m = hart::analyze_network(
      t.network, t.paths, schedule, t.superframe, 4, options);
  ASSERT_EQ(m.per_path.size(), golden.size());
  for (std::size_t p = 0; p < golden.size(); ++p) {
    EXPECT_EQ(t.paths[p].hop_count(), golden[p].hop_count) << "path " << p + 1;
    EXPECT_NEAR(m.per_path[p].reachability, golden[p].reachability,
                kProbabilityTolerance)
        << "path " << p + 1;
    EXPECT_NEAR(m.per_path[p].expected_delay_ms, golden[p].expected_delay_ms,
                kDelayToleranceMs)
        << "path " << p + 1;
  }
  // E[Gamma] (Eq. 13) and the slot utilization (Eq. 10-11) are pinned
  // through BOTH transient kernels: the superframe-product collapse must
  // land on the same paper numbers as the per-slot recursion.
  EXPECT_NEAR(m.mean_delay_ms, mean_delay_ms, kDelayToleranceMs);
  EXPECT_EQ(m.bottleneck_by_delay, bottleneck);
  // Utilization is schedule-independent (same attempts, same frame).
  EXPECT_NEAR(m.network_utilization, 0.28535643692500007,
              kProbabilityTolerance);
  EXPECT_NEAR(m.network_utilization_delivered, 0.28286262514650007,
              kProbabilityTolerance);
}

void expect_golden(const net::Schedule& schedule,
                   const net::TypicalNetwork& t,
                   const std::vector<PathGolden>& golden,
                   double mean_delay_ms, std::size_t bottleneck) {
  expect_golden_with_kernel(schedule, t, golden, mean_delay_ms, bottleneck,
                            hart::TransientKernel::kPerSlot);
  expect_golden_with_kernel(schedule, t, golden, mean_delay_ms, bottleneck,
                            hart::TransientKernel::kSuperframeProduct);
}

TEST(PaperSection6Golden, HopMixIs30_50_20) {
  const net::TypicalNetwork t = net::make_typical_network(
      link::LinkModel::from_availability(0.83));
  std::size_t by_hops[4] = {0, 0, 0, 0};
  for (const net::Path& path : t.paths) ++by_hops[path.hop_count()];
  EXPECT_EQ(t.paths.size(), 10u);
  EXPECT_EQ(by_hops[1], 3u);
  EXPECT_EQ(by_hops[2], 5u);
  EXPECT_EQ(by_hops[3], 2u);
}

TEST(PaperSection6Golden, EtaASchedule) {
  const net::TypicalNetwork t = net::make_typical_network(
      link::LinkModel::from_availability(0.83));
  // Per-hop reachabilities depend only on hop count (identical links):
  // 0.99916479 / 0.9963918928 / 0.99063813111.  Under eta_a the
  // three-hop path 10 is the 421.8 ms bottleneck (paper Fig. 15).
  expect_golden(t.eta_a, t,
                {{1, 0.99916479000000002, 90.590257789208223},
                 {1, 0.99916479000000002, 100.59025778920822},
                 {1, 0.99916479000000002, 110.59025778920822},
                 {2, 0.99639189279999996, 208.28954500702474},
                 {2, 0.99639189279999996, 228.28954500702474},
                 {2, 0.99639189279999996, 248.28954500702477},
                 {2, 0.99639189279999996, 268.28954500702474},
                 {2, 0.99639189279999996, 288.28954500702480},
                 {3, 0.99063813111000010, 391.84360443975010},
                 {3, 0.99063813111000010, 421.84360443975015}},
                235.69057072822488, 9);
}

TEST(PaperSection6Golden, EtaBSchedule) {
  const net::TypicalNetwork t = net::make_typical_network(
      link::LinkModel::from_availability(0.83));
  // eta_b trades the one-hop paths' head start for the long paths:
  // path 10 drops to 291.8 ms and the bottleneck moves to the two-hop
  // path 8 at 318.3 ms; the mean rises to 272.7 ms (paper Fig. 16).
  expect_golden(t.eta_b, t,
                {{1, 0.99916479000000002, 250.59025778920821},
                 {1, 0.99916479000000002, 260.59025778920818},
                 {1, 0.99916479000000002, 270.59025778920818},
                 {2, 0.99639189279999996, 238.28954500702480},
                 {2, 0.99639189279999996, 258.28954500702474},
                 {2, 0.99639189279999996, 278.28954500702480},
                 {2, 0.99639189279999996, 298.28954500702480},
                 {2, 0.99639189279999996, 318.28954500702480},
                 {3, 0.99063813111000010, 261.84360443975015},
                 {3, 0.99063813111000010, 291.84360443975015}},
                272.69057072822488, 7);
}

TEST(PaperSection6Golden, SchedulesAgreeOnReachability) {
  // Reachability depends on slot ORDER within a path, not placement:
  // both schedules keep each path's hops in order, so R is identical
  // per path while the delays differ.
  const net::TypicalNetwork t = net::make_typical_network(
      link::LinkModel::from_availability(0.83));
  const auto a = hart::analyze_network(t.network, t.paths, t.eta_a,
                                       t.superframe, 4);
  const auto b = hart::analyze_network(t.network, t.paths, t.eta_b,
                                       t.superframe, 4);
  for (std::size_t p = 0; p < t.paths.size(); ++p)
    EXPECT_NEAR(a.per_path[p].reachability, b.per_path[p].reachability,
                kProbabilityTolerance)
        << "path " << p + 1;
}

}  // namespace
}  // namespace whart
