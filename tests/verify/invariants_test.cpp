#include "whart/verify/invariants.hpp"

#include <gtest/gtest.h>

#include "whart/hart/network_analysis.hpp"
#include "whart/verify/scenario.hpp"

namespace whart::verify {
namespace {

TEST(InvariantChecker, CleanScenariosHaveNoViolations) {
  const ScenarioGenerator generator;
  const InvariantChecker checker;
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    const Scenario scenario = generator.generate(seed);
    for (std::size_t p = 0; p < scenario.path_count(); ++p) {
      const std::vector<InvariantViolation> violations = checker.check(
          scenario.path_config(p), scenario.hop_availabilities(p));
      for (const InvariantViolation& v : violations)
        ADD_FAILURE() << "seed " << seed << " path " << p << ": "
                      << v.invariant << " — " << v.detail;
    }
  }
}

TEST(InvariantChecker, NetworkAggregationHoldsOnFuzzedScenarios) {
  const ScenarioGenerator generator;
  const InvariantChecker checker;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const Scenario scenario = generator.generate(seed);
    if (scenario.has_retry_slots()) continue;
    const BuiltScenario built = build_network(scenario);
    const hart::NetworkMeasures measures = hart::analyze_network(
        built.network, built.paths, built.schedule, scenario.superframe,
        scenario.reporting_interval);
    const std::vector<InvariantViolation> violations =
        checker.check_network(measures);
    for (const InvariantViolation& v : violations)
      ADD_FAILURE() << "seed " << seed << ": " << v.invariant << " — "
                    << v.detail;
  }
}

// Seeded defects: corrupt a NetworkMeasures the way a real aggregation
// bug would and confirm the checker names the broken invariant.
TEST(InvariantChecker, CatchesCorruptedAggregates) {
  const ScenarioGenerator generator;
  const InvariantChecker checker;
  Scenario scenario = generator.generate(3);
  while (scenario.has_retry_slots() || scenario.path_count() < 2)
    scenario = generator.generate(scenario.seed + 1);
  const BuiltScenario built = build_network(scenario);
  hart::NetworkMeasures measures = hart::analyze_network(
      built.network, built.paths, built.schedule, scenario.superframe,
      scenario.reporting_interval);
  ASSERT_TRUE(checker.check_network(measures).empty());

  {
    hart::NetworkMeasures corrupted = measures;
    corrupted.mean_delay_ms *= 1.001;
    const auto violations = checker.check_network(corrupted);
    ASSERT_FALSE(violations.empty());
    EXPECT_EQ(violations.front().invariant, "aggregate-decomposition");
  }
  {
    hart::NetworkMeasures corrupted = measures;
    corrupted.network_utilization += 1e-6;
    EXPECT_FALSE(checker.check_network(corrupted).empty());
  }
  {
    hart::NetworkMeasures corrupted = measures;
    corrupted.per_path[0].utilization += 1e-6;
    EXPECT_FALSE(checker.check_network(corrupted).empty());
  }
}

TEST(InvariantChecker, ToleratesTheDefaultOptions) {
  const InvariantChecker checker;
  EXPECT_EQ(checker.options().row_sum_tolerance, 1e-12);
  EXPECT_EQ(checker.options().mass_tolerance, 1e-12);
}

}  // namespace
}  // namespace whart::verify
