#include "whart/verify/bounds.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "whart/common/contracts.hpp"

namespace whart::verify {
namespace {

TEST(InverseNormalCdf, MatchesTabulatedQuantiles) {
  // Classic z-table values.
  EXPECT_NEAR(inverse_normal_cdf(0.5), 0.0, 1e-12);
  EXPECT_NEAR(inverse_normal_cdf(0.975), 1.959963984540054, 1e-9);
  EXPECT_NEAR(inverse_normal_cdf(0.995), 2.575829303548901, 1e-9);
  EXPECT_NEAR(inverse_normal_cdf(0.84134474606854293), 1.0, 1e-9);
  // Deep tail (the per_check_delta = 1e-9 regime the oracle uses).
  EXPECT_NEAR(inverse_normal_cdf(1e-9), -5.997807015008182, 1e-7);
}

TEST(InverseNormalCdf, IsSymmetricAndMonotone) {
  for (double p : {0.01, 0.2, 0.4}) {
    EXPECT_NEAR(inverse_normal_cdf(p), -inverse_normal_cdf(1.0 - p), 1e-9);
  }
  // Deep in the tail 1 - p itself loses absolute precision (the quantile
  // slope is ~1/phi(z) ~ 1e7 at p = 1e-8), so only a looser symmetry is
  // representable in double at all.
  for (double p : {1e-8, 1e-4}) {
    EXPECT_NEAR(inverse_normal_cdf(p), -inverse_normal_cdf(1.0 - p), 1e-7);
  }
  double previous = inverse_normal_cdf(1e-10);
  for (double p = 0.05; p < 1.0; p += 0.05) {
    const double z = inverse_normal_cdf(p);
    EXPECT_GT(z, previous);
    previous = z;
  }
}

TEST(InverseNormalCdf, RoundTripsThroughTheCdf) {
  for (double p : {0.001, 0.025, 0.31, 0.5, 0.77, 0.999}) {
    const double z = inverse_normal_cdf(p);
    const double back = 0.5 * std::erfc(-z / std::sqrt(2.0));
    EXPECT_NEAR(back, p, 1e-12);
  }
}

TEST(ZForDelta, MatchesTwoSidedTails) {
  EXPECT_NEAR(z_for_delta(0.05), 1.959963984540054, 1e-9);
  EXPECT_NEAR(z_for_delta(0.01), 2.575829303548901, 1e-9);
  // delta = 1e-9 -> roughly six sigma, the oracle's default.
  EXPECT_NEAR(z_for_delta(1e-9), 6.109410204869024, 1e-6);
}

TEST(HoeffdingRadius, MatchesTheFormulaAndScales) {
  const double radius = hoeffding_radius(10000, 0.05);
  EXPECT_NEAR(radius, std::sqrt(std::log(2.0 / 0.05) / (2.0 * 10000)), 1e-15);
  // Quadrupling the sample size halves the radius.
  EXPECT_NEAR(hoeffding_radius(40000, 0.05), radius / 2.0, 1e-12);
  // The radius is linear in the sample range.
  EXPECT_NEAR(hoeffding_radius(10000, 0.05, 7.0), 7.0 * radius, 1e-12);
}

TEST(Bounds, RejectDegenerateInputs) {
  EXPECT_THROW((void)hoeffding_radius(0, 0.05), precondition_error);
  EXPECT_THROW((void)hoeffding_radius(10, 0.0), precondition_error);
  EXPECT_THROW((void)inverse_normal_cdf(0.0), precondition_error);
  EXPECT_THROW((void)inverse_normal_cdf(1.0), precondition_error);
  EXPECT_THROW((void)z_for_delta(1.0), precondition_error);
}

}  // namespace
}  // namespace whart::verify
