#include "whart/verify/runner.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace whart::verify {
namespace {

VerifyConfig small_campaign() {
  VerifyConfig config;
  config.seed = 1;
  config.runs = 40;
  config.oracle.sim_intervals = 1500;
  config.oracle.sim_shards = 2;
  return config;
}

TEST(Runner, CleanCampaignPasses) {
  const VerifyReport report = run_verification(small_campaign());
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.scenarios_run, 40u);
  EXPECT_EQ(report.corpus_replayed, 0u);
  EXPECT_GT(report.scenarios_simulated, 0u);
  EXPECT_GT(report.statistical_checks, 0u);
  EXPECT_EQ(report.invariant_violations, 0u);
  EXPECT_EQ(report.deterministic_misses, 0u);
  EXPECT_EQ(report.ci_bound_misses, 0u);
  EXPECT_TRUE(report.failures.empty());
}

TEST(Runner, IsDeterministicInSeedAndRuns) {
  const VerifyConfig config = small_campaign();
  const VerifyReport a = run_verification(config);
  const VerifyReport b = run_verification(config);
  EXPECT_EQ(a.scenarios_simulated, b.scenarios_simulated);
  EXPECT_EQ(a.statistical_checks, b.statistical_checks);
  EXPECT_EQ(a.failures.size(), b.failures.size());
}

TEST(Runner, InjectedFaultFailsAndShrinks) {
  VerifyConfig config = small_campaign();
  config.runs = 8;
  config.oracle.injection = Injection::kLinkBias;
  const VerifyReport report = run_verification(config);
  ASSERT_FALSE(report.ok());
  EXPECT_GT(report.deterministic_misses, 0u);
  for (const VerifyFailure& failure : report.failures) {
    EXPECT_FALSE(failure.oracle.findings.empty());
    ASSERT_TRUE(failure.shrunk.has_value());
    EXPECT_LE(failure.shrunk->max_hops(), 3u);
    EXPECT_EQ(failure.shrunk->path_count(), 1u);
    // The summary must carry everything needed to reproduce.
    const std::string summary = failure.summary();
    EXPECT_NE(summary.find(std::to_string(failure.seed)), std::string::npos);
    EXPECT_NE(summary.find("shrunk"), std::string::npos);
  }
}

TEST(Runner, NoShrinkLeavesFailuresUnshrunk) {
  VerifyConfig config = small_campaign();
  config.runs = 4;
  config.shrink = false;
  config.oracle.injection = Injection::kLinkBias;
  const VerifyReport report = run_verification(config);
  ASSERT_FALSE(report.ok());
  for (const VerifyFailure& failure : report.failures)
    EXPECT_FALSE(failure.shrunk.has_value());
}

TEST(Runner, CorpusSeedsAreReplayedAndFailuresAppended) {
  const std::string corpus =
      ::testing::TempDir() + "/whart_runner_corpus_test.txt";
  std::remove(corpus.c_str());
  append_corpus(corpus, 11);
  append_corpus(corpus, 12);

  VerifyConfig config = small_campaign();
  config.runs = 5;
  config.corpus_path = corpus;
  const VerifyReport clean = run_verification(config);
  EXPECT_TRUE(clean.ok());
  EXPECT_EQ(clean.corpus_replayed, 2u);
  EXPECT_EQ(clean.scenarios_run, 7u);
  // A clean run leaves the corpus untouched.
  EXPECT_EQ(load_corpus(corpus).size(), 2u);

  // A failing run appends the failing seeds for future replay.
  config.oracle.injection = Injection::kLinkBias;
  const VerifyReport failing = run_verification(config);
  ASSERT_FALSE(failing.ok());
  EXPECT_GT(load_corpus(corpus).size(), 2u);
  std::remove(corpus.c_str());
}

TEST(Runner, CheckScenarioExposesTheSinglePathApi) {
  const Scenario scenario = ScenarioGenerator().generate(2);
  OracleConfig oracle;
  oracle.run_simulation = false;
  const VerifyFailure clean =
      check_scenario(scenario, InvariantOptions{}, oracle);
  EXPECT_FALSE(has_findings(clean));

  oracle.injection = Injection::kDiscardLeak;
  const VerifyFailure leaked =
      check_scenario(scenario, InvariantOptions{}, oracle);
  EXPECT_TRUE(has_findings(leaked));
}

}  // namespace
}  // namespace whart::verify
