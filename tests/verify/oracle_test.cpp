#include "whart/verify/oracle.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "whart/verify/scenario.hpp"

namespace whart::verify {
namespace {

OracleConfig fast_config() {
  OracleConfig config;
  config.sim_intervals = 2000;
  config.sim_shards = 2;
  return config;
}

// A fixed scenario with several cycles and an imperfect link, so every
// injection has mass to corrupt.
Scenario two_hop_scenario() {
  Scenario scenario;
  scenario.seed = 99;
  scenario.superframe = {2, 1};
  scenario.reporting_interval = 3;
  scenario.paths.resize(1);
  scenario.paths[0].hop_slots = {1, 2};
  scenario.paths[0].links = {link::LinkModel(0.2, 0.8),
                             link::LinkModel(0.3, 0.7)};
  scenario.validate();
  return scenario;
}

TEST(Oracle, CleanScenariosProduceNoFindings) {
  const ScenarioGenerator generator;
  const OracleConfig config = fast_config();
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    const Scenario scenario = generator.generate(seed);
    const OracleReport report = cross_validate(scenario, config);
    for (const OracleFinding& finding : report.findings)
      ADD_FAILURE() << "seed " << seed << " path " << finding.path_index
                    << ": " << finding.check << " — " << finding.detail;
    // Retry slots have no net::Schedule encoding, so the simulator leg
    // must be skipped for them and run for everything else.
    EXPECT_EQ(report.simulated, !scenario.has_retry_slots());
    if (report.simulated) {
      EXPECT_GT(report.statistical_checks, 0u);
    }
  }
}

TEST(Oracle, RetryScenarioSkipsTheSimulatorLeg) {
  Scenario scenario = two_hop_scenario();
  scenario.superframe.uplink_slots = 3;
  scenario.paths[0].retry_slots = {3, 0};  // hop 1 retries in slot 3
  scenario.validate();
  const OracleReport report = cross_validate(scenario, fast_config());
  EXPECT_FALSE(report.simulated);
  EXPECT_EQ(report.statistical_checks, 0u);
  EXPECT_TRUE(report.ok());
}

TEST(Oracle, CatchesAnInjectedLinkBias) {
  OracleConfig config = fast_config();
  config.injection = Injection::kLinkBias;
  const OracleReport report = cross_validate(two_hop_scenario(), config);
  ASSERT_FALSE(report.ok());
  bool deterministic = false;
  bool statistical = false;
  for (const OracleFinding& finding : report.findings) {
    deterministic = deterministic || finding.check.starts_with("reference:");
    statistical = statistical || finding.check.starts_with("simulator:");
  }
  // A biased production solver disagrees with BOTH independent legs.
  EXPECT_TRUE(deterministic);
  EXPECT_TRUE(statistical);
}

TEST(Oracle, CatchesAnInjectedDiscardLeak) {
  OracleConfig config = fast_config();
  config.injection = Injection::kDiscardLeak;
  const OracleReport report = cross_validate(two_hop_scenario(), config);
  ASSERT_FALSE(report.ok());
  bool closure = false;
  for (const OracleFinding& finding : report.findings)
    closure = closure || finding.check.starts_with("closure:");
  // Leaked discard mass breaks R + P(discard) = 1 before any
  // cross-solver comparison is even needed.
  EXPECT_TRUE(closure);
}

TEST(Oracle, CatchesAnInjectedCycleShift) {
  OracleConfig config = fast_config();
  config.injection = Injection::kCycleShift;
  // Needs reporting_interval > 1: rotating a single cycle is a no-op.
  const OracleReport report = cross_validate(two_hop_scenario(), config);
  ASSERT_FALSE(report.ok());
  bool cycle_finding = false;
  for (const OracleFinding& finding : report.findings)
    cycle_finding = cycle_finding || finding.check.starts_with("reference:");
  EXPECT_TRUE(cycle_finding);
}

TEST(Oracle, CatchesAnInjectedProductEntry) {
  OracleConfig config = fast_config();
  config.injection = Injection::kProductEntry;
  config.run_simulation = false;
  const OracleReport report = cross_validate(two_hop_scenario(), config);
  ASSERT_FALSE(report.ok());
  bool kernel_finding = false;
  for (const OracleFinding& finding : report.findings) {
    kernel_finding = kernel_finding || finding.check.starts_with("kernel:");
    // The corruption lives in the kernel leg only; the production and
    // reference legs still agree with each other.
    EXPECT_FALSE(finding.check.starts_with("reference:")) << finding.check;
  }
  EXPECT_TRUE(kernel_finding);
}

TEST(Oracle, ProductionInjectionsDoNotTripTheKernelArm) {
  // kLinkBias and kCycleShift corrupt the production leg; the kernel leg
  // solves the true chain and must keep matching the reference.
  for (const Injection injection :
       {Injection::kLinkBias, Injection::kDiscardLeak,
        Injection::kCycleShift}) {
    OracleConfig config = fast_config();
    config.injection = injection;
    config.run_simulation = false;
    const OracleReport report = cross_validate(two_hop_scenario(), config);
    ASSERT_FALSE(report.ok());
    for (const OracleFinding& finding : report.findings)
      EXPECT_FALSE(finding.check.starts_with("kernel:"))
          << "injection " << static_cast<int>(injection) << " tripped "
          << finding.check;
  }
}

TEST(Oracle, SimulatorLegIsSeededDeterministically) {
  const Scenario scenario = two_hop_scenario();
  const OracleConfig config = fast_config();
  const OracleReport a = cross_validate(scenario, config);
  const OracleReport b = cross_validate(scenario, config);
  EXPECT_EQ(a.findings.size(), b.findings.size());
  EXPECT_EQ(a.statistical_checks, b.statistical_checks);
}

}  // namespace
}  // namespace whart::verify
