#include "whart/verify/reference_solver.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "whart/hart/link_probability.hpp"
#include "whart/hart/path_analysis.hpp"
#include "whart/hart/path_model.hpp"
#include "whart/verify/scenario.hpp"

namespace whart::verify {
namespace {

// Single hop in slot 1 of a 1-slot frame over Is cycles: the chain is a
// textbook geometric distribution, so every output has a closed form we
// can check by hand.
TEST(ReferenceSolver, SingleHopGeometricByHand) {
  hart::PathModelConfig config;
  config.hop_slots = {1};
  config.superframe = {1, 1};
  config.reporting_interval = 4;
  const double p = 0.7;
  const ReferenceResult result = reference_solve(config, {p});

  double reach = 0.0;
  for (std::uint32_t i = 0; i < 4; ++i) {
    const double expected = std::pow(1.0 - p, i) * p;
    EXPECT_NEAR(result.cycle_probabilities[i], expected, 1e-15);
    reach += expected;
  }
  EXPECT_NEAR(result.reachability, reach, 1e-15);
  EXPECT_NEAR(result.discard_probability, std::pow(1.0 - p, 4), 1e-15);
  // One attempt per cycle while undelivered: E = sum_{i<4} P(alive at i).
  double attempts = 0.0;
  for (std::uint32_t i = 0; i < 4; ++i) attempts += std::pow(1.0 - p, i);
  EXPECT_NEAR(result.expected_transmissions, attempts, 1e-15);
  EXPECT_NEAR(result.utilization, attempts / 4.0, 1e-15);
}

TEST(ReferenceSolver, PerfectAndDeadLinks) {
  hart::PathModelConfig config;
  config.hop_slots = {1, 2};
  config.superframe = {2, 2};
  config.reporting_interval = 2;

  const ReferenceResult perfect = reference_solve(config, {1.0, 1.0});
  EXPECT_DOUBLE_EQ(perfect.reachability, 1.0);
  EXPECT_DOUBLE_EQ(perfect.cycle_probabilities[0], 1.0);
  EXPECT_DOUBLE_EQ(perfect.discard_probability, 0.0);
  EXPECT_DOUBLE_EQ(perfect.expected_transmissions, 2.0);

  const ReferenceResult dead = reference_solve(config, {1.0, 0.0});
  EXPECT_DOUBLE_EQ(dead.reachability, 0.0);
  EXPECT_DOUBLE_EQ(dead.discard_probability, 1.0);
  EXPECT_DOUBLE_EQ(dead.expected_delay_ms, 0.0);  // tau is all zeros
}

// The core differential property: on ANY generated scenario the naive
// dense solver and the production sparse solver agree to near machine
// precision, field by field.
TEST(ReferenceSolver, AgreesWithProductionSolverOnFuzzedScenarios) {
  const ScenarioGenerator generator;
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    const Scenario scenario = generator.generate(seed);
    for (std::size_t p = 0; p < scenario.path_count(); ++p) {
      const hart::PathModelConfig config = scenario.path_config(p);
      const std::vector<double> availabilities =
          scenario.hop_availabilities(p);

      const hart::PathModel model(config);
      const hart::SteadyStateLinks links{availabilities};
      const hart::PathMeasures production =
          compute_path_measures(model, links);
      const ReferenceResult reference =
          reference_solve(config, availabilities);

      ASSERT_EQ(production.cycle_probabilities.size(),
                reference.cycle_probabilities.size());
      for (std::size_t i = 0; i < reference.cycle_probabilities.size(); ++i)
        EXPECT_NEAR(production.cycle_probabilities[i],
                    reference.cycle_probabilities[i], 1e-12)
            << "seed " << seed << " path " << p << " cycle " << i;
      EXPECT_NEAR(production.reachability, reference.reachability, 1e-12);
      EXPECT_NEAR(production.expected_delay_ms, reference.expected_delay_ms,
                  1e-9);
      EXPECT_NEAR(production.expected_transmissions,
                  reference.expected_transmissions, 1e-12);
      EXPECT_NEAR(production.utilization, reference.utilization, 1e-12);
      EXPECT_NEAR(production.delay_jitter_ms, reference.delay_jitter_ms,
                  1e-9);
    }
  }
}

// The reference solver enumerates the full rectangle; the production
// model prunes unreachable states.  Same answers, different state
// counts — proves they are not secretly the same algorithm.
TEST(ReferenceSolver, UsesTheFullStateRectangle) {
  hart::PathModelConfig config;
  config.hop_slots = {1, 2, 3};
  config.superframe = {5, 5};
  config.reporting_interval = 2;
  const hart::PathModel model(config);
  const ReferenceResult reference = reference_solve(config, {0.9, 0.9, 0.9});
  EXPECT_GT(reference.state_count, model.state_count());
}

}  // namespace
}  // namespace whart::verify
