// Hand-built boundary scenarios: the degenerate corners most likely to
// produce NaNs, division by zero or off-by-one slot handling.  Each one
// must pass the full invariant library and the three-way oracle —
// simulator leg included — with zero findings.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "whart/verify/invariants.hpp"
#include "whart/verify/oracle.hpp"
#include "whart/verify/reference_solver.hpp"
#include "whart/verify/scenario.hpp"

namespace whart::verify {
namespace {

void expect_clean(const Scenario& scenario, const char* label) {
  scenario.validate();
  const InvariantChecker checker;
  for (std::size_t p = 0; p < scenario.path_count(); ++p) {
    for (const InvariantViolation& v :
         checker.check(scenario.path_config(p), scenario.hop_availabilities(p)))
      ADD_FAILURE() << label << " path " << p << ": " << v.invariant << " — "
                    << v.detail;
  }
  OracleConfig config;
  config.sim_intervals = 2000;
  config.sim_shards = 2;
  const OracleReport report = cross_validate(scenario, config);
  for (const OracleFinding& finding : report.findings)
    ADD_FAILURE() << label << " path " << finding.path_index << ": "
                  << finding.check << " — " << finding.detail;
}

void expect_finite_reference(const Scenario& scenario) {
  for (std::size_t p = 0; p < scenario.path_count(); ++p) {
    const ReferenceResult result = reference_solve(
        scenario.path_config(p), scenario.hop_availabilities(p));
    EXPECT_TRUE(std::isfinite(result.reachability));
    EXPECT_TRUE(std::isfinite(result.discard_probability));
    EXPECT_TRUE(std::isfinite(result.expected_delay_ms));
    EXPECT_TRUE(std::isfinite(result.delay_jitter_ms));
    EXPECT_TRUE(std::isfinite(result.utilization));
    for (const double g : result.cycle_probabilities)
      EXPECT_TRUE(std::isfinite(g));
  }
}

Scenario base_single_hop(double pfl, double prc) {
  Scenario scenario;
  scenario.seed = 1;
  scenario.superframe = {1, 0};
  scenario.reporting_interval = 2;
  scenario.paths.resize(1);
  scenario.paths[0].hop_slots = {1};
  scenario.paths[0].links = {link::LinkModel(pfl, prc)};
  return scenario;
}

TEST(EdgeCases, SingleHopMinimalFrame) {
  // Fup = 1, Fdown = 0: the tightest possible frame.
  Scenario scenario = base_single_hop(0.3, 0.7);
  expect_clean(scenario, "single-hop");
  expect_finite_reference(scenario);
}

TEST(EdgeCases, SingleHopSingleInterval) {
  // Is = 1 on top of Fup = 1: horizon of exactly one slot.
  Scenario scenario = base_single_hop(0.3, 0.7);
  scenario.reporting_interval = 1;
  expect_clean(scenario, "single-hop-Is1");
  expect_finite_reference(scenario);
}

TEST(EdgeCases, TtlOfOneSlot) {
  // TTL = 1: the first uplink transmission fires, everything after is
  // discarded — delivery is possible only in slot 1 of cycle 1.
  Scenario scenario;
  scenario.seed = 2;
  scenario.superframe = {3, 1};
  scenario.reporting_interval = 2;
  scenario.ttl = 1;
  scenario.paths.resize(1);
  scenario.paths[0].hop_slots = {1, 2};
  scenario.paths[0].links = {link::LinkModel(0.2, 0.8),
                             link::LinkModel(0.2, 0.8)};
  expect_clean(scenario, "ttl-1");
  expect_finite_reference(scenario);

  // With 2 hops and 1 surviving slot the message can never arrive.
  const ReferenceResult result = reference_solve(
      scenario.path_config(0), scenario.hop_availabilities(0));
  EXPECT_DOUBLE_EQ(result.reachability, 0.0);
  EXPECT_DOUBLE_EQ(result.discard_probability, 1.0);
}

TEST(EdgeCases, PerfectLinks) {
  // pfl = 0 end to end: reachability 1 in the first cycle.
  Scenario scenario;
  scenario.seed = 3;
  scenario.superframe = {2, 0};
  scenario.reporting_interval = 3;
  scenario.paths.resize(1);
  scenario.paths[0].hop_slots = {1, 2};
  scenario.paths[0].links = {link::LinkModel(0.0, 1.0),
                             link::LinkModel(0.0, 1.0)};
  expect_clean(scenario, "pfl=0");
  const ReferenceResult result = reference_solve(
      scenario.path_config(0), scenario.hop_availabilities(0));
  EXPECT_DOUBLE_EQ(result.reachability, 1.0);
  EXPECT_DOUBLE_EQ(result.cycle_probabilities[0], 1.0);
}

TEST(EdgeCases, DeadLink) {
  // pfl = 1: zero availability; the measures must degrade to zeros, not
  // NaNs (E[tau] divides by R = 0 in a naive implementation).
  Scenario scenario = base_single_hop(1.0, 0.0);
  expect_clean(scenario, "pfl=1");
  expect_finite_reference(scenario);
  const ReferenceResult result = reference_solve(
      scenario.path_config(0), scenario.hop_availabilities(0));
  EXPECT_DOUBLE_EQ(result.reachability, 0.0);
  EXPECT_DOUBLE_EQ(result.discard_probability, 1.0);
  EXPECT_DOUBLE_EQ(result.expected_delay_ms, 0.0);
  EXPECT_DOUBLE_EQ(result.delay_jitter_ms, 0.0);
}

TEST(EdgeCases, NearDeadLink) {
  // pfl -> 1: availability ~1e-3; huge E[N], tiny R — still finite and
  // still within the oracle's bounds.
  Scenario scenario = base_single_hop(0.999, 0.001);
  expect_clean(scenario, "pfl->1");
  expect_finite_reference(scenario);
}

TEST(EdgeCases, TtlEqualToHorizonIsHarmless) {
  // A TTL equal to the full uplink horizon never triggers: identical to
  // no TTL at all.
  Scenario with_ttl = base_single_hop(0.3, 0.7);
  with_ttl.ttl = with_ttl.reporting_interval *
                 with_ttl.superframe.uplink_slots;
  const Scenario without_ttl = base_single_hop(0.3, 0.7);
  const ReferenceResult a = reference_solve(with_ttl.path_config(0),
                                            with_ttl.hop_availabilities(0));
  const ReferenceResult b = reference_solve(
      without_ttl.path_config(0), without_ttl.hop_availabilities(0));
  EXPECT_DOUBLE_EQ(a.reachability, b.reachability);
  EXPECT_DOUBLE_EQ(a.discard_probability, b.discard_probability);
  expect_clean(with_ttl, "ttl=horizon");
}

}  // namespace
}  // namespace whart::verify
