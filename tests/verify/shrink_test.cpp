#include "whart/verify/shrink.hpp"

#include <gtest/gtest.h>

#include "whart/common/contracts.hpp"
#include "whart/verify/oracle.hpp"
#include "whart/verify/runner.hpp"
#include "whart/verify/scenario.hpp"

namespace whart::verify {
namespace {

TEST(Shrink, RequiresAFailingStartingPoint) {
  const Scenario scenario = ScenarioGenerator().generate(1);
  EXPECT_THROW(
      (void)shrink_scenario(scenario, [](const Scenario&) { return false; }),
      precondition_error);
}

// Structural predicate: "has at least 2 hops somewhere" shrinks to
// exactly one path of exactly two hops in a maximally compact frame.
TEST(Shrink, ReachesAStructuralMinimum) {
  const ScenarioGenerator generator;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    const Scenario scenario = generator.generate(seed);
    if (scenario.max_hops() < 2) continue;
    const StillFails predicate = [](const Scenario& s) {
      return s.max_hops() >= 2;
    };
    const ShrinkResult result = shrink_scenario(scenario, predicate);
    EXPECT_TRUE(predicate(result.minimal));
    EXPECT_EQ(result.minimal.path_count(), 1u);
    EXPECT_EQ(result.minimal.max_hops(), 2u);
    EXPECT_EQ(result.minimal.reporting_interval, 1u);
    EXPECT_FALSE(result.minimal.has_retry_slots());
    EXPECT_EQ(result.minimal.superframe.downlink_slots, 0u);
    // Slot compaction: two hops need exactly two uplink slots.
    EXPECT_EQ(result.minimal.superframe.uplink_slots, 2u);
    EXPECT_GT(result.candidates_tried, 0u);
  }
}

// The acceptance-criterion path: an injected transition-matrix-level
// bug (link bias) must shrink to a reproducer with at most 3 hops.
TEST(Shrink, InjectedBugShrinksToAtMostThreeHops) {
  OracleConfig oracle;
  oracle.injection = Injection::kLinkBias;
  oracle.run_simulation = false;  // deterministic predicate
  const InvariantOptions invariants;
  const StillFails predicate = [&](const Scenario& s) {
    return has_findings(check_scenario(s, invariants, oracle));
  };

  const ScenarioGenerator generator;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Scenario scenario = generator.generate(seed);
    if (!predicate(scenario)) continue;  // bias is a no-op on pfl=0 links
    const ShrinkResult result = shrink_scenario(scenario, predicate);
    EXPECT_TRUE(predicate(result.minimal));
    EXPECT_LE(result.minimal.max_hops(), 3u);
    EXPECT_EQ(result.minimal.path_count(), 1u);
  }
}

TEST(Shrink, MinimalScenarioStillValidates) {
  const Scenario scenario = ScenarioGenerator().generate(17);
  const ShrinkResult result =
      shrink_scenario(scenario, [](const Scenario&) { return true; });
  EXPECT_NO_THROW(result.minimal.validate());
  EXPECT_GE(result.candidates_tried, result.steps_taken);
}

}  // namespace
}  // namespace whart::verify
