// The Gilbert-Elliott cross-validation battery (the headline gate of
// the correlated-channel feature): the generator must emit seeded
// channel overlays into the fuzz stream, a 40+-seed corpus of channel
// scenarios must pass the full deterministic oracle (channel-enlarged
// production vs the independent dense channel reference, both kernels),
// a sampled subset must also pass the statistical simulator leg in the
// kChannel regime, and the channel-state-leak injection must be caught
// — a battery that cannot fail verifies nothing.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>

#include "whart/verify/oracle.hpp"
#include "whart/verify/runner.hpp"
#include "whart/verify/scenario.hpp"

namespace whart::verify {
namespace {

GeneratorLimits channel_rich_limits() {
  GeneratorLimits limits;
  limits.channel_probability = 1.0;
  return limits;
}

TEST(ChannelOracle, GeneratorEmitsSeededChannelOverlays) {
  const ScenarioGenerator generator;  // default limits, p = 0.45
  std::size_t with_channel = 0;
  std::set<std::size_t> state_counts;
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    const Scenario scenario = generator.generate(seed);
    if (!scenario.channel.has_value()) continue;
    ++with_channel;
    state_counts.insert(scenario.channel->state_count());
    // Seeded burst parameters stay inside the generator's ranges.
    if (scenario.channel->state_count() == 2) {
      const double burst = scenario.channel->mean_bad_burst_length();
      EXPECT_GE(burst, 1.0 / 0.8 - 1e-12) << "seed " << seed;
      EXPECT_LE(burst, 1.0 / 0.1 + 1e-12) << "seed " << seed;
    }
  }
  // Around 45% of 200 seeds; the exact count is deterministic.
  EXPECT_GT(with_channel, 60u);
  EXPECT_LT(with_channel, 130u);
  // Both channel shapes appear: Gilbert-Elliott and the 3-state chain.
  EXPECT_TRUE(state_counts.count(2) == 1) << "no GE overlay in 200 seeds";
  EXPECT_TRUE(state_counts.count(3) == 1)
      << "no 3-state chain in 200 seeds";
  // Determinism: the overlay is part of the seed's identity.
  EXPECT_EQ(generator.generate(42).to_string(),
            generator.generate(42).to_string());
}

TEST(ChannelOracle, FortySeedGeCorpusPassesTheDeterministicBattery) {
  const ScenarioGenerator generator(channel_rich_limits());
  OracleConfig config;
  config.run_simulation = false;
  std::size_t channel_scenarios = 0;
  for (std::uint64_t seed = 1; channel_scenarios < 40; ++seed) {
    ASSERT_LT(seed, 200u) << "generator stopped emitting overlays";
    const Scenario scenario = generator.generate(seed);
    if (!scenario.channel.has_value()) continue;
    ++channel_scenarios;
    const OracleReport report = cross_validate(scenario, config);
    EXPECT_TRUE(report.ok()) << "seed " << seed << ": "
                             << scenario.to_string() << "\nfirst finding: "
                             << (report.findings.empty()
                                     ? std::string("-")
                                     : report.findings.front().check +
                                           " " +
                                           report.findings.front().detail);
  }
  EXPECT_EQ(channel_scenarios, 40u);
}

TEST(ChannelOracle, SimulatorLegCrossValidatesTheChannelAnalytics) {
  // A smaller simulated sample: every channel scenario without retry
  // slots runs the kChannel Monte-Carlo leg against the channel-enlarged
  // analytics under Wilson/Hoeffding bounds.
  const ScenarioGenerator generator(channel_rich_limits());
  OracleConfig config;
  config.sim_intervals = 3000;
  config.sim_shards = 2;
  std::size_t simulated = 0;
  for (std::uint64_t seed = 1; simulated < 6; ++seed) {
    ASSERT_LT(seed, 100u);
    const Scenario scenario = generator.generate(seed);
    if (!scenario.channel.has_value() || scenario.has_retry_slots())
      continue;
    const OracleReport report = cross_validate(scenario, config);
    if (!report.simulated) continue;
    ++simulated;
    EXPECT_GT(report.statistical_checks, 0u) << "seed " << seed;
    EXPECT_TRUE(report.ok()) << "seed " << seed << ": "
                             << scenario.to_string();
  }
  EXPECT_EQ(simulated, 6u);
}

TEST(ChannelOracle, ChannelStateLeakInjectionIsCaught) {
  // The leak only shows on repeat attempts; the oracle forces a fixed
  // overlay and a multi-cycle interval, so even a seed without its own
  // channel must produce findings.
  const ScenarioGenerator generator;
  OracleConfig config;
  config.run_simulation = false;
  config.injection = Injection::kChannelStateLeak;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const OracleReport report =
        cross_validate(generator.generate(seed), config);
    EXPECT_FALSE(report.ok()) << "seed " << seed
                              << ": channel-state leak went unnoticed";
  }
}

TEST(ChannelOracle, RunnerCarriesChannelScenariosEndToEnd) {
  // The campaign runner over a channel-rich stream: fresh seeds flow
  // through invariants + oracle and come back clean.
  VerifyConfig config;
  config.seed = 1;
  config.runs = 12;
  config.limits = channel_rich_limits();
  config.oracle.run_simulation = false;
  config.threads = 1;
  const VerifyReport report = run_verification(config);
  EXPECT_EQ(report.scenarios_run, 12u);
  EXPECT_TRUE(report.ok()) << (report.failures.empty()
                                   ? std::string("-")
                                   : report.failures.front().summary());
}

}  // namespace
}  // namespace whart::verify
