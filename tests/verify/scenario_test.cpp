#include "whart/verify/scenario.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <string>

#include "whart/common/contracts.hpp"

namespace whart::verify {
namespace {

TEST(ScenarioGenerator, IsDeterministic) {
  const ScenarioGenerator generator;
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    const Scenario a = generator.generate(seed);
    const Scenario b = generator.generate(seed);
    EXPECT_EQ(a.to_string(), b.to_string());
    EXPECT_EQ(a.seed, seed);
    EXPECT_EQ(a.superframe, b.superframe);
    EXPECT_EQ(a.ttl, b.ttl);
  }
}

TEST(ScenarioGenerator, DistinctSeedsDiffer) {
  const ScenarioGenerator generator;
  std::set<std::string> rendered;
  for (std::uint64_t seed = 1; seed <= 50; ++seed)
    rendered.insert(generator.generate(seed).to_string());
  // Collisions are astronomically unlikely; a few identical tiny
  // scenarios would indicate a broken seed expansion.
  EXPECT_GT(rendered.size(), 45u);
}

TEST(ScenarioGenerator, EveryScenarioValidatesAndRespectsLimits) {
  const ScenarioGenerator generator;
  const GeneratorLimits& limits = generator.limits();
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    const Scenario scenario = generator.generate(seed);
    EXPECT_NO_THROW(scenario.validate());
    EXPECT_LE(scenario.path_count(), limits.max_paths);
    EXPECT_LE(scenario.max_hops(), limits.max_hops);
    EXPECT_LE(scenario.reporting_interval, limits.max_reporting_interval);
    if (scenario.ttl.has_value()) {
      EXPECT_GE(*scenario.ttl, 1u);
      EXPECT_LE(*scenario.ttl, scenario.reporting_interval *
                                   scenario.superframe.uplink_slots);
    }
  }
}

TEST(ScenarioGenerator, CoversEdgeRegimes) {
  const ScenarioGenerator generator;
  bool saw_retry = false;
  bool saw_ttl = false;
  bool saw_perfect_link = false;
  bool saw_broken_link = false;
  bool saw_out_of_order = false;
  for (std::uint64_t seed = 1; seed <= 500; ++seed) {
    const Scenario scenario = generator.generate(seed);
    saw_retry = saw_retry || scenario.has_retry_slots();
    saw_ttl = saw_ttl || scenario.ttl.has_value();
    for (std::size_t p = 0; p < scenario.path_count(); ++p) {
      saw_out_of_order = saw_out_of_order || !scenario.slots_sorted(p);
      for (const link::LinkModel& link : scenario.paths[p].links) {
        saw_perfect_link =
            saw_perfect_link || link.failure_probability() == 0.0;
        saw_broken_link = saw_broken_link || link.failure_probability() == 1.0;
      }
    }
  }
  EXPECT_TRUE(saw_retry);
  EXPECT_TRUE(saw_ttl);
  EXPECT_TRUE(saw_perfect_link);
  EXPECT_TRUE(saw_broken_link);
  EXPECT_TRUE(saw_out_of_order);
}

TEST(Scenario, ValidateRejectsSlotCollisions) {
  Scenario scenario;
  scenario.superframe = {4, 0};
  scenario.paths.resize(2);
  scenario.paths[0].hop_slots = {1};
  scenario.paths[0].links = {link::LinkModel(0.1, 0.9)};
  scenario.paths[1].hop_slots = {1};  // collides with path 1
  scenario.paths[1].links = {link::LinkModel(0.1, 0.9)};
  EXPECT_THROW(scenario.validate(), invariant_error);
}

TEST(Scenario, ValidateRejectsOutOfFrameSlots) {
  Scenario scenario;
  scenario.superframe = {2, 0};
  scenario.paths.resize(1);
  scenario.paths[0].hop_slots = {3};
  scenario.paths[0].links = {link::LinkModel(0.1, 0.9)};
  EXPECT_THROW(scenario.validate(), invariant_error);
}

TEST(Scenario, BuildNetworkMatchesPathConfigs) {
  const ScenarioGenerator generator;
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    const Scenario scenario = generator.generate(seed);
    if (scenario.has_retry_slots()) continue;
    const BuiltScenario built = build_network(scenario);
    ASSERT_EQ(built.paths.size(), scenario.path_count());
    for (std::size_t p = 0; p < scenario.path_count(); ++p) {
      // The schedule reproduces each path's hop slots in hop order.
      EXPECT_EQ(built.schedule.path_slots(p).hop_slots,
                scenario.paths[p].hop_slots);
      // Each path's chain ends at the gateway.
      EXPECT_EQ(built.paths[p].nodes().back(), net::kGateway);
      EXPECT_EQ(built.paths[p].hop_count(), scenario.paths[p].hop_count());
    }
    EXPECT_NO_THROW(built.schedule.validate_complete(built.paths));
  }
}

TEST(Scenario, BuildNetworkRejectsRetrySlots) {
  Scenario scenario;
  scenario.superframe = {4, 0};
  scenario.paths.resize(1);
  scenario.paths[0].hop_slots = {1};
  scenario.paths[0].retry_slots = {2};
  scenario.paths[0].links = {link::LinkModel(0.1, 0.9)};
  EXPECT_THROW((void)build_network(scenario), precondition_error);
}

TEST(Corpus, RoundTripsAndDeduplicates) {
  const std::string path =
      ::testing::TempDir() + "/whart_verify_corpus_test.txt";
  std::remove(path.c_str());

  EXPECT_TRUE(load_corpus(path).empty());  // missing file = empty corpus
  append_corpus(path, 42);
  append_corpus(path, 7);
  append_corpus(path, 42);  // duplicate is dropped
  const std::vector<std::uint64_t> seeds = load_corpus(path);
  EXPECT_EQ(seeds, (std::vector<std::uint64_t>{42, 7}));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace whart::verify
