#include "whart/common/parallel.hpp"

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "whart/common/contracts.hpp"

namespace whart::common {
namespace {

/// Scoped WHART_THREADS override (tests run single-process, serially).
class ScopedThreadsEnv {
 public:
  explicit ScopedThreadsEnv(const char* value) {
    const char* old = std::getenv("WHART_THREADS");
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    if (value != nullptr)
      ::setenv("WHART_THREADS", value, 1);
    else
      ::unsetenv("WHART_THREADS");
  }
  ~ScopedThreadsEnv() {
    if (had_old_)
      ::setenv("WHART_THREADS", old_.c_str(), 1);
    else
      ::unsetenv("WHART_THREADS");
  }

 private:
  bool had_old_ = false;
  std::string old_;
};

TEST(ResolveThreadCount, ExplicitRequestWins) {
  const ScopedThreadsEnv env("2");
  EXPECT_EQ(resolve_thread_count(5), 5u);
}

TEST(ResolveThreadCount, ReadsEnvironmentVariable) {
  const ScopedThreadsEnv env("3");
  EXPECT_EQ(resolve_thread_count(0), 3u);
}

TEST(ResolveThreadCount, ZeroEnvironmentClampsToOne) {
  const ScopedThreadsEnv env("0");
  EXPECT_EQ(resolve_thread_count(0), 1u);
}

TEST(ResolveThreadCount, GarbageEnvironmentFallsBackToHardware) {
  const ScopedThreadsEnv env("lots");
  EXPECT_GE(resolve_thread_count(0), 1u);
}

TEST(ResolveThreadCount, UnsetEnvironmentFallsBackToHardware) {
  const ScopedThreadsEnv env(nullptr);
  EXPECT_GE(resolve_thread_count(0), 1u);
}

TEST(ThreadPool, RunsEverySubmittedTask) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);
    for (int i = 0; i < 100; ++i)
      pool.submit([&counter] { counter.fetch_add(1); });
    pool.wait_idle();
    EXPECT_EQ(counter.load(), 100);
  }
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();
}

TEST(ThreadPool, RejectsZeroWorkers) {
  EXPECT_THROW(ThreadPool(0), precondition_error);
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    std::vector<std::atomic<int>> visits(257);
    parallel_for(
        visits.size(), [&](std::size_t i) { visits[i].fetch_add(1); },
        threads);
    for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
  }
}

TEST(ParallelFor, HandlesZeroAndOneItems) {
  int calls = 0;
  parallel_for(0, [&](std::size_t) { ++calls; }, 4);
  EXPECT_EQ(calls, 0);
  parallel_for(1, [&](std::size_t) { ++calls; }, 4);
  EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, PropagatesTheFirstException) {
  EXPECT_THROW(
      parallel_for(
          100,
          [](std::size_t i) {
            if (i == 13) throw std::runtime_error("boom");
          },
          4),
      std::runtime_error);
}

TEST(ParallelFor, SerialFallbackPreservesCallOrder) {
  std::vector<std::size_t> order;
  parallel_for(10, [&](std::size_t i) { order.push_back(i); }, 1);
  std::vector<std::size_t> expected(10);
  std::iota(expected.begin(), expected.end(), std::size_t{0});
  EXPECT_EQ(order, expected);
}

TEST(ParallelMap, ResultsLandByIndex) {
  std::vector<int> items(1000);
  std::iota(items.begin(), items.end(), 0);
  for (unsigned threads : {1u, 3u, 8u}) {
    const std::vector<int> doubled =
        parallel_map(items, [](int v) { return 2 * v; }, threads);
    ASSERT_EQ(doubled.size(), items.size());
    for (std::size_t i = 0; i < items.size(); ++i)
      EXPECT_EQ(doubled[i], 2 * items[i]);
  }
}

TEST(ParallelMap, EmptyInputYieldsEmptyOutput) {
  const std::vector<int> empty;
  EXPECT_TRUE(parallel_map(empty, [](int v) { return v; }, 4).empty());
}

TEST(ParallelMap, MoreThreadsThanItems) {
  const std::vector<int> items{1, 2, 3};
  const std::vector<int> squared =
      parallel_map(items, [](int v) { return v * v; }, 64);
  EXPECT_EQ(squared, (std::vector<int>{1, 4, 9}));
}

}  // namespace
}  // namespace whart::common
