// Cross-thread trace causality: span ids and parent links, request-id
// propagation through ThreadPool tasks, flow begin/end pairing, and the
// epoch-guarded clear() that lets in-flight spans from a previous
// epoch discard themselves instead of corrupting the fresh buffers.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <string_view>
#include <thread>
#include <vector>

#include "whart/common/obs.hpp"
#include "whart/common/parallel.hpp"

namespace whart::common::obs {
namespace {

struct FlagGuard {
  bool metrics = metrics_enabled();
  bool trace = trace_enabled();
  bool events = events_enabled();
  ~FlagGuard() {
    set_metrics_enabled(metrics);
    set_trace_enabled(trace);
    set_events_enabled(events);
  }
};

const SpanRecord* find_span(const std::vector<SpanRecord>& spans,
                            std::string_view name) {
  for (const SpanRecord& s : spans)
    if (std::string_view(s.name) == name) return &s;
  return nullptr;
}

TEST(Causality, NestedSpansLinkParentAndShareNoRequest) {
  FlagGuard guard;
  TraceCollector& collector = TraceCollector::instance();
  collector.clear();
  set_trace_enabled(true);
  {
    WHART_SPAN("test_causality_outer");
    WHART_SPAN("test_causality_inner");
  }
  set_trace_enabled(false);

  const std::vector<SpanRecord> spans = collector.events();
  const SpanRecord* outer = find_span(spans, "test_causality_outer");
  const SpanRecord* inner = find_span(spans, "test_causality_inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_NE(outer->span_id, 0u);
  EXPECT_NE(inner->span_id, 0u);
  EXPECT_NE(outer->span_id, inner->span_id);
  EXPECT_EQ(inner->parent_id, outer->span_id);
  EXPECT_EQ(outer->parent_id, 0u);
  // Plain spans do not fabricate a request id.
  EXPECT_EQ(outer->request_id, 0u);
  EXPECT_EQ(inner->request_id, 0u);
  collector.clear();
}

TEST(Causality, RequestSpanAllocatesIdAndOutermostWins) {
  FlagGuard guard;
  TraceCollector& collector = TraceCollector::instance();
  collector.clear();
  set_trace_enabled(true);
  std::uint64_t outer_id = 0;
  std::uint64_t inner_id = 0;
  {
    ScopedRequestSpan outer("test_request_outer");
    outer_id = outer.request_id();
    {
      ScopedRequestSpan inner("test_request_inner");
      inner_id = inner.request_id();
    }
  }
  set_trace_enabled(false);

  EXPECT_NE(outer_id, 0u);
  // A nested entry point joins the enclosing request.
  EXPECT_EQ(inner_id, outer_id);

  const std::vector<SpanRecord> spans = collector.events();
  const SpanRecord* outer = find_span(spans, "test_request_outer");
  const SpanRecord* inner = find_span(spans, "test_request_inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->request_id, outer_id);
  EXPECT_EQ(inner->request_id, outer_id);
  EXPECT_EQ(inner->parent_id, outer->span_id);
  collector.clear();
}

TEST(Causality, RequestBeginEndReachTheFlightRecorder) {
  FlagGuard guard;
  EventLog& log = EventLog::instance();
  log.clear();
  set_trace_enabled(false);
  set_events_enabled(true);
  std::uint64_t id = 0;
  {
    ScopedRequestSpan request("test_request_events");
    id = request.request_id();
  }
  EXPECT_NE(id, 0u);
  bool saw_begin = false;
  bool saw_end = false;
  for (const EventRecord& e : log.events()) {
    if (e.kind == EventKind::kRequestBegin && e.payload0 == id)
      saw_begin = true;
    if (e.kind == EventKind::kRequestEnd && e.payload0 == id) saw_end = true;
  }
  EXPECT_TRUE(saw_begin);
  EXPECT_TRUE(saw_end);
  log.clear();
}

TEST(Causality, PoolTasksCarryFlowAndRequestAcrossThreads) {
  FlagGuard guard;
  TraceCollector& collector = TraceCollector::instance();
  collector.clear();
  set_trace_enabled(true);

  constexpr std::size_t kTasks = 16;
  std::uint64_t request_id = 0;
  {
    ScopedRequestSpan request("test_request_pool");
    request_id = request.request_id();
    parallel_for(
        kTasks, [](std::size_t) { WHART_SPAN("test_pool_body"); }, 4);
  }
  set_trace_enabled(false);

  const std::vector<SpanRecord> spans = collector.events();
  const std::vector<FlowRecord> flows = collector.flows();

  // Every pool_task span carries a flow id with a begin/end pair, and
  // inherits the submitting request.
  std::size_t pool_tasks = 0;
  for (const SpanRecord& s : spans) {
    if (std::string_view(s.name) != "pool_task") continue;
    ++pool_tasks;
    EXPECT_NE(s.flow_id, 0u);
    EXPECT_EQ(s.request_id, request_id);
    EXPECT_NE(s.parent_id, 0u);
    bool has_begin = false;
    bool has_end = false;
    for (const FlowRecord& f : flows) {
      if (f.flow_id != s.flow_id) continue;
      if (f.begin)
        has_begin = true;
      else
        has_end = true;
    }
    EXPECT_TRUE(has_begin) << "flow " << s.flow_id;
    EXPECT_TRUE(has_end) << "flow " << s.flow_id;
  }
  // parallel_for may run serially when the pool width is 1; with an
  // explicit width of 4 the pool always engages.
  EXPECT_GT(pool_tasks, 0u);

  // The worker-side body spans parent to their pool_task span and keep
  // the request id.
  for (const SpanRecord& s : spans) {
    if (std::string_view(s.name) != "test_pool_body") continue;
    EXPECT_EQ(s.request_id, request_id);
    const auto parent = std::find_if(
        spans.begin(), spans.end(),
        [&](const SpanRecord& p) { return p.span_id == s.parent_id; });
    ASSERT_NE(parent, spans.end());
    EXPECT_EQ(std::string_view(parent->name), "pool_task");
  }
  collector.clear();
}

TEST(Causality, ClearDiscardsSpansFromThePreviousEpoch) {
  FlagGuard guard;
  TraceCollector& collector = TraceCollector::instance();
  collector.clear();
  set_trace_enabled(true);
  {
    WHART_SPAN("test_epoch_stale");
    // The collector is cleared while this span is open: the span was
    // stamped with the previous epoch and must drop itself at close.
    collector.clear();
    WHART_SPAN("test_epoch_fresh_inner");
  }
  {
    WHART_SPAN("test_epoch_fresh");
  }
  set_trace_enabled(false);

  const std::vector<SpanRecord> spans = collector.events();
  EXPECT_EQ(find_span(spans, "test_epoch_stale"), nullptr);
  ASSERT_NE(find_span(spans, "test_epoch_fresh"), nullptr);
  // A span opened after the clear records normally even while a stale
  // span is still on the stack.
  EXPECT_NE(find_span(spans, "test_epoch_fresh_inner"), nullptr);
  collector.clear();
}

// TSan-covered: clear() racing pool workers that are opening/closing
// spans and task links must stay data-race free, and post-clear state
// must be consistent (no stale records, depth balanced).
TEST(Causality, ClearRacingPoolWorkersIsSafe) {
  FlagGuard guard;
  TraceCollector& collector = TraceCollector::instance();
  collector.clear();
  set_trace_enabled(true);

  std::atomic<bool> stop{false};
  std::thread clearer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      collector.clear();
      std::this_thread::yield();
    }
  });
  for (int round = 0; round < 20; ++round) {
    parallel_for(
        64, [](std::size_t) { WHART_SPAN("test_epoch_race"); }, 4);
  }
  stop.store(true, std::memory_order_relaxed);
  clearer.join();
  set_trace_enabled(false);

  // Whatever survived must be well-formed records from the last epoch.
  for (const SpanRecord& s : collector.events()) {
    EXPECT_NE(s.name, nullptr);
    EXPECT_NE(s.span_id, 0u);
  }
  collector.clear();
  EXPECT_TRUE(collector.events().empty());
  EXPECT_TRUE(collector.flows().empty());
}

TEST(Causality, TaskLinkInertWhenTracingDisabled) {
  FlagGuard guard;
  set_trace_enabled(false);
  const TaskLink link = TaskLink::begin();
  EXPECT_FALSE(link.active());
  EXPECT_EQ(link.flow_id(), 0u);
  // A TaskScope over an inert link is a no-op.
  const TaskScope scope(link);
  EXPECT_EQ(current_trace_context().span_id, 0u);
}

}  // namespace
}  // namespace whart::common::obs
