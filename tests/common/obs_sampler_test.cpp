// The continuous metrics surface: the background Sampler's start/stop
// samples, interval ticks, ring capacity bound and monotonic
// timestamps.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "whart/common/obs.hpp"

namespace whart::common::obs {
namespace {

struct FlagGuard {
  bool metrics = metrics_enabled();
  bool trace = trace_enabled();
  bool events = events_enabled();
  ~FlagGuard() {
    set_metrics_enabled(metrics);
    set_trace_enabled(trace);
    set_events_enabled(events);
  }
};

TEST(SamplerTest, ShortRunStillYieldsStartAndStopSamples) {
  FlagGuard guard;
  set_metrics_enabled(true);
  Sampler sampler(std::chrono::milliseconds(10'000));
  sampler.stop();
  const std::vector<TimedMetricsSnapshot> series = sampler.series();
  // One sample at start, one at stop — even though no interval elapsed.
  ASSERT_GE(series.size(), 2u);
  EXPECT_LE(series.front().t_ns, series.back().t_ns);
}

TEST(SamplerTest, TicksAccumulateAndSnapshotsSeeTheRegistry) {
  FlagGuard guard;
  set_metrics_enabled(true);
  Registry::instance().counter("test.obs.sampler.counter").reset();

  Sampler sampler(std::chrono::milliseconds(5));
  WHART_COUNT("test.obs.sampler.counter");
  // Wait for at least one interval tick past the start sample.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (sampler.samples() < 2 && std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  sampler.stop();

  const std::vector<TimedMetricsSnapshot> series = sampler.series();
  ASSERT_GE(series.size(), 2u);
  for (std::size_t i = 1; i < series.size(); ++i)
    EXPECT_GE(series[i].t_ns, series[i - 1].t_ns);
  // The final (stop) sample observes the counter bumped after start.
  const auto& last = series.back().metrics;
  ASSERT_TRUE(last.counters.contains("test.obs.sampler.counter"));
  EXPECT_EQ(last.counters.at("test.obs.sampler.counter"), 1u);
}

TEST(SamplerTest, RingIsBoundedByCapacity) {
  FlagGuard guard;
  set_metrics_enabled(true);
  Sampler sampler(std::chrono::milliseconds(1), /*capacity=*/4);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (sampler.samples() < 10 && std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  sampler.stop();
  EXPECT_LE(sampler.series().size(), 4u);
  EXPECT_GE(sampler.samples(), 10u);
}

TEST(SamplerTest, StopIsIdempotent) {
  FlagGuard guard;
  set_metrics_enabled(true);
  Sampler sampler(std::chrono::milliseconds(50));
  sampler.stop();
  const std::size_t after_first = sampler.series().size();
  sampler.stop();
  EXPECT_EQ(sampler.series().size(), after_first);
}

}  // namespace
}  // namespace whart::common::obs
