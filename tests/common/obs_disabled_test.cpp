// Compile-time kill switch: this translation unit is built with
// WHART_OBS_DISABLED (see tests/CMakeLists.txt), under which every
// instrumentation macro must expand to nothing — in particular the
// macro arguments must still type-check but never be evaluated.
#include <gtest/gtest.h>

#include "whart/common/obs.hpp"

#ifndef WHART_OBS_DISABLED
#error "this test must be compiled with WHART_OBS_DISABLED"
#endif

namespace whart::common::obs {
namespace {

int evaluations = 0;
int count_me() {
  ++evaluations;
  return 1;
}

TEST(ObsDisabled, MacrosCompileToNoOpsAndNeverEvaluateArguments) {
  evaluations = 0;
  WHART_SPAN("disabled_span");
  WHART_TIMER("disabled.timer.ns");
  WHART_COUNT("disabled.counter");
  WHART_COUNT_N("disabled.counter", count_me());
  WHART_GAUGE_SET("disabled.gauge", count_me());
  WHART_GAUGE_ADD("disabled.gauge", count_me());
  WHART_OBSERVE("disabled.hist", count_me());
  WHART_REQUEST_SPAN("disabled_request");
  WHART_EVENT(kGeneric, "disabled.event", count_me(), count_me());
  EXPECT_EQ(evaluations, 0);
}

TEST(ObsDisabled, MacrosAreStatementSafe) {
  // Must behave as single statements in unbraced control flow.
  if (true)
    WHART_COUNT("disabled.branch");
  else
    WHART_COUNT("disabled.other_branch");
  for (int i = 0; i < 2; ++i) WHART_COUNT_N("disabled.loop", i);
  if (true)
    WHART_EVENT(kGeneric, "disabled.branch_event", 1, 2);
  else
    WHART_GAUGE_ADD("disabled.branch_gauge", 1.0);
  SUCCEED();
}

TEST(ObsDisabled, RegistryApiRemainsUsableDirectly) {
  // The classes stay available even when the macros are compiled out —
  // callers holding explicit Counter members (e.g. PathAnalysisCache)
  // keep working.
  Counter c;
  c.add(2);
  EXPECT_EQ(c.value(), 2u);
  Registry::instance().counter("disabled.direct").add(1);
  EXPECT_GE(Registry::instance()
                .snapshot()
                .counters.at("disabled.direct"),
            1u);
}

}  // namespace
}  // namespace whart::common::obs
