// Observability subsystem: metric primitives, the process-wide registry
// (including thread-safety under the pool's fan-out), log-bucketed
// histogram boundaries, trace spans and the runtime enable flags.
#include "whart/common/obs.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "whart/common/parallel.hpp"

namespace whart::common::obs {
namespace {

/// Restores the global enable flags on scope exit so tests compose.
struct FlagGuard {
  bool metrics = metrics_enabled();
  bool trace = trace_enabled();
  bool events = events_enabled();
  ~FlagGuard() {
    set_metrics_enabled(metrics);
    set_trace_enabled(trace);
    set_events_enabled(events);
  }
};

TEST(Counter, AddsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, LastWriteWins) {
  Gauge g;
  g.set(1.5);
  g.set(-2.25);
  EXPECT_EQ(g.value(), -2.25);
}

TEST(Histogram, BucketBoundariesArePowersOfTwo) {
  // Bucket 0 = {0}; bucket i >= 1 = [2^(i-1), 2^i - 1].
  EXPECT_EQ(Histogram::bucket_index(0), 0u);
  EXPECT_EQ(Histogram::bucket_index(1), 1u);
  EXPECT_EQ(Histogram::bucket_index(2), 2u);
  EXPECT_EQ(Histogram::bucket_index(3), 2u);
  EXPECT_EQ(Histogram::bucket_index(4), 3u);
  EXPECT_EQ(Histogram::bucket_index(UINT64_MAX), 64u);
  for (std::size_t i = 1; i < Histogram::kBucketCount; ++i) {
    const std::uint64_t lower = Histogram::bucket_lower_bound(i);
    const std::uint64_t upper = Histogram::bucket_upper_bound(i);
    EXPECT_EQ(lower, std::uint64_t{1} << (i - 1));
    EXPECT_EQ(Histogram::bucket_index(lower), i);
    EXPECT_EQ(Histogram::bucket_index(upper), i);
    if (i + 1 < Histogram::kBucketCount) {
      EXPECT_EQ(upper + 1, Histogram::bucket_lower_bound(i + 1));
    }
  }
  EXPECT_EQ(Histogram::bucket_lower_bound(0), 0u);
  EXPECT_EQ(Histogram::bucket_upper_bound(0), 0u);
  EXPECT_EQ(Histogram::bucket_upper_bound(64), UINT64_MAX);
}

TEST(Histogram, RecordsCountSumMinMax) {
  Histogram h;
  h.record(0);
  h.record(7);
  h.record(1024);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 1031u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 1024u);
  EXPECT_EQ(h.bucket_count(0), 1u);   // the 0
  EXPECT_EQ(h.bucket_count(3), 1u);   // 7 in [4, 7]
  EXPECT_EQ(h.bucket_count(11), 1u);  // 1024 in [1024, 2047]
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(Gauge, AddAccumulatesDeltas) {
  Gauge g;
  g.set(1.0);
  g.add(2.5);
  g.add(-0.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.0);
}

TEST(Gauge, AddIsAtomicUnderContention) {
  Gauge g;
  constexpr int kThreads = 4;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&g] {
      for (int i = 0; i < kIncrements; ++i) g.add(1.0);
      for (int i = 0; i < kIncrements / 2; ++i) g.add(-1.0);
    });
  for (std::thread& t : threads) t.join();
  // Integers this small are exact in a double, so lost updates show up
  // as an exact-count mismatch.
  EXPECT_DOUBLE_EQ(g.value(), kThreads * (kIncrements / 2.0));
}

TEST(HistogramQuantile, ExactWhenOneValuePerBucket) {
  Registry& reg = Registry::instance();
  Histogram& h = reg.histogram("test.obs.quantile.single");
  h.reset();
  h.record(4);
  const HistogramSnapshot snap =
      reg.snapshot().histograms.at("test.obs.quantile.single");
  // A single observation: every quantile collapses to it.
  EXPECT_DOUBLE_EQ(snap.quantile(0.0), 4.0);
  EXPECT_DOUBLE_EQ(snap.quantile(0.5), 4.0);
  EXPECT_DOUBLE_EQ(snap.quantile(1.0), 4.0);
}

TEST(HistogramQuantile, ClampedToObservedRange) {
  Registry& reg = Registry::instance();
  Histogram& h = reg.histogram("test.obs.quantile.clamp");
  h.reset();
  h.record(100);
  h.record(120);
  const HistogramSnapshot snap =
      reg.snapshot().histograms.at("test.obs.quantile.clamp");
  // Both values land in bucket [64, 127]; interpolation must stay
  // inside [min, max], not wander to the bucket boundaries.
  EXPECT_GE(snap.quantile(0.01), 100.0);
  EXPECT_LE(snap.quantile(0.99), 120.0);
  EXPECT_DOUBLE_EQ(snap.quantile(0.0), 100.0);
  EXPECT_DOUBLE_EQ(snap.quantile(1.0), 120.0);
}

TEST(HistogramQuantile, EmptyHistogramIsZero) {
  Registry& reg = Registry::instance();
  reg.histogram("test.obs.quantile.empty").reset();
  const HistogramSnapshot snap =
      reg.snapshot().histograms.at("test.obs.quantile.empty");
  EXPECT_DOUBLE_EQ(snap.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(snap.p99(), 0.0);
}

TEST(HistogramQuantile, GoldenUniformDistribution) {
  Registry& reg = Registry::instance();
  Histogram& h = reg.histogram("test.obs.quantile.golden");
  h.reset();
  // Uniform 1..1000: the true quantile q sits near 1000 * q.  Log
  // buckets blur within a factor of 2, and linear interpolation inside
  // the crossing bucket recovers most of it; assert a generous +-25%
  // relative window plus the hard bucket-boundary bound.
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  const HistogramSnapshot snap =
      reg.snapshot().histograms.at("test.obs.quantile.golden");
  const struct {
    double q;
    double expected;
  } cases[] = {{0.50, 500.0}, {0.90, 900.0}, {0.99, 990.0}};
  for (const auto& c : cases) {
    const double estimate = snap.quantile(c.q);
    EXPECT_GE(estimate, c.expected * 0.75) << "q=" << c.q;
    EXPECT_LE(estimate, c.expected * 1.25) << "q=" << c.q;
  }
  // Monotone in q.
  EXPECT_LE(snap.p50(), snap.p90());
  EXPECT_LE(snap.p90(), snap.p99());
}

TEST(EventLogTest, RecordsAndDrains) {
  FlagGuard guard;
  set_events_enabled(true);
  EventLog& log = EventLog::instance();
  log.clear();
  WHART_EVENT(kCacheHit, "test.obs.events.hit", 7, 9);
  WHART_EVENT(kCacheMiss, "test.obs.events.miss", 1, 0);
  const std::vector<EventRecord> events = log.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, EventKind::kCacheHit);
  EXPECT_EQ(log.name(events[0].name_id), "test.obs.events.hit");
  EXPECT_EQ(events[0].payload0, 7u);
  EXPECT_EQ(events[0].payload1, 9u);
  EXPECT_LE(events[0].ts_ns, events[1].ts_ns);

  std::ostringstream jsonl;
  log.write_jsonl(jsonl);
  const std::string text = jsonl.str();
  EXPECT_NE(text.find("\"kind\": \"cache_hit\""), std::string::npos);
  EXPECT_NE(text.find("\"name\": \"test.obs.events.miss\""),
            std::string::npos);
  log.clear();
  EXPECT_TRUE(log.events().empty());
}

TEST(EventLogTest, DisabledRecordsNothing) {
  FlagGuard guard;
  EventLog& log = EventLog::instance();
  log.clear();
  set_events_enabled(false);
  WHART_EVENT(kGeneric, "test.obs.events.off", 0, 0);
  EXPECT_TRUE(log.events().empty());
}

TEST(EventLogTest, RingOverwritesOldestAndCountsDrops) {
  FlagGuard guard;
  set_events_enabled(true);
  EventLog& log = EventLog::instance();
  log.clear();
  const std::uint64_t dropped_before = log.dropped();
  constexpr std::uint64_t kTotal = 5000;  // well past the ring capacity
  for (std::uint64_t i = 0; i < kTotal; ++i)
    WHART_EVENT(kGeneric, "test.obs.events.flood", i, 0);
  const std::vector<EventRecord> events = log.events();
  ASSERT_FALSE(events.empty());
  EXPECT_LT(events.size(), kTotal);
  EXPECT_GT(log.dropped(), dropped_before);
  // The survivors are the newest records, in order.
  EXPECT_EQ(events.back().payload0, kTotal - 1);
  for (std::size_t i = 1; i < events.size(); ++i)
    EXPECT_EQ(events[i].payload0, events[i - 1].payload0 + 1);
  log.clear();
}

TEST(EventKindNames, AreSnakeCase) {
  EXPECT_STREQ(event_kind_name(EventKind::kGeneric), "generic");
  EXPECT_STREQ(event_kind_name(EventKind::kRequestBegin), "request_begin");
  EXPECT_STREQ(event_kind_name(EventKind::kTaskSubmit), "task_submit");
  EXPECT_STREQ(event_kind_name(EventKind::kContractFailure),
               "contract_failure");
}

TEST(Registry, SameNameSameMetric) {
  Registry& reg = Registry::instance();
  Counter& a = reg.counter("test.obs.same_name");
  Counter& b = reg.counter("test.obs.same_name");
  EXPECT_EQ(&a, &b);
  // A histogram and a counter may share a name (separate namespaces).
  Histogram& h = reg.histogram("test.obs.same_name");
  EXPECT_NE(static_cast<void*>(&h), static_cast<void*>(&a));
}

TEST(Registry, SnapshotSeesRecordedValues) {
  FlagGuard guard;
  set_metrics_enabled(true);
  Registry& reg = Registry::instance();
  reg.counter("test.obs.snapshot.counter").reset();
  reg.counter("test.obs.snapshot.counter").add(5);
  reg.gauge("test.obs.snapshot.gauge").set(2.5);
  reg.histogram("test.obs.snapshot.hist").reset();
  reg.histogram("test.obs.snapshot.hist").record(100);

  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("test.obs.snapshot.counter"), 5u);
  EXPECT_EQ(snap.gauges.at("test.obs.snapshot.gauge"), 2.5);
  const HistogramSnapshot& h = snap.histograms.at("test.obs.snapshot.hist");
  EXPECT_EQ(h.count, 1u);
  EXPECT_EQ(h.sum, 100u);
  EXPECT_DOUBLE_EQ(h.mean(), 100.0);
  ASSERT_EQ(h.buckets.size(), 1u);
  EXPECT_LE(h.buckets[0].lower, 100u);
  EXPECT_GE(h.buckets[0].upper, 100u);
}

TEST(Registry, ReferencesSurviveReset) {
  Registry& reg = Registry::instance();
  Counter& c = reg.counter("test.obs.reset.survivor");
  c.add(3);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);  // zeroed, not dangling
  c.add(1);
  EXPECT_EQ(reg.snapshot().counters.at("test.obs.reset.survivor"), 1u);
}

TEST(Registry, ConcurrentRegistrationAndIncrementUnderParallelFor) {
  FlagGuard guard;
  set_metrics_enabled(true);
  Registry& reg = Registry::instance();
  reg.counter("test.obs.parallel.counter").reset();
  reg.histogram("test.obs.parallel.hist").reset();

  constexpr std::size_t kTasks = 1000;
  parallel_for(
      kTasks,
      [&](std::size_t i) {
        // Mixed first-lookup and hot-path traffic from every worker.
        WHART_COUNT("test.obs.parallel.counter");
        WHART_OBSERVE("test.obs.parallel.hist", i);
        Registry::instance().gauge("test.obs.parallel.gauge").set(
            static_cast<double>(i));
      },
      8);

  EXPECT_EQ(reg.counter("test.obs.parallel.counter").value(), kTasks);
  EXPECT_EQ(reg.histogram("test.obs.parallel.hist").count(), kTasks);
}

TEST(RuntimeFlags, DisabledMetricsRecordNothing) {
  FlagGuard guard;
  Registry& reg = Registry::instance();
  reg.counter("test.obs.flag.counter").reset();
  set_metrics_enabled(false);
  WHART_COUNT("test.obs.flag.counter");
  EXPECT_EQ(reg.counter("test.obs.flag.counter").value(), 0u);
  set_metrics_enabled(true);
  WHART_COUNT("test.obs.flag.counter");
  EXPECT_EQ(reg.counter("test.obs.flag.counter").value(), 1u);
}

TEST(Trace, DisabledByDefaultAndRecordsWhenEnabled) {
  FlagGuard guard;
  TraceCollector& collector = TraceCollector::instance();
  set_trace_enabled(false);
  collector.clear();
  { WHART_SPAN("test_span_off"); }
  EXPECT_TRUE(collector.events().empty());

  set_trace_enabled(true);
  {
    WHART_SPAN("test_span_outer");
    WHART_SPAN("test_span_inner");
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  set_trace_enabled(false);

  const std::vector<SpanRecord> events = collector.events();
  ASSERT_EQ(events.size(), 2u);
  // Sorted by start time: outer opened first.
  EXPECT_STREQ(events[0].name, "test_span_outer");
  EXPECT_EQ(events[0].depth, 0u);
  EXPECT_STREQ(events[1].name, "test_span_inner");
  EXPECT_EQ(events[1].depth, 1u);
  // The inner span nests inside the outer one.
  EXPECT_GE(events[1].start_ns, events[0].start_ns);
  EXPECT_LE(events[1].start_ns + events[1].duration_ns,
            events[0].start_ns + events[0].duration_ns);

  const std::vector<SpanAggregate> aggregates = collector.aggregate();
  ASSERT_EQ(aggregates.size(), 2u);
  for (const SpanAggregate& a : aggregates) {
    EXPECT_EQ(a.count, 1u);
    EXPECT_EQ(a.total_ns, a.min_ns);
    EXPECT_EQ(a.total_ns, a.max_ns);
  }
  collector.clear();
  EXPECT_TRUE(collector.events().empty());
}

TEST(Trace, MergesSpansAcrossPoolThreads) {
  FlagGuard guard;
  TraceCollector& collector = TraceCollector::instance();
  collector.clear();
  set_trace_enabled(true);
  constexpr std::size_t kTasks = 64;
  parallel_for(
      kTasks, [&](std::size_t) { WHART_SPAN("test_span_worker"); }, 4);
  set_trace_enabled(false);

  std::size_t worker_spans = 0;
  for (const SpanRecord& e : collector.events())
    if (std::string_view(e.name) == "test_span_worker") ++worker_spans;
  // parallel_for itself opens a span on the calling thread.
  EXPECT_EQ(worker_spans, kTasks);
  collector.clear();
}

TEST(ScopedTimerTest, RecordsIntoHistogram) {
  Histogram h;
  {
    ScopedTimer timer(&h);
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(h.sum(), 1000u);  // at least 1us of the 100us slept
  ScopedTimer noop(nullptr);  // must be safe
}

// Overhead guard: with metrics runtime-disabled, an instrumented loop
// must cost essentially the same as the identical macro-free loop (the
// macro is one relaxed atomic load).  The bound is deliberately loose
// (3x) so sanitizer/CI jitter cannot fail it; the real regression this
// catches is accidental work (locks, allocation) on the disabled path.
TEST(Overhead, RuntimeDisabledPathIsCheap) {
  FlagGuard guard;
  set_metrics_enabled(false);
  constexpr int kIterations = 20000;

  const auto work = [](int i) {
    double acc = 0.0;
    for (int k = 0; k < 50; ++k)
      acc += std::sin(static_cast<double>(i + k));
    return acc;
  };

  const auto time_loop = [&](bool instrumented) {
    double sink = 0.0;
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kIterations; ++i) {
      if (instrumented) {
        WHART_COUNT("test.obs.overhead.counter");
        WHART_OBSERVE("test.obs.overhead.hist", i);
      }
      sink += work(i);
    }
    const auto elapsed = std::chrono::steady_clock::now() - start;
    EXPECT_NE(sink, 0.0);  // keep the work alive
    return std::chrono::duration<double>(elapsed).count();
  };

  time_loop(false);  // warm up
  const double plain = time_loop(false);
  const double instrumented = time_loop(true);
  EXPECT_LT(instrumented, plain * 3.0 + 1e-3);
}

}  // namespace
}  // namespace whart::common::obs
