#include "whart/common/contracts.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "whart/common/obs.hpp"

namespace whart {
namespace {

TEST(Contracts, PassingChecksAreSilent) {
  EXPECT_NO_THROW(expects(true, "always"));
  EXPECT_NO_THROW(ensures(true, "always"));
  EXPECT_NO_THROW(WHART_EXPECTS(1 + 1 == 2));
  EXPECT_NO_THROW(WHART_ENSURES(2 * 2 == 4));
}

TEST(Contracts, ViolationsThrowTheRightTypes) {
  EXPECT_THROW(expects(false, "cond"), precondition_error);
  EXPECT_THROW(ensures(false, "cond"), invariant_error);
  // precondition_error is an invalid_argument; invariant_error a
  // logic_error — both catchable as std::logic_error.
  EXPECT_THROW(expects(false, "cond"), std::invalid_argument);
  EXPECT_THROW(ensures(false, "cond"), std::logic_error);
}

TEST(Contracts, MessagesNameTheExpressionAndLocation) {
  try {
    expects(false, "x > 0", "x was -3");
    FAIL() << "expected precondition_error";
  } catch (const precondition_error& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("precondition violated"), std::string::npos);
    EXPECT_NE(what.find("(x > 0)"), std::string::npos);
    EXPECT_NE(what.find("x was -3"), std::string::npos);
    EXPECT_NE(what.find("contracts_test.cpp"), std::string::npos);
  }
}

TEST(Contracts, MacrosStringifyTheCondition) {
  try {
    WHART_EXPECTS(1 == 2);
    FAIL() << "expected precondition_error";
  } catch (const precondition_error& error) {
    EXPECT_NE(std::string(error.what()).find("1 == 2"),
              std::string::npos);
  }
  try {
    WHART_ENSURES_MSG(false, "custom detail");
    FAIL() << "expected invariant_error";
  } catch (const invariant_error& error) {
    EXPECT_NE(std::string(error.what()).find("custom detail"),
              std::string::npos);
  }
}

TEST(Contracts, FailureDumpsFlightRecorderContext) {
  namespace obs = common::obs;
  const bool events_before = obs::events_enabled();
  const std::string path_before = obs::contract_dump_path();
  const std::string dump_path =
      testing::TempDir() + "whart_contracts_dump_test.jsonl";
  std::remove(dump_path.c_str());

  obs::set_events_enabled(true);
  obs::EventLog::instance().clear();
  obs::set_contract_dump_path(dump_path);
  WHART_EVENT(kGeneric, "test.contracts.breadcrumb", 41, 42);
  EXPECT_THROW(expects(false, "dump me"), precondition_error);

  obs::set_contract_dump_path(path_before);
  obs::set_events_enabled(events_before);

  std::ifstream file(dump_path);
  ASSERT_TRUE(file.is_open()) << dump_path;
  std::stringstream content;
  content << file.rdbuf();
  const std::string text = content.str();
  // First line names the failure; the rest is the recorder's recent
  // context, which must include the breadcrumb recorded just before.
  EXPECT_NE(text.find("\"kind\": \"contract_failure\""), std::string::npos);
  EXPECT_NE(text.find("dump me"), std::string::npos);
  EXPECT_NE(text.find("test.contracts.breadcrumb"), std::string::npos);
  std::remove(dump_path.c_str());
  obs::EventLog::instance().clear();
}

}  // namespace
}  // namespace whart
