#include "whart/cli/spec_parser.hpp"

#include <gtest/gtest.h>

namespace whart::cli {
namespace {

constexpr const char* kBasicSpec = R"(
# a two-device network
superframe 5 5
interval 2
node n1
node n2
link n1 G avail 0.9
link n2 n1 avail 0.85
)";

TEST(SpecParser, ParsesBasicSpec) {
  const ParsedSpec spec = parse_spec_string(kBasicSpec);
  EXPECT_EQ(spec.network.node_count(), 3u);
  EXPECT_EQ(spec.network.link_count(), 2u);
  EXPECT_EQ(spec.superframe.uplink_slots, 5u);
  EXPECT_EQ(spec.superframe.downlink_slots, 5u);
  EXPECT_EQ(spec.reporting_interval, 2u);
  // Paths derived by routing: n1 -> G and n2 -> n1 -> G.
  ASSERT_EQ(spec.paths.size(), 2u);
  EXPECT_EQ(spec.paths[0].hop_count(), 1u);
  EXPECT_EQ(spec.paths[1].hop_count(), 2u);
}

TEST(SpecParser, DefaultsApplied) {
  const ParsedSpec spec = parse_spec_string(
      "node n1\nlink n1 G avail 0.9\n");
  EXPECT_EQ(spec.reporting_interval, 4u);
  EXPECT_EQ(spec.superframe.uplink_slots, 1u);  // fitted to 1 total hop
  EXPECT_EQ(spec.policy, net::SchedulingPolicy::kShortestPathsFirst);
}

TEST(SpecParser, ExplicitPathPinsItsSourceOthersAreRouted) {
  const ParsedSpec spec = parse_spec_string(R"(
node a
node b
link a G avail 0.9
link b a avail 0.9
link b G avail 0.9
path b a G
)");
  // b is pinned to the 2-hop route even though b -- G exists; a still
  // gets its routed 1-hop path.
  ASSERT_EQ(spec.paths.size(), 2u);
  EXPECT_EQ(spec.paths[0].hop_count(), 2u);
  EXPECT_EQ(spec.paths[0].source(), *spec.network.find_node("b"));
  EXPECT_EQ(spec.paths[1].hop_count(), 1u);
  EXPECT_EQ(spec.paths[1].source(), *spec.network.find_node("a"));
}

TEST(SpecParser, DisconnectedDeviceFails) {
  EXPECT_THROW(parse_spec_string("node a\nnode island\nlink a G avail .9\n"),
               parse_error);
}

TEST(SpecParser, AllLinkForms) {
  const ParsedSpec spec = parse_spec_string(R"(
node a
node b
node c
node d
link a G avail 0.9
link b G pfl 0.1 prc 0.95
link c G ber 1e-4
link d G snr 7.0
)");
  EXPECT_EQ(spec.network.link_count(), 4u);
  const auto b_link = spec.network.link_between(
      *spec.network.find_node("b"), net::kGateway);
  EXPECT_NEAR(spec.network.link(*b_link).model.failure_probability(), 0.1,
              1e-12);
  const auto c_link = spec.network.link_between(
      *spec.network.find_node("c"), net::kGateway);
  EXPECT_NEAR(spec.network.link(*c_link).model.failure_probability(),
              0.0966, 5e-5);
  const auto d_link = spec.network.link_between(
      *spec.network.find_node("d"), net::kGateway);
  EXPECT_NEAR(spec.network.link(*d_link).model.failure_probability(), 0.089,
              1e-3);
}

TEST(SpecParser, SchedulePolicies) {
  EXPECT_EQ(parse_spec_string("schedule longest\nnode a\nlink a G avail .9\n")
                .policy,
            net::SchedulingPolicy::kLongestPathsFirst);
  EXPECT_EQ(parse_spec_string("schedule shortest\nnode a\nlink a G avail .9\n")
                .policy,
            net::SchedulingPolicy::kShortestPathsFirst);
}

TEST(SpecParser, CommentsAndBlankLinesIgnored) {
  const ParsedSpec spec = parse_spec_string(
      "# full comment\n\nnode n1 # trailing comment\nlink n1 G avail 0.9\n");
  EXPECT_EQ(spec.network.node_count(), 2u);
}

TEST(SpecParser, ErrorsCarryLineNumbers) {
  try {
    parse_spec_string("node n1\nbogus directive\n");
    FAIL() << "expected parse_error";
  } catch (const parse_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(SpecParser, RejectsBadInput) {
  EXPECT_THROW(parse_spec_string(""), parse_error);
  EXPECT_THROW(parse_spec_string("node G\n"), parse_error);
  EXPECT_THROW(parse_spec_string("node a\nlink a X avail 0.9\n"),
               parse_error);
  EXPECT_THROW(parse_spec_string("node a\nlink a G avail nope\n"),
               parse_error);
  EXPECT_THROW(parse_spec_string("interval 0\nnode a\nlink a G avail .9\n"),
               parse_error);
  EXPECT_THROW(parse_spec_string("superframe 0 5\nnode a\n"), parse_error);
  EXPECT_THROW(parse_spec_string("node a\nlink a G weird 1\n"), parse_error);
  EXPECT_THROW(parse_spec_string("schedule sideways\nnode a\n"), parse_error);
  EXPECT_THROW(parse_spec_string("interval 2.5\nnode a\n"), parse_error);
}

TEST(SpecParser, PathWithUnknownNodeFails) {
  EXPECT_THROW(parse_spec_string("node a\nlink a G avail .9\npath a b G\n"),
               parse_error);
}

}  // namespace
}  // namespace whart::cli
