// The umbrella header must compile and expose the whole public API.
#include "whart/whart.hpp"

#include <gtest/gtest.h>

namespace whart {
namespace {

TEST(Umbrella, EndToEndThroughTheUmbrellaHeader) {
  // Touch one symbol from every layer to keep the umbrella honest.
  const auto link = link::LinkModel::from_snr(phy::EbN0::from_db(8.45));
  EXPECT_GT(link.steady_state_availability(), 0.9);

  const net::TypicalNetwork t = net::make_typical_network(link);
  const hart::NetworkMeasures measures = hart::analyze_network(
      t.network, t.paths, t.eta_a, t.superframe, 4);
  EXPECT_EQ(measures.per_path.size(), 10u);

  const auto energies = hart::estimate_node_energy(
      t.network, t.paths, t.eta_a, t.superframe, 4);
  EXPECT_EQ(energies.size(), t.network.node_count());

  const hart::StabilityAssessment stability = hart::assess_stability(
      measures.per_path[0].reachability, hart::StabilityRequirement{});
  EXPECT_GT(stability.reachability, 0.99);

  const linalg::Matrix identity = linalg::Matrix::identity(3);
  EXPECT_DOUBLE_EQ(linalg::LuDecomposition(identity).determinant(), 1.0);

  numeric::Xoshiro256 rng(1);
  sim::RunningStat stat;
  for (int i = 0; i < 10; ++i) stat.add(rng.uniform());
  EXPECT_EQ(stat.count(), 10u);

  report::Table table({"ok"});
  table.add_row({"yes"});
  EXPECT_EQ(table.row_count(), 1u);
}

}  // namespace
}  // namespace whart
