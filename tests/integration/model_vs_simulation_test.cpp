// Integration: the DTMC analytics and the Monte-Carlo simulator must agree
// on reachability, cycle distribution, delay and utilization — two fully
// independent implementations of the same protocol semantics.  The main
// suite runs parameterized over link regimes: kIndependent (exactly the
// analytic steady-state link model) and kChannel (every link runs a
// Gilbert-Elliott chain, matched by the channel-enlarged analytics), so
// every comparison uses a computed confidence bound from verify::bounds
// at a fixed per-check failure probability instead of a hand-tuned
// epsilon — and the structural invariants (row-stochastic transitions,
// mass conservation, R + discard = 1) are inherited for free by both
// regimes through the shared solver checks.
#include <gtest/gtest.h>

#include <cmath>
#include <optional>
#include <tuple>

#include "whart/hart/failure.hpp"
#include "whart/hart/network_analysis.hpp"
#include "whart/link/channel_model.hpp"
#include "whart/net/typical_network.hpp"
#include "whart/sim/simulator.hpp"
#include "whart/verify/bounds.hpp"

namespace whart {
namespace {

// Per-statistical-check failure probability; a few hundred checks run in
// this file, so the whole-file false-alarm rate stays below 1e-5.
constexpr double kPerCheckDelta = 1e-8;

// The Gilbert-Elliott template of the kChannel rows: mean bad burst of
// 1 / 0.35 ~ 2.9 slots, rescaled per link to its availability.
std::optional<link::ChannelModel> regime_channel(sim::LinkRegime regime) {
  if (regime != sim::LinkRegime::kChannel) return std::nullopt;
  return link::ChannelModel::gilbert_elliott(0.12, 0.35, 0.03, 0.75);
}

sim::SimulationReport simulate(const net::TypicalNetwork& t,
                               const net::Schedule& schedule,
                               std::uint64_t intervals, std::uint64_t seed,
                               sim::LinkRegime regime) {
  sim::SimulatorConfig config;
  config.superframe = t.superframe;
  config.reporting_interval = 4;
  config.intervals = intervals;
  config.seed = seed;
  config.regime = regime;
  config.channel = regime_channel(regime);
  const sim::NetworkSimulator simulator(t.network, t.paths, schedule, config);
  return simulator.run();
}

class ModelVsSimulation
    : public ::testing::TestWithParam<std::tuple<double, sim::LinkRegime>> {
};

TEST_P(ModelVsSimulation, TypicalNetworkReachabilityWithinConfidence) {
  const auto [availability, regime] = GetParam();
  const net::TypicalNetwork t = net::make_typical_network(
      link::LinkModel::from_availability(availability));

  hart::AnalysisOptions options;
  options.channel = regime_channel(regime);
  const hart::NetworkMeasures model = hart::analyze_network(
      t.network, t.paths, t.eta_a, t.superframe, 4, options);
  const sim::SimulationReport report =
      simulate(t, t.eta_a, 20000, 4242, regime);

  const double z = verify::z_for_delta(kPerCheckDelta);
  for (std::size_t p = 0; p < t.paths.size(); ++p) {
    // R + discard = 1 holds in every regime (the channel-enlarged chain
    // conserves mass exactly like the i.i.d. one).
    EXPECT_NEAR(model.per_path[p].reachability +
                    model.per_path[p].discard_probability,
                1.0, 1e-12);
    const auto ci = report.per_path[p].reachability_interval(z);
    EXPECT_TRUE(ci.contains(model.per_path[p].reachability))
        << "pi=" << availability << " regime "
        << static_cast<int>(regime) << " path " << p + 1 << ": model "
        << model.per_path[p].reachability << " not in [" << ci.low << ", "
        << ci.high << "] (empirical "
        << report.per_path[p].reachability() << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AvailabilitiesAndRegimes, ModelVsSimulation,
    ::testing::Combine(::testing::Values(0.693, 0.83, 0.948),
                       ::testing::Values(sim::LinkRegime::kIndependent,
                                         sim::LinkRegime::kChannel)));

TEST(ModelVsSimulationDetail, CycleDistributionOfExamplePath) {
  // The Section V-A example path as a standalone network.
  net::Network network;
  const auto n1 = network.add_node("n1");
  const auto n2 = network.add_node("n2");
  const auto n3 = network.add_node("n3");
  const auto model = link::LinkModel::from_availability(0.75);
  network.add_link(n1, n2, model);
  network.add_link(n2, n3, model);
  network.add_link(n3, net::kGateway, model);
  const std::vector<net::Path> paths{
      net::Path({n1, n2, n3, net::kGateway})};

  // Paper slots 3, 6, 7 in a 7-slot frame.
  net::Schedule schedule(7, 1);
  schedule.assign(3, 0, 0, n1, n2);
  schedule.assign(6, 0, 1, n2, n3);
  schedule.assign(7, 0, 2, n3, net::kGateway);

  const auto superframe = net::SuperframeConfig::symmetric(7);
  const hart::NetworkMeasures analytic =
      hart::analyze_network(network, paths, schedule, superframe, 4);
  const hart::PathMeasures& path = analytic.per_path[0];

  sim::SimulatorConfig config;
  config.superframe = superframe;
  config.reporting_interval = 4;
  config.intervals = 50000;
  config.seed = 31337;
  config.regime = sim::LinkRegime::kIndependent;
  const sim::NetworkSimulator simulator(network, paths, schedule, config);
  const auto report = simulator.run();
  const sim::PathStatistics& stats = report.per_path[0];

  const double z = verify::z_for_delta(kPerCheckDelta);
  std::uint64_t delivered = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    delivered += stats.delivered_per_cycle[i];
    const sim::Interval ci = sim::wilson_interval(
        stats.delivered_per_cycle[i], stats.messages, z);
    EXPECT_TRUE(ci.contains(path.cycle_probabilities[i]))
        << "cycle " << i + 1 << ": analytic " << path.cycle_probabilities[i]
        << " not in [" << ci.low << ", " << ci.high << "]";
  }

  // Utilization = attempts per (Is * Fup slots); attempts per message lie
  // in [0, hops * Is], so a Hoeffding bound applies to the mean.
  const double attempt_radius = verify::hoeffding_radius(
      stats.messages, kPerCheckDelta, 3.0 * 4.0);
  EXPECT_NEAR(stats.utilization(7, 4), path.utilization,
              attempt_radius / (7.0 * 4.0));

  // Mean delay over delivered messages: range bounded by the delay
  // spread of the four possible delivery cycles.
  const double delay_range = path.delays_ms.back() - path.delays_ms.front();
  EXPECT_NEAR(stats.delay_ms.mean(), path.expected_delay_ms,
              verify::hoeffding_radius(delivered, kPerCheckDelta,
                                       delay_range));
}

TEST(ModelVsSimulationDetail, EtaBDelaysMatch) {
  const net::TypicalNetwork t = net::make_typical_network(
      link::LinkModel::from_availability(0.83));
  const hart::NetworkMeasures model = hart::analyze_network(
      t.network, t.paths, t.eta_b, t.superframe, 4);
  const sim::SimulationReport report =
      simulate(t, t.eta_b, 20000, 99, sim::LinkRegime::kIndependent);

  for (std::size_t p = 0; p < t.paths.size(); ++p) {
    const hart::PathMeasures& path = model.per_path[p];
    std::uint64_t delivered = 0;
    for (std::uint64_t d : report.per_path[p].delivered_per_cycle)
      delivered += d;
    ASSERT_GT(delivered, 0u) << "path " << p + 1;
    const double range = path.delays_ms.back() - path.delays_ms.front();
    EXPECT_NEAR(report.per_path[p].delay_ms.mean(), path.expected_delay_ms,
                verify::hoeffding_radius(delivered, kPerCheckDelta, range))
        << "path " << p + 1;
  }
}

TEST(ModelVsSimulationDetail, ScriptedLinkFailureMatchesExactDtmc) {
  // Table III's exact refinement: e3 forced DOWN during cycle 1 of every
  // interval.  The simulator with the same scripted window must land on
  // the exact DTMC's reachability, not the paper's cycle-shift value.
  // Scripted windows exist only in the Gilbert regime, so this test
  // keeps it (with availability 0.83 the retry-correlation bias is far
  // inside the interval).
  const net::TypicalNetwork t = net::make_typical_network(
      link::LinkModel::from_availability(0.83));
  const auto e3 =
      t.network.link_between(*t.network.find_node("n3"), net::kGateway);
  ASSERT_TRUE(e3.has_value());

  const auto impacts = hart::one_cycle_link_failure(
      t.network, t.paths, t.eta_a, t.superframe, 4, *e3);

  sim::SimulatorConfig config;
  config.superframe = t.superframe;
  config.reporting_interval = 4;
  config.intervals = 30000;
  config.seed = 555;
  config.scripted_failures.push_back(sim::ScriptedLinkFailure{
      *e3, link::cycle_window(0, 1, t.superframe.cycle_slots())});
  sim::NetworkSimulator simulator(t.network, t.paths, t.eta_a, config);
  const sim::SimulationReport report = simulator.run();

  for (std::size_t p = 0; p < t.paths.size(); ++p) {
    const auto ci = report.per_path[p].reachability_interval(3.89);
    EXPECT_TRUE(ci.contains(impacts[p].reachability_exact))
        << "path " << p + 1 << ": exact DTMC "
        << impacts[p].reachability_exact << " not in [" << ci.low << ", "
        << ci.high << "] (empirical "
        << report.per_path[p].reachability() << ")";
  }
  // And the empirical value for an affected multi-hop path is visibly
  // above the cycle-shift approximation.
  EXPECT_GT(report.per_path[9].reachability(),
            impacts[9].reachability_cycle_shift + 0.005);
}

}  // namespace
}  // namespace whart
