// Network-level property tests over randomized plants: the aggregate
// measures must decompose exactly into the per-path analytics, for any
// topology either generator produces.  The decomposition invariants
// (Eq. 13 aggregation, utilization sums, bottleneck selection) are
// checked by verify::InvariantChecker::check_network.
#include <numeric>

#include <gtest/gtest.h>

#include "whart/hart/analytic.hpp"
#include "whart/hart/energy.hpp"
#include "whart/hart/network_analysis.hpp"
#include "whart/hart/schedule_optimizer.hpp"
#include "whart/net/plant_generator.hpp"
#include "whart/net/spatial_plant.hpp"
#include "whart/verify/invariants.hpp"

namespace whart {
namespace {

class RandomPlant : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomPlant, AggregatesDecomposeIntoPathMeasures) {
  net::PlantProfile profile;
  profile.device_count = 14;
  profile.seed = GetParam();
  profile.min_availability = 0.75;
  profile.max_availability = 0.98;
  const net::GeneratedPlant plant = net::generate_plant(profile);
  const hart::NetworkMeasures m = hart::analyze_network(
      plant.network, plant.paths, plant.schedule, plant.superframe, 4);

  // E[Gamma] aggregation, utilization sums and bottleneck selection
  // (Eq. 13) are one invariant bundle shared with whart_verify.
  for (const verify::InvariantViolation& v :
       verify::InvariantChecker().check_network(m))
    ADD_FAILURE() << "seed " << GetParam() << ": " << v.invariant << " — "
                  << v.detail;

  // The overall delay pmf carries exactly the averaged per-path mass.
  double gamma_mass = 0.0;
  for (const auto& point : m.overall_delay_distribution)
    gamma_mass += point.probability;
  EXPECT_NEAR(gamma_mass, 1.0, 1e-9);

  // Chains are scheduled in-order, so every path's cycle distribution
  // matches the steady-state closed form for its hop availabilities.
  for (std::size_t p = 0; p < plant.paths.size(); ++p) {
    std::vector<double> per_hop;
    for (const auto& model : plant.paths[p].hop_models(plant.network))
      per_hop.push_back(model.steady_state_availability());
    const auto analytic = hart::analytic_cycle_probabilities(per_hop, 4);
    for (std::size_t i = 0; i < 4; ++i)
      ASSERT_NEAR(analytic[i], m.per_path[p].cycle_probabilities[i],
                  1e-12)
          << "path " << p + 1 << " cycle " << i + 1;
  }
}

TEST_P(RandomPlant, EnergyConservesAttempts) {
  net::PlantProfile profile;
  profile.device_count = 10;
  profile.seed = GetParam() ^ 0x5555;
  const net::GeneratedPlant plant = net::generate_plant(profile);
  const auto energies = hart::estimate_node_energy(
      plant.network, plant.paths, plant.schedule, plant.superframe, 4);
  const hart::NetworkMeasures m = hart::analyze_network(
      plant.network, plant.paths, plant.schedule, plant.superframe, 4);

  double tx = 0.0;
  for (const auto& node : energies) tx += node.tx_attempts_per_interval;
  EXPECT_NEAR(tx,
              m.network_utilization * 4.0 * plant.superframe.uplink_slots,
              1e-9);
}

TEST_P(RandomPlant, OptimizerNeverWorsensTheWorstDelay) {
  net::SpatialPlantProfile profile;
  profile.device_count = 10;
  profile.plant_radius_m = 140.0;
  profile.propagation.exponent = 3.1;
  profile.seed = GetParam();
  const net::SpatialPlant plant = generate_spatial_plant(profile);

  const auto worst = [&](const net::Schedule& schedule) {
    const hart::NetworkMeasures m = hart::analyze_network(
        plant.network, plant.paths, schedule, plant.superframe, 4);
    return m.per_path[m.bottleneck_by_delay].expected_delay_ms;
  };
  const net::Schedule optimized = hart::build_min_worst_delay_schedule(
      plant.network, plant.paths, plant.superframe, 4);
  EXPECT_LE(worst(optimized), worst(plant.schedule) + 1e-9);
  const net::Schedule longest = net::build_schedule(
      plant.paths, plant.superframe.uplink_slots,
      net::SchedulingPolicy::kLongestPathsFirst);
  EXPECT_LE(worst(optimized), worst(longest) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPlant,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace whart
