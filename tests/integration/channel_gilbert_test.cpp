// Integration: physical channels -> simulated per-slot trace -> fitted
// two-state model vs the analytic channel-hopping derivation
// (LinkModel::from_channel_failures).  This closes the loop the paper
// only argues qualitatively ("prc is very close to 1 because of
// channel hopping and blacklisting").
#include <cmath>

#include <gtest/gtest.h>

#include "whart/common/contracts.hpp"
#include "whart/link/fitting.hpp"
#include "whart/link/link_model.hpp"
#include "whart/phy/frame.hpp"
#include "whart/sim/link_trace.hpp"

namespace whart {
namespace {

std::vector<double> word_failures(const std::vector<double>& channel_ber,
                                  std::uint32_t bits) {
  std::vector<double> failures;
  for (double ber : channel_ber)
    failures.push_back(
        1.0 - std::pow(1.0 - ber, static_cast<double>(bits)));
  return failures;
}

TEST(ChannelGilbert, StaticChannelsMatchAnalyticDerivation) {
  // Three noisy channels among sixteen; no blacklist, no interference:
  // the fitted (pfl, prc) must match from_channel_failures.
  std::vector<double> ber(16, 2e-5);
  ber[0] = ber[1] = ber[2] = 2e-3;

  sim::LinkTraceConfig config;
  config.channel_ber = ber;
  config.use_blacklist = false;
  config.jam_probability = 0.0;

  const auto trace = sim::simulate_link_trace(config, 400000, 71);
  const link::GilbertFit fit = link::fit_gilbert(trace);
  ASSERT_TRUE(fit.pfl.has_value() && fit.prc.has_value());

  const link::LinkModel predicted = link::LinkModel::from_channel_failures(
      word_failures(ber, phy::kMessageBits));
  EXPECT_NEAR(*fit.pfl, predicted.failure_probability(), 0.01);
  EXPECT_NEAR(*fit.prc, predicted.recovery_probability(), 0.03);
  EXPECT_NEAR(fit.availability, predicted.steady_state_availability(),
              0.01);
}

TEST(ChannelGilbert, BlacklistImprovesTheObservedLink) {
  std::vector<double> ber(16, 2e-5);
  ber[0] = ber[1] = ber[2] = 5e-3;  // persistently bad channels

  sim::LinkTraceConfig without;
  without.channel_ber = ber;
  without.use_blacklist = false;
  sim::LinkTraceConfig with = without;
  with.use_blacklist = true;
  with.blacklist.failure_threshold = 2;

  const auto trace_without = sim::simulate_link_trace(without, 200000, 5);
  const auto trace_with = sim::simulate_link_trace(with, 200000, 5);
  const link::GilbertFit fit_without = link::fit_gilbert(trace_without);
  const link::GilbertFit fit_with = link::fit_gilbert(trace_with);

  // Blacklisting removes the bad channels from the hop set: higher
  // availability and (the paper's claim) a recovery probability pushed
  // toward 1.
  EXPECT_GT(fit_with.availability, fit_without.availability + 0.05);
  ASSERT_TRUE(fit_with.prc.has_value() && fit_without.prc.has_value());
  EXPECT_GT(*fit_with.prc, *fit_without.prc);
}

TEST(ChannelGilbert, InterferenceBurstsLowerAvailability) {
  sim::LinkTraceConfig quiet;
  quiet.channel_ber.assign(16, 5e-5);
  quiet.use_blacklist = false;
  sim::LinkTraceConfig bursty = quiet;
  bursty.jam_probability = 0.05;
  bursty.clear_probability = 0.2;
  bursty.jammed_ber = 5e-3;

  const auto quiet_trace = sim::simulate_link_trace(quiet, 100000, 9);
  const auto bursty_trace = sim::simulate_link_trace(bursty, 100000, 9);
  EXPECT_LT(link::fit_gilbert(bursty_trace).availability,
            link::fit_gilbert(quiet_trace).availability - 0.02);
}

TEST(ChannelGilbert, DeterministicInSeed) {
  sim::LinkTraceConfig config;
  EXPECT_EQ(sim::simulate_link_trace(config, 1000, 3),
            sim::simulate_link_trace(config, 1000, 3));
  EXPECT_THROW(sim::simulate_link_trace(config, 0, 3), precondition_error);
}

}  // namespace
}  // namespace whart
