// Property tests over randomized path configurations: model invariants
// that must hold for ANY hop count, frame size, reporting interval, slot
// assignment, retry layout, TTL and link mix — not just the paper's
// scenarios.  Scenarios come from verify::ScenarioGenerator (the same
// corpus-compatible stream whart_verify fuzzes) and the structural
// invariants are checked by verify::InvariantChecker; this file keeps
// the ordering/closed-form properties the checker does not model.
#include <algorithm>
#include <numeric>

#include <gtest/gtest.h>

#include "whart/hart/analytic.hpp"
#include "whart/hart/composition.hpp"
#include "whart/hart/path_analysis.hpp"
#include "whart/hart/path_model.hpp"
#include "whart/numeric/rng.hpp"
#include "whart/verify/invariants.hpp"
#include "whart/verify/scenario.hpp"

namespace whart::hart {
namespace {

class RandomPathModel : public ::testing::TestWithParam<std::uint64_t> {};

double reachability_of(const PathModelConfig& config,
                       const std::vector<double>& availabilities) {
  const PathTransientResult result =
      PathModel(config).analyze(SteadyStateLinks{availabilities});
  return std::accumulate(result.cycle_probabilities.begin(),
                         result.cycle_probabilities.end(), 0.0);
}

TEST_P(RandomPathModel, StructuralInvariantsHold) {
  const verify::Scenario scenario =
      verify::ScenarioGenerator().generate(GetParam());
  const verify::InvariantChecker checker;
  for (std::size_t p = 0; p < scenario.path_count(); ++p) {
    for (const verify::InvariantViolation& v : checker.check(
             scenario.path_config(p), scenario.hop_availabilities(p)))
      ADD_FAILURE() << "seed " << GetParam() << " path " << p << ": "
                    << v.invariant << " — " << v.detail;
  }
}

TEST_P(RandomPathModel, OrderingAndClosedFormPropertiesHold) {
  const verify::Scenario scenario =
      verify::ScenarioGenerator().generate(GetParam());
  for (std::size_t p = 0; p < scenario.path_count(); ++p) {
    const PathModelConfig config = scenario.path_config(p);
    const std::vector<double> availabilities =
        scenario.hop_availabilities(p);
    const SteadyStateLinks provider{availabilities};
    const PathTransientResult result = PathModel(config).analyze(provider);
    const PathMeasures m =
        compute_path_measures(PathModel(config), provider);

    // Utilization orderings: delivered-only <= exact, both in [0, 1].
    EXPECT_LE(m.utilization_delivered, m.utilization + 1e-12);
    EXPECT_GE(m.utilization, 0.0);
    EXPECT_LE(m.utilization, 1.0);

    // Per-hop attempts sum to the total.
    double per_hop_sum = 0.0;
    for (double a : result.expected_transmissions_per_hop) per_hop_sum += a;
    EXPECT_NEAR(per_hop_sum, result.expected_transmissions, 1e-12);

    const bool plain = scenario.slots_sorted(p) &&
                       config.retry_slots.empty() &&
                       !scenario.ttl.has_value();
    if (!plain) continue;

    // For in-order schedules the paper's closed-form accounting (a
    // cycle-i delivery makes exactly n+i-1 attempts) must agree with
    // the backward pass...
    const double closed = delivered_transmissions(
        result.cycle_probabilities, config.hop_count(),
        config.reporting_interval);
    EXPECT_NEAR(closed, result.expected_transmissions_delivered, 1e-9);

    // ...and the negative-binomial closed form is exact.
    const auto analytic = analytic_cycle_probabilities(
        availabilities, config.reporting_interval);
    for (std::size_t i = 0; i < analytic.size(); ++i)
      EXPECT_NEAR(analytic[i], result.cycle_probabilities[i], 1e-12)
          << "cycle " << i + 1;

    // Reachability never exceeds the sorted-slot (best-layout) bound —
    // trivially tight here, so perturb to an arbitrary order instead.
    PathModelConfig shuffled = config;
    std::rotate(shuffled.hop_slots.begin(), shuffled.hop_slots.begin() + 1,
                shuffled.hop_slots.end());
    if (shuffled.hop_slots != config.hop_slots) {
      EXPECT_LE(reachability_of(shuffled, availabilities),
                reachability_of(config, availabilities) + 1e-12);
    }
  }
}

TEST_P(RandomPathModel, MoreCyclesNeverHurt) {
  const verify::Scenario scenario =
      verify::ScenarioGenerator().generate(GetParam());
  for (std::size_t p = 0; p < scenario.path_count(); ++p) {
    PathModelConfig shorter = scenario.path_config(p);
    PathModelConfig longer = shorter;
    longer.reporting_interval = shorter.reporting_interval + 3;
    const std::vector<double> availabilities =
        scenario.hop_availabilities(p);
    EXPECT_GE(reachability_of(longer, availabilities) + 1e-12,
              reachability_of(shorter, availabilities));
  }
}

TEST_P(RandomPathModel, BetterLinksNeverHurt) {
  const verify::Scenario scenario =
      verify::ScenarioGenerator().generate(GetParam());
  for (std::size_t p = 0; p < scenario.path_count(); ++p) {
    const PathModelConfig config = scenario.path_config(p);
    const std::vector<double> availabilities =
        scenario.hop_availabilities(p);
    std::vector<double> improved;
    for (double pi : availabilities) improved.push_back(pi + 0.5 * (1.0 - pi));
    EXPECT_GE(reachability_of(config, improved) + 1e-12,
              reachability_of(config, availabilities));
  }
}

TEST_P(RandomPathModel, CompositionMatchesConcatenationForSortedSlots) {
  const verify::Scenario scenario =
      verify::ScenarioGenerator().generate(GetParam());
  numeric::Xoshiro256 rng(GetParam() ^ 0xABCDEF);
  for (std::size_t p = 0; p < scenario.path_count(); ++p) {
    const PathModelConfig config = scenario.path_config(p);
    if (!scenario.slots_sorted(p) || !config.retry_slots.empty()) continue;
    if (config.hop_count() < 2) continue;
    // Split the path at a random hop boundary; composing the two
    // halves' cycle distributions must equal the whole path's.
    const std::vector<double> ps_all = scenario.hop_availabilities(p);
    const std::size_t split = 1 + rng.below(config.hop_count() - 1);
    const std::vector<double> head(
        ps_all.begin(), ps_all.begin() + static_cast<std::ptrdiff_t>(split));
    const std::vector<double> tail(
        ps_all.begin() + static_cast<std::ptrdiff_t>(split), ps_all.end());
    const std::uint32_t is = config.reporting_interval;
    const auto composed = compose_cycle_probabilities(
        analytic_cycle_probabilities(head, is),
        analytic_cycle_probabilities(tail, is), is);
    const auto direct = analytic_cycle_probabilities(ps_all, is);
    for (std::size_t i = 0; i < is; ++i)
      EXPECT_NEAR(composed[i], direct[i], 1e-12) << "cycle " << i + 1;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPathModel,
                         ::testing::Range<std::uint64_t>(1, 41));

}  // namespace
}  // namespace whart::hart
