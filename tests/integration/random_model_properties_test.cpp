// Property tests over randomized path configurations: model invariants
// that must hold for ANY hop count, frame size, reporting interval, slot
// assignment and link mix — not just the paper's scenarios.
#include <algorithm>
#include <numeric>

#include <gtest/gtest.h>

#include "whart/hart/analytic.hpp"
#include "whart/hart/composition.hpp"
#include "whart/hart/path_analysis.hpp"
#include "whart/hart/path_model.hpp"
#include "whart/numeric/rng.hpp"

namespace whart::hart {
namespace {

struct RandomScenario {
  PathModelConfig config;
  std::vector<link::LinkModel> links;
  bool slots_sorted = false;
};

RandomScenario make_scenario(std::uint64_t seed) {
  numeric::Xoshiro256 rng(seed);
  RandomScenario s;
  const auto hops = static_cast<std::uint32_t>(1 + rng.below(5));
  const auto fup = static_cast<std::uint32_t>(hops + rng.below(10));
  s.config.superframe = net::SuperframeConfig{
      fup, static_cast<std::uint32_t>(rng.below(fup + 1))};
  s.config.reporting_interval = static_cast<std::uint32_t>(1 + rng.below(8));

  // Distinct random slots in 1..fup.
  std::vector<net::SlotNumber> all_slots(fup);
  std::iota(all_slots.begin(), all_slots.end(), net::SlotNumber{1});
  for (std::uint32_t h = 0; h < hops; ++h) {
    const std::size_t pick = rng.below(all_slots.size());
    s.config.hop_slots.push_back(all_slots[pick]);
    all_slots.erase(all_slots.begin() + static_cast<std::ptrdiff_t>(pick));
  }
  s.slots_sorted = std::is_sorted(s.config.hop_slots.begin(),
                                  s.config.hop_slots.end());

  for (std::uint32_t h = 0; h < hops; ++h) {
    const double availability = 0.5 + 0.5 * rng.uniform();
    s.links.push_back(link::LinkModel::from_availability(
        availability, 0.85 + 0.14 * rng.uniform()));
  }
  return s;
}

class RandomPathModel : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomPathModel, InvariantsHold) {
  const RandomScenario s = make_scenario(GetParam());
  const PathModel model(s.config);
  const SteadyStateLinks provider(s.links);
  const PathTransientResult result = model.analyze(provider);
  const PathMeasures m = compute_path_measures(model, provider);

  // 1. Probability mass is conserved.
  const double mass = std::accumulate(result.cycle_probabilities.begin(),
                                      result.cycle_probabilities.end(),
                                      result.discard_probability);
  EXPECT_NEAR(mass, 1.0, 1e-12);

  // 2. Goal trajectories are monotone and end at the final values.
  for (std::size_t i = 0; i < result.cycle_probabilities.size(); ++i) {
    for (std::size_t t = 1; t < result.goal_trajectory.size(); ++t)
      ASSERT_GE(result.goal_trajectory[t][i] + 1e-15,
                result.goal_trajectory[t - 1][i]);
    EXPECT_NEAR(result.goal_trajectory.back()[i],
                result.cycle_probabilities[i], 1e-15);
  }

  // 3. Attempts: at most one per slot, at least one per cycle while the
  //    message is alive; per-hop counts sum to the total.
  EXPECT_GT(result.expected_transmissions, 0.0);
  EXPECT_LE(result.expected_transmissions,
            static_cast<double>(s.config.horizon()));
  double per_hop_sum = 0.0;
  for (double a : result.expected_transmissions_per_hop) per_hop_sum += a;
  EXPECT_NEAR(per_hop_sum, result.expected_transmissions, 1e-12);

  // 4. Utilization orderings: delivered-only <= exact (the delivered
  //    count comes from the backward pass, valid for any slot order).
  EXPECT_LE(m.utilization_delivered, m.utilization + 1e-12);
  EXPECT_GE(m.utilization, 0.0);
  EXPECT_LE(m.utilization, 1.0);
  // For in-order schedules the paper's closed-form accounting (a cycle-i
  // delivery makes exactly n+i-1 attempts) must agree with the backward
  // pass.
  if (s.slots_sorted) {
    const double closed = delivered_transmissions(
        result.cycle_probabilities, s.config.hop_count(),
        s.config.reporting_interval);
    EXPECT_NEAR(closed,
                result.expected_transmissions_delivered, 1e-9);
  }

  // 5. The delay pmf is a pmf over received messages whenever R > 0.
  if (m.reachability > 1e-12) {
    double tau_mass = 0.0;
    for (double tau : m.delay_distribution) {
      EXPECT_GE(tau, -1e-15);
      tau_mass += tau;
    }
    EXPECT_NEAR(tau_mass, 1.0, 1e-9);
  }

  // 6. For sorted slots the negative-binomial closed form is exact.
  if (s.slots_sorted) {
    std::vector<double> per_hop_ps;
    for (const link::LinkModel& l : s.links)
      per_hop_ps.push_back(l.steady_state_availability());
    const auto analytic = analytic_cycle_probabilities(
        per_hop_ps, s.config.reporting_interval);
    for (std::size_t i = 0; i < analytic.size(); ++i)
      EXPECT_NEAR(analytic[i], result.cycle_probabilities[i], 1e-12)
          << "cycle " << i + 1;
  }

  // 7. Reachability never exceeds the sorted-slot (best-layout) bound.
  {
    PathModelConfig best = s.config;
    std::sort(best.hop_slots.begin(), best.hop_slots.end());
    const PathModel best_model(best);
    const PathTransientResult best_result = best_model.analyze(provider);
    const double best_r =
        std::accumulate(best_result.cycle_probabilities.begin(),
                        best_result.cycle_probabilities.end(), 0.0);
    EXPECT_LE(m.reachability, best_r + 1e-12);
  }
}

TEST_P(RandomPathModel, MoreCyclesNeverHurt) {
  const RandomScenario s = make_scenario(GetParam());
  PathModelConfig shorter = s.config;
  PathModelConfig longer = s.config;
  longer.reporting_interval = shorter.reporting_interval + 3;
  const SteadyStateLinks provider(s.links);
  const auto r = [&](const PathModelConfig& config) {
    const PathTransientResult result = PathModel(config).analyze(provider);
    return std::accumulate(result.cycle_probabilities.begin(),
                           result.cycle_probabilities.end(), 0.0);
  };
  EXPECT_GE(r(longer) + 1e-12, r(shorter));
}

TEST_P(RandomPathModel, BetterLinksNeverHurt) {
  const RandomScenario s = make_scenario(GetParam());
  std::vector<link::LinkModel> improved;
  for (const link::LinkModel& l : s.links) {
    const double pi = l.steady_state_availability();
    improved.push_back(link::LinkModel::from_availability(
        pi + 0.5 * (1.0 - pi), l.recovery_probability()));
  }
  const PathModel model(s.config);
  const auto r = [&](const std::vector<link::LinkModel>& links) {
    const PathTransientResult result =
        model.analyze(SteadyStateLinks(links));
    return std::accumulate(result.cycle_probabilities.begin(),
                           result.cycle_probabilities.end(), 0.0);
  };
  EXPECT_GE(r(improved) + 1e-12, r(s.links));
}

TEST_P(RandomPathModel, CompositionMatchesConcatenationForSortedSlots) {
  const RandomScenario s = make_scenario(GetParam());
  if (!s.slots_sorted) GTEST_SKIP() << "needs in-order slots";
  // Split the path at a random hop boundary; composing the two halves'
  // cycle distributions must equal the whole path's.
  if (s.config.hop_count() < 2) GTEST_SKIP() << "needs >= 2 hops";
  numeric::Xoshiro256 rng(GetParam() ^ 0xABCDEF);
  const std::size_t split = 1 + rng.below(s.config.hop_count() - 1);

  std::vector<double> ps_all;
  for (const link::LinkModel& l : s.links)
    ps_all.push_back(l.steady_state_availability());
  const std::vector<double> head(ps_all.begin(),
                                 ps_all.begin() + static_cast<std::ptrdiff_t>(split));
  const std::vector<double> tail(ps_all.begin() + static_cast<std::ptrdiff_t>(split),
                                 ps_all.end());
  const std::uint32_t is = s.config.reporting_interval;
  const auto composed = compose_cycle_probabilities(
      analytic_cycle_probabilities(head, is),
      analytic_cycle_probabilities(tail, is), is);
  const auto direct = analytic_cycle_probabilities(ps_all, is);
  for (std::size_t i = 0; i < is; ++i)
    EXPECT_NEAR(composed[i], direct[i], 1e-12) << "cycle " << i + 1;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPathModel,
                         ::testing::Range<std::uint64_t>(1, 41));

}  // namespace
}  // namespace whart::hart
