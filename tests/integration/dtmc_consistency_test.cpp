// Integration: three independent solution methods of the same path model
// must coincide — (1) forward propagation (paper Eq. 5), (2) transient
// analysis of the explicit Algorithm-1 DTMC, and (3) absorbing-chain
// analysis via the fundamental matrix.
#include <algorithm>
#include <numeric>

#include <gtest/gtest.h>

#include "whart/hart/analytic.hpp"
#include "whart/hart/path_model.hpp"
#include "whart/markov/absorbing.hpp"
#include "whart/markov/transient.hpp"

namespace whart::hart {
namespace {

struct Scenario {
  std::vector<net::SlotNumber> hop_slots;
  std::uint32_t fup;
  std::uint32_t is;
  std::vector<double> availabilities;
  const char* label;
};

std::vector<Scenario> scenarios() {
  return {
      {{3, 6, 7}, 7, 4, {0.75, 0.75, 0.75}, "paper example"},
      {{1}, 5, 3, {0.83}, "one hop"},
      {{2, 4}, 5, 2, {0.9, 0.7}, "inhomogeneous two hop"},
      {{5, 2}, 6, 3, {0.8, 0.8}, "out of order"},
      {{1, 2, 3, 4}, 6, 5, {0.95, 0.9, 0.85, 0.8}, "four hops"},
  };
}

class DtmcConsistency : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DtmcConsistency, ForwardEqualsExplicitDtmcEqualsAbsorbing) {
  const Scenario scenario = scenarios()[GetParam()];
  SCOPED_TRACE(scenario.label);

  PathModelConfig config;
  config.hop_slots = scenario.hop_slots;
  config.superframe = net::SuperframeConfig::symmetric(scenario.fup);
  config.reporting_interval = scenario.is;
  const PathModel model(config);

  std::vector<link::LinkModel> links;
  for (double pi : scenario.availabilities)
    links.push_back(link::LinkModel::from_availability(pi));
  const SteadyStateLinks provider(links);

  // Method 1: forward propagation.
  const PathTransientResult forward = model.analyze(provider);

  // Method 2: explicit DTMC, iterated to the horizon.
  const markov::Dtmc dtmc = model.to_dtmc(provider);
  const linalg::Vector final = markov::distribution_after(
      dtmc, markov::point_distribution(dtmc.num_states(), 0),
      config.horizon());

  // Method 3: absorbing-chain analysis (valid because by the horizon all
  // mass is absorbed and absorption probabilities are time-independent).
  const markov::AbsorbingAnalysis absorbing = markov::analyze_absorbing(dtmc);
  const auto initial_row = std::find(absorbing.transient_states.begin(),
                                     absorbing.transient_states.end(),
                                     model.initial_state());
  ASSERT_NE(initial_row, absorbing.transient_states.end());
  const std::size_t row = static_cast<std::size_t>(
      initial_row - absorbing.transient_states.begin());

  double absorbed_mass = 0.0;
  for (std::uint32_t cycle = 1; cycle <= scenario.is; ++cycle) {
    const auto goal = dtmc.find_state(model.goal_state_name(cycle));
    ASSERT_TRUE(goal.has_value()) << "cycle " << cycle;
    EXPECT_NEAR(final[*goal], forward.cycle_probabilities[cycle - 1], 1e-12)
        << "method 2, cycle " << cycle;
    const auto col = std::find(absorbing.absorbing_states.begin(),
                               absorbing.absorbing_states.end(), *goal);
    ASSERT_NE(col, absorbing.absorbing_states.end());
    const double b = absorbing.absorption_probability(
        row, static_cast<std::size_t>(
                 col - absorbing.absorbing_states.begin()));
    EXPECT_NEAR(b, forward.cycle_probabilities[cycle - 1], 1e-12)
        << "method 3, cycle " << cycle;
    absorbed_mass += b;
  }

  const auto discard = dtmc.find_state("Discard");
  ASSERT_TRUE(discard.has_value());
  EXPECT_NEAR(final[*discard], forward.discard_probability, 1e-12);
  EXPECT_NEAR(absorbed_mass + forward.discard_probability, 1.0, 1e-12);

  // The expected number of steps to absorption never exceeds the horizon.
  EXPECT_LE(absorbing.expected_steps[row],
            static_cast<double>(config.horizon()) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Scenarios, DtmcConsistency,
                         ::testing::Range<std::size_t>(0, 5));

TEST(DtmcConsistency, EveryRowOfEveryScenarioChainIsStochastic) {
  for (const Scenario& scenario : scenarios()) {
    PathModelConfig config;
    config.hop_slots = scenario.hop_slots;
    config.superframe = net::SuperframeConfig::symmetric(scenario.fup);
    config.reporting_interval = scenario.is;
    const PathModel model(config);
    std::vector<link::LinkModel> links;
    for (double pi : scenario.availabilities)
      links.push_back(link::LinkModel::from_availability(pi));
    // Dtmc's constructor validates stochasticity; this must not throw.
    EXPECT_NO_THROW(model.to_dtmc(SteadyStateLinks(links)))
        << scenario.label;
  }
}

TEST(DtmcConsistency, ScriptedProviderAgreesBetweenMethods) {
  // A failure window makes the chain time-inhomogeneous in link terms,
  // but the unrolled DTMC still freezes per-state probabilities.
  PathModelConfig config;
  config.hop_slots = {1, 2};
  config.superframe = net::SuperframeConfig::symmetric(3);
  config.reporting_interval = 4;
  const PathModel model(config);
  const ScriptedLinks provider(
      std::vector<link::LinkModel>(
          2, link::LinkModel::from_availability(0.83)),
      1, {link::cycle_window(0, 1, config.superframe.cycle_slots())});

  const PathTransientResult forward = model.analyze(provider);
  const markov::Dtmc dtmc = model.to_dtmc(provider);
  const linalg::Vector final = markov::distribution_after(
      dtmc, markov::point_distribution(dtmc.num_states(), 0),
      config.horizon());
  for (std::uint32_t cycle = 1; cycle <= 4; ++cycle) {
    const auto goal = dtmc.find_state(model.goal_state_name(cycle));
    ASSERT_TRUE(goal.has_value());
    EXPECT_NEAR(final[*goal], forward.cycle_probabilities[cycle - 1],
                1e-12);
  }
  // The first cycle is impossible: hop 2 is forced DOWN throughout it.
  EXPECT_DOUBLE_EQ(forward.cycle_probabilities[0], 0.0);
}

}  // namespace
}  // namespace whart::hart
