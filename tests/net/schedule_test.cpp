#include "whart/net/schedule.hpp"

#include <gtest/gtest.h>

#include "whart/common/contracts.hpp"

namespace whart::net {
namespace {

TEST(Schedule, StartsEmpty) {
  const Schedule schedule(7, 2);
  EXPECT_EQ(schedule.uplink_slots(), 7u);
  EXPECT_EQ(schedule.path_count(), 2u);
  for (SlotNumber s = 1; s <= 7; ++s)
    EXPECT_FALSE(schedule.entry(s).has_value());
}

TEST(Schedule, AssignRecordsOwnership) {
  Schedule schedule(7, 1);
  schedule.assign(3, 0, 0, NodeId{1}, NodeId{2});
  schedule.assign(6, 0, 1, NodeId{2}, NodeId{0});
  const auto& entry = schedule.entry(3);
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->from, NodeId{1});
  EXPECT_EQ(entry->to, NodeId{2});
  EXPECT_EQ(entry->path_index, 0u);
  EXPECT_EQ(entry->hop, 0u);
  EXPECT_EQ(schedule.path_slots(0).hop_slots,
            (std::vector<SlotNumber>{3, 6}));
}

TEST(Schedule, TdmaForbidsDoubleBooking) {
  Schedule schedule(7, 2);
  schedule.assign(3, 0, 0, NodeId{1}, NodeId{2});
  EXPECT_THROW(schedule.assign(3, 1, 0, NodeId{3}, NodeId{4}),
               precondition_error);
}

TEST(Schedule, HopsMustBeAssignedInOrder) {
  Schedule schedule(7, 1);
  EXPECT_THROW(schedule.assign(3, 0, 1, NodeId{1}, NodeId{2}),
               precondition_error);
}

TEST(Schedule, SlotOutOfRangeThrows) {
  Schedule schedule(7, 1);
  EXPECT_THROW(schedule.assign(0, 0, 0, NodeId{1}, NodeId{2}),
               precondition_error);
  EXPECT_THROW(schedule.assign(8, 0, 0, NodeId{1}, NodeId{2}),
               precondition_error);
  EXPECT_THROW((void)schedule.entry(0), precondition_error);
}

TEST(Schedule, ValidateCompleteAcceptsFullAssignment) {
  Network network;
  const NodeId n1 = network.add_node("n1");
  const NodeId n2 = network.add_node("n2");
  network.add_link(n1, n2, link::LinkModel::from_availability(0.9));
  network.add_link(n2, kGateway, link::LinkModel::from_availability(0.9));
  const std::vector<Path> paths{Path({n1, n2, kGateway})};

  Schedule schedule(7, 1);
  schedule.assign(3, 0, 0, n1, n2);
  schedule.assign(6, 0, 1, n2, kGateway);
  EXPECT_NO_THROW(schedule.validate_complete(paths));
}

TEST(Schedule, ValidateCompleteRejectsMissingHop) {
  Network network;
  const NodeId n1 = network.add_node("n1");
  const NodeId n2 = network.add_node("n2");
  const std::vector<Path> paths{Path({n1, n2, kGateway})};
  Schedule schedule(7, 1);
  schedule.assign(3, 0, 0, n1, n2);
  EXPECT_THROW(schedule.validate_complete(paths), invariant_error);
}

TEST(Schedule, ValidateCompleteRejectsWrongEndpoints) {
  Network network;
  const NodeId n1 = network.add_node("n1");
  const NodeId n2 = network.add_node("n2");
  const std::vector<Path> paths{Path({n1, kGateway})};
  Schedule schedule(7, 1);
  schedule.assign(1, 0, 0, n2, kGateway);  // wrong source
  EXPECT_THROW(schedule.validate_complete(paths), invariant_error);
}

TEST(Schedule, ToStringPaperNotation) {
  Network network;
  const NodeId n1 = network.add_node("n1");
  const NodeId n2 = network.add_node("n2");
  network.add_link(n1, n2, link::LinkModel::from_availability(0.9));
  Schedule schedule(3, 1);
  schedule.assign(2, 0, 0, n1, n2);
  EXPECT_EQ(schedule.to_string(network), "(*, <n1,n2>, *)");
}

}  // namespace
}  // namespace whart::net
