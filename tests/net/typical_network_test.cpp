#include "whart/net/typical_network.hpp"

#include <gtest/gtest.h>

namespace whart::net {
namespace {

TEST(TypicalNetwork, TenDevicesPlusGateway) {
  const TypicalNetwork t = make_typical_network();
  EXPECT_EQ(t.network.node_count(), 11u);
  EXPECT_EQ(t.network.link_count(), 10u);
  EXPECT_EQ(t.paths.size(), 10u);
}

TEST(TypicalNetwork, HopCountMixMatchesHartStatistics) {
  // 30% one hop, 50% two hops, 20% three hops (paper Section VI-A).
  const TypicalNetwork t = make_typical_network();
  int hops[4] = {0, 0, 0, 0};
  for (const Path& p : t.paths) ++hops[p.hop_count()];
  EXPECT_EQ(hops[1], 3);
  EXPECT_EQ(hops[2], 5);
  EXPECT_EQ(hops[3], 2);
}

TEST(TypicalNetwork, PathNumberingMatchesPaper) {
  const TypicalNetwork t = make_typical_network();
  EXPECT_EQ(t.paths[0].to_string(t.network), "n1 -> G");
  EXPECT_EQ(t.paths[3].to_string(t.network), "n4 -> n1 -> G");
  EXPECT_EQ(t.paths[8].to_string(t.network), "n9 -> n6 -> n2 -> G");
  EXPECT_EQ(t.paths[9].to_string(t.network), "n10 -> n7 -> n3 -> G");
}

TEST(TypicalNetwork, SuperframeIsSymmetricTwenty) {
  const TypicalNetwork t = make_typical_network();
  EXPECT_EQ(t.superframe.uplink_slots, 20u);
  EXPECT_EQ(t.superframe.downlink_slots, 20u);
  EXPECT_EQ(t.superframe.cycle_slots(), 40u);
  EXPECT_EQ(t.superframe.cycle_milliseconds(), 400u);
}

TEST(TypicalNetwork, SchedulesAreCompleteAndValid) {
  const TypicalNetwork t = make_typical_network();
  EXPECT_NO_THROW(t.eta_a.validate_complete(t.paths));
  EXPECT_NO_THROW(t.eta_b.validate_complete(t.paths));
}

TEST(TypicalNetwork, EtaBPutsLongPathsFirst) {
  const TypicalNetwork t = make_typical_network();
  // Three-hop paths 9 and 10 take slots 1-3 and 4-6.
  EXPECT_EQ(t.eta_b.path_slots(8).hop_slots,
            (std::vector<SlotNumber>{1, 2, 3}));
  EXPECT_EQ(t.eta_b.path_slots(9).hop_slots,
            (std::vector<SlotNumber>{4, 5, 6}));
  // One-hop paths go last.
  EXPECT_EQ(t.eta_b.path_slots(0).hop_slots, (std::vector<SlotNumber>{17}));
  EXPECT_EQ(t.eta_b.path_slots(2).hop_slots, (std::vector<SlotNumber>{19}));
}

TEST(TypicalNetwork, CustomLinkModelApplied) {
  const auto model = link::LinkModel::from_availability(0.948);
  const TypicalNetwork t = make_typical_network(model);
  for (LinkId id : t.network.links())
    EXPECT_EQ(t.network.link(id).model, model);
}

TEST(TypicalNetwork, AbsoluteSlotConversion) {
  const TypicalNetwork t = make_typical_network();
  // Uplink slot 1 -> absolute 0; slot 20 -> absolute 19; slot 21 (first
  // uplink slot of cycle 2) -> absolute 40.
  EXPECT_EQ(t.superframe.absolute_slot_of_uplink(1), 0u);
  EXPECT_EQ(t.superframe.absolute_slot_of_uplink(20), 19u);
  EXPECT_EQ(t.superframe.absolute_slot_of_uplink(21), 40u);
  EXPECT_EQ(t.superframe.absolute_slot_of_uplink(41), 80u);
}

}  // namespace
}  // namespace whart::net
