#include "whart/net/path.hpp"

#include <gtest/gtest.h>

#include "whart/common/contracts.hpp"

namespace whart::net {
namespace {

const link::LinkModel kModel{0.2, 0.9};

Network three_hop_network(NodeId out[3]) {
  Network network;
  out[0] = network.add_node("n1");
  out[1] = network.add_node("n2");
  out[2] = network.add_node("n3");
  network.add_link(out[0], out[1], kModel);
  network.add_link(out[1], out[2], kModel);
  network.add_link(out[2], kGateway, {0.1, 0.9});
  return network;
}

TEST(Path, BasicProperties) {
  NodeId n[3];
  const Network network = three_hop_network(n);
  const Path path({n[0], n[1], n[2], kGateway});
  EXPECT_EQ(path.hop_count(), 3u);
  EXPECT_EQ(path.source(), n[0]);
  EXPECT_EQ(path.destination(), kGateway);
  EXPECT_TRUE(path.is_uplink());
  EXPECT_EQ(path.hop(0), std::make_pair(n[0], n[1]));
  EXPECT_EQ(path.hop(2), std::make_pair(n[2], kGateway));
  EXPECT_THROW((void)path.hop(3), precondition_error);
}

TEST(Path, PeerPathIsNotUplink) {
  NodeId n[3];
  three_hop_network(n);
  const Path peer({n[0], n[1]});
  EXPECT_FALSE(peer.is_uplink());
}

TEST(Path, TooShortOrRepeatedThrows) {
  EXPECT_THROW(Path({kGateway}), precondition_error);
  EXPECT_THROW(Path({NodeId{1}, NodeId{1}}), precondition_error);
}

TEST(Path, ResolveLinksInHopOrder) {
  NodeId n[3];
  const Network network = three_hop_network(n);
  const Path path({n[0], n[1], n[2], kGateway});
  const std::vector<LinkId> links = path.resolve_links(network);
  ASSERT_EQ(links.size(), 3u);
  EXPECT_EQ(links[0], network.link_between(n[0], n[1]));
  EXPECT_EQ(links[2], network.link_between(n[2], kGateway));
}

TEST(Path, ResolveMissingLinkThrows) {
  NodeId n[3];
  const Network network = three_hop_network(n);
  const Path path({n[0], n[2], kGateway});  // n1 -- n3 does not exist
  EXPECT_THROW(path.resolve_links(network), precondition_error);
}

TEST(Path, HopModels) {
  NodeId n[3];
  const Network network = three_hop_network(n);
  const Path path({n[0], n[1], n[2], kGateway});
  const auto models = path.hop_models(network);
  ASSERT_EQ(models.size(), 3u);
  EXPECT_EQ(models[0], kModel);
  EXPECT_EQ(models[2], (link::LinkModel{0.1, 0.9}));
}

TEST(Path, UsesLink) {
  NodeId n[3];
  const Network network = three_hop_network(n);
  const Path path({n[1], n[2], kGateway});
  EXPECT_TRUE(path.uses_link(network, *network.link_between(n[1], n[2])));
  EXPECT_FALSE(path.uses_link(network, *network.link_between(n[0], n[1])));
}

TEST(Path, ToString) {
  NodeId n[3];
  const Network network = three_hop_network(n);
  const Path path({n[0], n[1], kGateway});
  EXPECT_EQ(path.to_string(network), "n1 -> n2 -> G");
}

TEST(Path, Concatenate) {
  NodeId n[3];
  three_hop_network(n);
  const Path peer({n[0], n[1]});
  const Path existing({n[1], n[2], kGateway});
  const Path composed = Path::concatenate(peer, existing);
  EXPECT_EQ(composed.nodes(),
            (std::vector<NodeId>{n[0], n[1], n[2], kGateway}));
  EXPECT_EQ(composed.hop_count(), 3u);
}

TEST(Path, ConcatenateMismatchThrows) {
  NodeId n[3];
  three_hop_network(n);
  const Path peer({n[0], n[2]});
  const Path existing({n[1], kGateway});
  EXPECT_THROW(Path::concatenate(peer, existing), precondition_error);
}

}  // namespace
}  // namespace whart::net
