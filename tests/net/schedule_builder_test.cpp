#include "whart/net/schedule_builder.hpp"

#include <gtest/gtest.h>

#include "whart/common/contracts.hpp"
#include "whart/net/typical_network.hpp"

namespace whart::net {
namespace {

struct SmallNet {
  Network network;
  std::vector<Path> paths;
};

SmallNet make_small() {
  SmallNet s;
  const auto m = link::LinkModel::from_availability(0.9);
  const NodeId a = s.network.add_node("a");
  const NodeId b = s.network.add_node("b");
  const NodeId c = s.network.add_node("c");
  s.network.add_link(a, kGateway, m);
  s.network.add_link(b, a, m);
  s.network.add_link(c, b, m);
  s.paths.emplace_back(std::vector<NodeId>{a, kGateway});            // 1 hop
  s.paths.emplace_back(std::vector<NodeId>{b, a, kGateway});         // 2 hops
  s.paths.emplace_back(std::vector<NodeId>{c, b, a, kGateway});      // 3 hops
  return s;
}

TEST(ScheduleBuilder, RequiredSlotsIsTotalHops) {
  const SmallNet s = make_small();
  EXPECT_EQ(required_uplink_slots(s.paths), 6u);
}

TEST(ScheduleBuilder, ShortestFirstOrdering) {
  const SmallNet s = make_small();
  const Schedule schedule =
      build_schedule(s.paths, 6, SchedulingPolicy::kShortestPathsFirst);
  EXPECT_EQ(schedule.path_slots(0).hop_slots, (std::vector<SlotNumber>{1}));
  EXPECT_EQ(schedule.path_slots(1).hop_slots,
            (std::vector<SlotNumber>{2, 3}));
  EXPECT_EQ(schedule.path_slots(2).hop_slots,
            (std::vector<SlotNumber>{4, 5, 6}));
}

TEST(ScheduleBuilder, LongestFirstOrdering) {
  const SmallNet s = make_small();
  const Schedule schedule =
      build_schedule(s.paths, 6, SchedulingPolicy::kLongestPathsFirst);
  EXPECT_EQ(schedule.path_slots(2).hop_slots,
            (std::vector<SlotNumber>{1, 2, 3}));
  EXPECT_EQ(schedule.path_slots(1).hop_slots,
            (std::vector<SlotNumber>{4, 5}));
  EXPECT_EQ(schedule.path_slots(0).hop_slots, (std::vector<SlotNumber>{6}));
}

TEST(ScheduleBuilder, DeclarationOrderKeepsInputOrder) {
  const SmallNet s = make_small();
  const Schedule schedule =
      build_schedule(s.paths, 10, SchedulingPolicy::kDeclarationOrder);
  EXPECT_EQ(schedule.path_slots(0).hop_slots, (std::vector<SlotNumber>{1}));
  EXPECT_EQ(schedule.path_slots(1).hop_slots,
            (std::vector<SlotNumber>{2, 3}));
}

TEST(ScheduleBuilder, ChainsAreContiguousAndInHopOrder) {
  const SmallNet s = make_small();
  for (const auto policy :
       {SchedulingPolicy::kShortestPathsFirst,
        SchedulingPolicy::kLongestPathsFirst,
        SchedulingPolicy::kDeclarationOrder}) {
    const Schedule schedule = build_schedule(s.paths, 6, policy);
    for (std::size_t p = 0; p < s.paths.size(); ++p) {
      const auto& slots = schedule.path_slots(p).hop_slots;
      for (std::size_t h = 1; h < slots.size(); ++h)
        EXPECT_EQ(slots[h], slots[h - 1] + 1) << "path " << p;
    }
  }
}

TEST(ScheduleBuilder, OverfullFrameThrows) {
  const SmallNet s = make_small();
  EXPECT_THROW(
      build_schedule(s.paths, 5, SchedulingPolicy::kShortestPathsFirst),
      precondition_error);
}

TEST(ScheduleBuilder, EmptyPathListThrows) {
  EXPECT_THROW(
      build_schedule({}, 5, SchedulingPolicy::kShortestPathsFirst),
      precondition_error);
}

TEST(ScheduleBuilder, ReproducesPaperEtaA) {
  // The paper's eta_a, verbatim (Section VI-A).
  const TypicalNetwork t = make_typical_network();
  const std::vector<std::pair<std::string, std::string>> expected{
      {"n1", "G"},  {"n2", "G"},  {"n3", "G"},  {"n4", "n1"}, {"n1", "G"},
      {"n5", "n1"}, {"n1", "G"},  {"n6", "n2"}, {"n2", "G"},  {"n7", "n3"},
      {"n3", "G"},  {"n8", "n3"}, {"n3", "G"},  {"n9", "n6"}, {"n6", "n2"},
      {"n2", "G"},  {"n10", "n7"}, {"n7", "n3"}, {"n3", "G"}};
  for (std::size_t i = 0; i < expected.size(); ++i) {
    const auto& entry = t.eta_a.entry(static_cast<SlotNumber>(i + 1));
    ASSERT_TRUE(entry.has_value()) << "slot " << i + 1;
    EXPECT_EQ(t.network.node_name(entry->from), expected[i].first)
        << "slot " << i + 1;
    EXPECT_EQ(t.network.node_name(entry->to), expected[i].second)
        << "slot " << i + 1;
  }
  EXPECT_FALSE(t.eta_a.entry(20).has_value()) << "slot 20 is idle";
}

}  // namespace
}  // namespace whart::net
