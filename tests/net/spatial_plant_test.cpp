#include "whart/net/spatial_plant.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "whart/common/contracts.hpp"
#include "whart/hart/network_analysis.hpp"

namespace whart::net {
namespace {

SpatialPlantProfile small_profile(std::uint64_t seed) {
  SpatialPlantProfile profile;
  profile.device_count = 12;
  profile.plant_radius_m = 100.0;
  profile.propagation.exponent = 3.2;
  profile.seed = seed;
  return profile;
}

TEST(SpatialPlant, DeterministicInSeed) {
  const SpatialPlant a = generate_spatial_plant(small_profile(4));
  const SpatialPlant b = generate_spatial_plant(small_profile(4));
  ASSERT_EQ(a.positions.size(), b.positions.size());
  for (std::size_t i = 0; i < a.positions.size(); ++i)
    EXPECT_EQ(a.positions[i], b.positions[i]);
  ASSERT_EQ(a.paths.size(), b.paths.size());
  for (std::size_t i = 0; i < a.paths.size(); ++i)
    EXPECT_EQ(a.paths[i], b.paths[i]);
}

TEST(SpatialPlant, GatewayAtOriginDevicesInsideDisc) {
  const SpatialPlant plant = generate_spatial_plant(small_profile(7));
  EXPECT_EQ(plant.positions[0], (Position{0.0, 0.0}));
  for (std::size_t i = 1; i < plant.positions.size(); ++i)
    EXPECT_LE(std::hypot(plant.positions[i].x, plant.positions[i].y),
              100.0 + 1e-9);
}

TEST(SpatialPlant, EveryDeviceReachesTheGateway) {
  const SpatialPlant plant = generate_spatial_plant(small_profile(11));
  EXPECT_EQ(plant.paths.size(), 12u);
  for (const Path& path : plant.paths) {
    EXPECT_TRUE(path.is_uplink());
    EXPECT_NO_THROW(path.resolve_links(plant.network));
  }
  EXPECT_NO_THROW(plant.schedule.validate_complete(plant.paths));
}

TEST(SpatialPlant, LinkQualityDecreasesWithDistance) {
  const SpatialPlant plant = generate_spatial_plant(small_profile(3));
  // Compare every pair of links: longer distance => no better
  // availability (deterministic propagation is monotone).
  for (LinkId id_a : plant.network.links()) {
    for (LinkId id_b : plant.network.links()) {
      const Link& a = plant.network.link(id_a);
      const Link& b = plant.network.link(id_b);
      const double da = distance_m(plant.positions[a.a.value],
                                   plant.positions[a.b.value]);
      const double db = distance_m(plant.positions[b.a.value],
                                   plant.positions[b.b.value]);
      if (da + 1e-9 < db) {
        EXPECT_GE(a.model.steady_state_availability() + 1e-12,
                  b.model.steady_state_availability());
      }
    }
  }
}

TEST(SpatialPlant, DenseCoreUsesFewHops) {
  // A tiny plant well inside radio range: everyone talks to the gateway
  // directly.
  SpatialPlantProfile profile = small_profile(5);
  profile.device_count = 6;
  profile.plant_radius_m = 10.0;
  const SpatialPlant plant = generate_spatial_plant(profile);
  for (const Path& path : plant.paths) EXPECT_EQ(path.hop_count(), 1u);
}

TEST(SpatialPlant, AnalyzableEndToEnd) {
  const SpatialPlant plant = generate_spatial_plant(small_profile(21));
  const hart::NetworkMeasures measures = hart::analyze_network(
      plant.network, plant.paths, plant.schedule, plant.superframe, 4);
  EXPECT_EQ(measures.per_path.size(), plant.paths.size());
  for (const auto& m : measures.per_path) {
    EXPECT_GT(m.reachability, 0.0);
    EXPECT_LE(m.reachability, 1.0);
  }
}

TEST(SpatialPlant, InvalidProfilesThrow) {
  SpatialPlantProfile profile = small_profile(1);
  profile.device_count = 0;
  EXPECT_THROW(generate_spatial_plant(profile), precondition_error);
  profile = small_profile(1);
  profile.plant_radius_m = 0.0;
  EXPECT_THROW(generate_spatial_plant(profile), precondition_error);
  profile = small_profile(1);
  profile.min_link_availability = 1.5;
  EXPECT_THROW(generate_spatial_plant(profile), precondition_error);
}

}  // namespace
}  // namespace whart::net
