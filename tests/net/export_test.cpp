#include "whart/net/export.hpp"

#include <sstream>

#include <gtest/gtest.h>

#include "whart/net/typical_network.hpp"

namespace whart::net {
namespace {

TEST(TopologyExport, TypicalNetworkRendersAllNodesAndLinks) {
  const TypicalNetwork t = make_typical_network();
  std::ostringstream out;
  write_topology_dot(out, t.network, t.paths);
  const std::string dot = out.str();
  EXPECT_NE(dot.find("graph plant"), std::string::npos);
  EXPECT_NE(dot.find("label=\"G\", shape=doublecircle"),
            std::string::npos);
  for (int i = 1; i <= 10; ++i)
    EXPECT_NE(dot.find("label=\"n" + std::to_string(i) + "\""),
              std::string::npos);
  // Ten undirected edges, all on routes in a tree topology.
  std::size_t edges = 0;
  for (std::size_t pos = dot.find(" -- "); pos != std::string::npos;
       pos = dot.find(" -- ", pos + 1))
    ++edges;
  EXPECT_EQ(edges, 10u);
  EXPECT_NE(dot.find("penwidth=2.5"), std::string::npos);
  EXPECT_NE(dot.find("label=\"0.83\""), std::string::npos);
}

TEST(TopologyExport, OptionsDisableLabelsAndHighlights) {
  const TypicalNetwork t = make_typical_network();
  TopologyDotOptions options;
  options.label_availability = false;
  options.highlight_routes = false;
  std::ostringstream out;
  write_topology_dot(out, t.network, {}, options);
  EXPECT_EQ(out.str().find("penwidth"), std::string::npos);
  EXPECT_EQ(out.str().find("label=\"0.8"), std::string::npos);
  EXPECT_NE(out.str().find("style=solid"), std::string::npos);
}

TEST(TopologyExport, SpatialVariantPinsPositions) {
  SpatialPlantProfile profile;
  profile.device_count = 5;
  profile.seed = 3;
  const SpatialPlant plant = generate_spatial_plant(profile);
  std::ostringstream out;
  write_topology_dot(out, plant);
  const std::string dot = out.str();
  EXPECT_NE(dot.find("pos=\"0,0!\""), std::string::npos);  // gateway
  // Every node carries a pinned position.
  std::size_t pins = 0;
  for (std::size_t pos = dot.find("pos=\""); pos != std::string::npos;
       pos = dot.find("pos=\"", pos + 1))
    ++pins;
  EXPECT_EQ(pins, plant.network.node_count());
}

}  // namespace
}  // namespace whart::net
