#include "whart/net/plant_generator.hpp"

#include <gtest/gtest.h>

#include "whart/common/contracts.hpp"
#include "whart/net/routing.hpp"

namespace whart::net {
namespace {

TEST(PlantGenerator, DeterministicInSeed) {
  PlantProfile profile;
  profile.seed = 7;
  const GeneratedPlant a = generate_plant(profile);
  const GeneratedPlant b = generate_plant(profile);
  ASSERT_EQ(a.paths.size(), b.paths.size());
  for (std::size_t i = 0; i < a.paths.size(); ++i)
    EXPECT_EQ(a.paths[i], b.paths[i]);
}

TEST(PlantGenerator, DifferentSeedsUsuallyDiffer) {
  PlantProfile profile;
  profile.device_count = 20;
  profile.seed = 1;
  const GeneratedPlant a = generate_plant(profile);
  profile.seed = 2;
  const GeneratedPlant b = generate_plant(profile);
  bool any_difference = false;
  for (std::size_t i = 0; i < a.paths.size() && !any_difference; ++i)
    any_difference = !(a.paths[i] == b.paths[i]);
  EXPECT_TRUE(any_difference);
}

TEST(PlantGenerator, HopMixFollowsProfile) {
  PlantProfile profile;
  profile.device_count = 20;
  const GeneratedPlant plant = generate_plant(profile);
  int hops[5] = {0, 0, 0, 0, 0};
  for (const Path& p : plant.paths) ++hops[p.hop_count()];
  EXPECT_EQ(hops[1], 6);  // 30% of 20
  EXPECT_EQ(hops[2], 10); // 50% of 20
  EXPECT_EQ(hops[3], 3);  // 15% of 20
  EXPECT_EQ(hops[4], 1);  // 5% of 20
}

TEST(PlantGenerator, EveryDeviceHasAPathToTheGateway) {
  PlantProfile profile;
  profile.device_count = 30;
  profile.seed = 11;
  const GeneratedPlant plant = generate_plant(profile);
  EXPECT_EQ(plant.paths.size(), 30u);
  for (const Path& p : plant.paths) {
    EXPECT_TRUE(p.is_uplink());
    EXPECT_NO_THROW(p.resolve_links(plant.network));
  }
}

TEST(PlantGenerator, ScheduleCoversEveryHop) {
  const GeneratedPlant plant = generate_plant(PlantProfile{});
  EXPECT_NO_THROW(plant.schedule.validate_complete(plant.paths));
  EXPECT_EQ(plant.superframe.uplink_slots,
            required_uplink_slots(plant.paths));
}

TEST(PlantGenerator, LinkAvailabilitiesWithinRange) {
  PlantProfile profile;
  profile.min_availability = 0.85;
  profile.max_availability = 0.95;
  profile.device_count = 25;
  const GeneratedPlant plant = generate_plant(profile);
  for (LinkId id : plant.network.links()) {
    const double pi =
        plant.network.link(id).model.steady_state_availability();
    EXPECT_GE(pi, 0.85 - 1e-12);
    EXPECT_LE(pi, 0.95 + 1e-12);
  }
}

TEST(PlantGenerator, SingleDevicePlant) {
  PlantProfile profile;
  profile.device_count = 1;
  const GeneratedPlant plant = generate_plant(profile);
  EXPECT_EQ(plant.paths.size(), 1u);
  EXPECT_EQ(plant.paths[0].hop_count(), 1u);
}

TEST(PlantGenerator, InvalidProfileThrows) {
  PlantProfile profile;
  profile.device_count = 0;
  EXPECT_THROW(generate_plant(profile), precondition_error);
  profile = PlantProfile{};
  profile.min_availability = 0.9;
  profile.max_availability = 0.8;
  EXPECT_THROW(generate_plant(profile), precondition_error);
  profile = PlantProfile{};
  profile.fraction_one_hop = 0.5;  // fractions no longer sum to 1
  EXPECT_THROW(generate_plant(profile), precondition_error);
}

TEST(PlantGenerator, RoutedDistancesMatchAssignedDepths) {
  PlantProfile profile;
  profile.device_count = 40;
  profile.seed = 3;
  const GeneratedPlant plant = generate_plant(profile);
  const auto distances = hop_distances(plant.network);
  for (std::size_t i = 0; i < plant.paths.size(); ++i) {
    const NodeId source = plant.paths[i].source();
    ASSERT_TRUE(distances[source.value].has_value());
    EXPECT_EQ(*distances[source.value], plant.paths[i].hop_count());
  }
}

}  // namespace
}  // namespace whart::net
