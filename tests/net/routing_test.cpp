#include "whart/net/routing.hpp"

#include <gtest/gtest.h>

#include "whart/common/contracts.hpp"
#include "whart/net/typical_network.hpp"

namespace whart::net {
namespace {

TEST(Routing, SingleHop) {
  Network network;
  const NodeId n1 = network.add_node("n1");
  network.add_link(n1, kGateway, link::LinkModel::from_availability(0.9));
  const auto path = shortest_uplink_path(network, n1);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->nodes(), (std::vector<NodeId>{n1, kGateway}));
}

TEST(Routing, PicksShortestOfTwoRoutes) {
  Network network;
  const NodeId a = network.add_node("a");
  const NodeId b = network.add_node("b");
  const NodeId c = network.add_node("c");
  const auto m = link::LinkModel::from_availability(0.9);
  // c -- G directly, and c -- b -- a -- G.
  network.add_link(a, kGateway, m);
  network.add_link(b, a, m);
  network.add_link(c, b, m);
  network.add_link(c, kGateway, m);
  const auto path = shortest_uplink_path(network, c);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->hop_count(), 1u);
}

TEST(Routing, BreaksTiesByAvailability) {
  Network network;
  const NodeId a = network.add_node("a");
  const NodeId b = network.add_node("b");
  const NodeId c = network.add_node("c");
  network.add_link(a, kGateway, link::LinkModel::from_availability(0.80));
  network.add_link(b, kGateway, link::LinkModel::from_availability(0.95));
  network.add_link(c, a, link::LinkModel::from_availability(0.9));
  network.add_link(c, b, link::LinkModel::from_availability(0.9));
  const auto path = shortest_uplink_path(network, c);
  ASSERT_TRUE(path.has_value());
  ASSERT_EQ(path->hop_count(), 2u);
  EXPECT_EQ(path->nodes()[1], b) << "should relay via the better link";
}

TEST(Routing, UnreachableNodeGivesNullopt) {
  Network network;
  const NodeId lonely = network.add_node("lonely");
  EXPECT_FALSE(shortest_uplink_path(network, lonely).has_value());
}

TEST(Routing, GatewayAsSourceThrows) {
  Network network;
  network.add_node("n1");
  EXPECT_THROW(shortest_uplink_path(network, kGateway), precondition_error);
}

TEST(Routing, AvoidingALinkReroutes) {
  Network network;
  const NodeId a = network.add_node("a");
  const NodeId b = network.add_node("b");
  const auto m = link::LinkModel::from_availability(0.9);
  const LinkId direct = network.add_link(a, kGateway, m);
  network.add_link(a, b, m);
  network.add_link(b, kGateway, m);
  const auto path = shortest_uplink_path_avoiding(network, a, {direct});
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->nodes(), (std::vector<NodeId>{a, b, kGateway}));
}

TEST(Routing, AvoidingOnlyRouteGivesNullopt) {
  Network network;
  const NodeId a = network.add_node("a");
  const LinkId only =
      network.add_link(a, kGateway, link::LinkModel::from_availability(0.9));
  EXPECT_FALSE(shortest_uplink_path_avoiding(network, a, {only}).has_value());
}

TEST(Routing, UplinkPathsRecoverTypicalNetworkPaths) {
  const TypicalNetwork typical = make_typical_network();
  const std::vector<Path> routed = uplink_paths(typical.network);
  ASSERT_EQ(routed.size(), typical.paths.size());
  for (std::size_t i = 0; i < routed.size(); ++i)
    EXPECT_EQ(routed[i], typical.paths[i]) << "path " << i + 1;
}

TEST(Routing, HopDistancesOfTypicalNetwork) {
  const TypicalNetwork typical = make_typical_network();
  const auto distances = hop_distances(typical.network);
  EXPECT_EQ(distances[0], 0u);
  // n1..n3 one hop, n4..n8 two hops, n9/n10 three hops.
  for (std::uint32_t i = 1; i <= 3; ++i) EXPECT_EQ(distances[i], 1u);
  for (std::uint32_t i = 4; i <= 8; ++i) EXPECT_EQ(distances[i], 2u);
  for (std::uint32_t i = 9; i <= 10; ++i) EXPECT_EQ(distances[i], 3u);
}

TEST(Routing, DisconnectedDeviceMakesUplinkPathsThrow) {
  Network network;
  network.add_node("connected");
  network.add_node("island");
  network.add_link(*network.find_node("connected"), kGateway,
                   link::LinkModel::from_availability(0.9));
  EXPECT_THROW(uplink_paths(network), precondition_error);
}

}  // namespace
}  // namespace whart::net
