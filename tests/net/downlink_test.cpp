#include "whart/net/downlink.hpp"

#include <gtest/gtest.h>

#include "whart/common/contracts.hpp"
#include "whart/net/typical_network.hpp"

namespace whart::net {
namespace {

TEST(Downlink, MirrorReversesTheChain) {
  const TypicalNetwork t = make_typical_network();
  const Path down = mirrored_downlink_path(t.paths[9]);  // n10 3-hop
  EXPECT_EQ(down.source(), kGateway);
  EXPECT_EQ(down.destination(), *t.network.find_node("n10"));
  EXPECT_EQ(down.hop_count(), t.paths[9].hop_count());
  EXPECT_FALSE(down.is_uplink());
  EXPECT_EQ(down.to_string(t.network), "G -> n3 -> n7 -> n10");
}

TEST(Downlink, MirrorRequiresUplinkPath) {
  const TypicalNetwork t = make_typical_network();
  const Path peer({*t.network.find_node("n4"), *t.network.find_node("n1")});
  EXPECT_THROW(mirrored_downlink_path(peer), precondition_error);
}

TEST(Downlink, MirroredSetPreservesOrderAndLinks) {
  const TypicalNetwork t = make_typical_network();
  const auto downs = mirrored_downlink_paths(t.paths);
  ASSERT_EQ(downs.size(), t.paths.size());
  for (std::size_t p = 0; p < downs.size(); ++p) {
    // The same physical links are traversed (undirected), in reverse.
    auto up_links = t.paths[p].resolve_links(t.network);
    auto down_links = downs[p].resolve_links(t.network);
    std::reverse(down_links.begin(), down_links.end());
    EXPECT_EQ(up_links, down_links) << "path " << p + 1;
  }
}

TEST(Downlink, ScheduleBuildsAndValidates) {
  const TypicalNetwork t = make_typical_network();
  const auto downs = mirrored_downlink_paths(t.paths);
  const Schedule schedule = build_downlink_schedule(
      downs, t.superframe.downlink_slots,
      SchedulingPolicy::kShortestPathsFirst);
  EXPECT_NO_THROW(schedule.validate_complete(downs));
  // First slot carries the gateway's transmission for the first 1-hop
  // downlink.
  const auto& entry = schedule.entry(1);
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->from, kGateway);
}

TEST(Downlink, RejectsNonGatewaySources) {
  const TypicalNetwork t = make_typical_network();
  EXPECT_THROW(build_downlink_schedule(t.paths, 20,
                                       SchedulingPolicy::kShortestPathsFirst),
               precondition_error);
}

}  // namespace
}  // namespace whart::net
