#include "whart/net/topology.hpp"

#include <gtest/gtest.h>

#include "whart/common/contracts.hpp"

namespace whart::net {
namespace {

const link::LinkModel kModel{0.2, 0.9};

TEST(Network, StartsWithGatewayOnly) {
  const Network network;
  EXPECT_EQ(network.node_count(), 1u);
  EXPECT_EQ(network.node_name(kGateway), "G");
  EXPECT_EQ(network.find_node("G"), kGateway);
}

TEST(Network, CustomGatewayName) {
  const Network network("gateway-1");
  EXPECT_EQ(network.node_name(kGateway), "gateway-1");
}

TEST(Network, AddNodesAssignsSequentialIds) {
  Network network;
  const NodeId n1 = network.add_node("n1");
  const NodeId n2 = network.add_node("n2");
  EXPECT_EQ(n1.value, 1u);
  EXPECT_EQ(n2.value, 2u);
  EXPECT_EQ(network.node_count(), 3u);
  EXPECT_EQ(network.find_node("n2"), n2);
}

TEST(Network, DuplicateOrEmptyNameThrows) {
  Network network;
  network.add_node("n1");
  EXPECT_THROW(network.add_node("n1"), precondition_error);
  EXPECT_THROW(network.add_node(""), precondition_error);
  EXPECT_THROW(network.add_node("G"), precondition_error);
}

TEST(Network, AddAndQueryLinks) {
  Network network;
  const NodeId n1 = network.add_node("n1");
  const LinkId link = network.add_link(n1, kGateway, kModel);
  EXPECT_EQ(network.link_count(), 1u);
  EXPECT_EQ(network.link_between(n1, kGateway), link);
  EXPECT_EQ(network.link_between(kGateway, n1), link);
  EXPECT_TRUE(network.link(link).connects(n1, kGateway));
  EXPECT_EQ(network.link(link).model, kModel);
}

TEST(Network, InvalidLinksThrow) {
  Network network;
  const NodeId n1 = network.add_node("n1");
  EXPECT_THROW(network.add_link(n1, n1, kModel), precondition_error);
  EXPECT_THROW(network.add_link(n1, NodeId{9}, kModel), precondition_error);
  network.add_link(n1, kGateway, kModel);
  EXPECT_THROW(network.add_link(kGateway, n1, kModel), precondition_error);
}

TEST(Network, Neighbors) {
  Network network;
  const NodeId n1 = network.add_node("n1");
  const NodeId n2 = network.add_node("n2");
  const NodeId n3 = network.add_node("n3");
  network.add_link(n2, kGateway, kModel);
  network.add_link(n1, kGateway, kModel);
  network.add_link(n3, n1, kModel);
  EXPECT_EQ(network.neighbors(kGateway), (std::vector<NodeId>{n1, n2}));
  EXPECT_EQ(network.neighbors(n1), (std::vector<NodeId>{kGateway, n3}));
  EXPECT_TRUE(network.neighbors(n2).size() == 1);
}

TEST(Network, SetLinkModels) {
  Network network;
  const NodeId n1 = network.add_node("n1");
  const NodeId n2 = network.add_node("n2");
  const LinkId l1 = network.add_link(n1, kGateway, kModel);
  network.add_link(n2, kGateway, kModel);

  const link::LinkModel better{0.05, 0.95};
  network.set_link_model(l1, better);
  EXPECT_EQ(network.link(l1).model, better);

  network.set_all_link_models(better);
  for (LinkId id : network.links())
    EXPECT_EQ(network.link(id).model, better);
}

TEST(Network, LinkIdOutOfRangeThrows) {
  const Network network;
  EXPECT_THROW((void)network.link(LinkId{0}), precondition_error);
}

}  // namespace
}  // namespace whart::net
