#include "whart/hart/path_cache.hpp"

#include <vector>

#include <gtest/gtest.h>

#include "whart/common/contracts.hpp"
#include "whart/hart/path_analysis.hpp"
#include "whart/net/plant_generator.hpp"

namespace whart::hart {
namespace {

PathModelConfig config_with_slots(std::vector<net::SlotNumber> slots,
                                  std::uint32_t fup = 20,
                                  std::uint32_t is = 4) {
  PathModelConfig config;
  config.hop_slots = std::move(slots);
  config.superframe = net::SuperframeConfig::symmetric(fup);
  config.reporting_interval = is;
  return config;
}

PathMeasures direct_measures(const PathModelConfig& config,
                             const std::vector<double>& availability) {
  const PathModel model(config);
  const SteadyStateLinks links(availability);
  return compute_path_measures(model, links);
}

/// Every scalar and vector of the measures must match bit for bit — the
/// cache's contract is exactness, not approximation.
void expect_identical(const PathMeasures& a, const PathMeasures& b) {
  EXPECT_EQ(a.cycle_probabilities, b.cycle_probabilities);
  EXPECT_EQ(a.reachability, b.reachability);
  EXPECT_EQ(a.discard_probability, b.discard_probability);
  EXPECT_EQ(a.delays_ms, b.delays_ms);
  EXPECT_EQ(a.delay_distribution, b.delay_distribution);
  EXPECT_EQ(a.expected_delay_ms, b.expected_delay_ms);
  EXPECT_EQ(a.expected_transmissions, b.expected_transmissions);
  EXPECT_EQ(a.utilization, b.utilization);
  EXPECT_EQ(a.utilization_delivered, b.utilization_delivered);
  EXPECT_EQ(a.expected_intervals_to_first_loss,
            b.expected_intervals_to_first_loss);
  EXPECT_EQ(a.delay_jitter_ms, b.delay_jitter_ms);
}

TEST(PathAnalysisCache, CachedEqualsDirectBitForBit) {
  PathAnalysisCache cache;
  const std::vector<double> availability{0.83, 0.91, 0.87};
  for (const auto& slots : std::vector<std::vector<net::SlotNumber>>{
           {1, 2, 3}, {4, 5, 6}, {7, 12, 15}, {9, 3, 17}}) {
    const PathModelConfig config = config_with_slots(slots);
    expect_identical(cache.measures(config, availability),
                     direct_measures(config, availability));
  }
}

TEST(PathAnalysisCache, TranslatedConfigsShareOneSolve) {
  PathAnalysisCache cache;
  const std::vector<double> availability{0.9, 0.8};
  // Same relative layout, shifted by 0 / 4 / 17 slots.
  (void)cache.measures(config_with_slots({1, 2}), availability);
  (void)cache.measures(config_with_slots({5, 6}), availability);
  (void)cache.measures(config_with_slots({18, 19}), availability);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(PathAnalysisCache, FingerprintSeparatesDifferentStructures) {
  const std::vector<double> a{0.9, 0.8};
  const std::vector<double> b{0.8, 0.9};
  const PathModelConfig base = config_with_slots({1, 2});
  // Same shape, different availabilities (including order).
  EXPECT_NE(PathAnalysisCache::fingerprint(base, a),
            PathAnalysisCache::fingerprint(base, b));
  // Different gap between the hops.
  EXPECT_NE(PathAnalysisCache::fingerprint(base, a),
            PathAnalysisCache::fingerprint(config_with_slots({1, 3}), a));
  // Different reporting interval.
  EXPECT_NE(PathAnalysisCache::fingerprint(base, a),
            PathAnalysisCache::fingerprint(
                config_with_slots({1, 2}, 20, 8), a));
  // Translation equivalence is exactly a constant shift.
  EXPECT_EQ(PathAnalysisCache::fingerprint(base, a),
            PathAnalysisCache::fingerprint(config_with_slots({11, 12}), a));
}

TEST(PathAnalysisCache, MidFrameTtlIsNotTranslated) {
  const std::vector<double> availability{0.9, 0.8};
  PathModelConfig late = config_with_slots({18, 19});
  late.ttl = 30;
  PathModelConfig early = config_with_slots({1, 2});
  early.ttl = 30;
  // With a mid-frame TTL the late chain gets fewer attempts than the
  // early one, so the two must not share a fingerprint.
  EXPECT_NE(PathAnalysisCache::fingerprint(late, availability),
            PathAnalysisCache::fingerprint(early, availability));
  PathAnalysisCache cache;
  expect_identical(cache.measures(late, availability),
                   direct_measures(late, availability));
  expect_identical(cache.measures(early, availability),
                   direct_measures(early, availability));
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(PathAnalysisCache, DelaysFollowTheCallerGatewaySlot) {
  PathAnalysisCache cache;
  const std::vector<double> availability{0.9};
  const PathMeasures first = cache.measures(config_with_slots({1}),
                                            availability);
  const PathMeasures shifted = cache.measures(config_with_slots({7}),
                                              availability);
  EXPECT_EQ(cache.hits(), 1u);  // shared solve...
  EXPECT_EQ(first.cycle_probabilities, shifted.cycle_probabilities);
  // ...but each caller's delays use its own gateway slot.
  EXPECT_DOUBLE_EQ(first.delays_ms[0], 10.0);
  EXPECT_DOUBLE_EQ(shifted.delays_ms[0], 70.0);
}

TEST(PathAnalysisCache, RetrySlotsTranslateWithTheChain) {
  const std::vector<double> availability{0.7, 0.7};
  PathModelConfig with_retry = config_with_slots({3, 5});
  with_retry.retry_slots = {4, 6};
  PathModelConfig shifted = config_with_slots({7, 9});
  shifted.retry_slots = {8, 10};
  EXPECT_EQ(PathAnalysisCache::fingerprint(with_retry, availability),
            PathAnalysisCache::fingerprint(shifted, availability));
  PathAnalysisCache cache;
  expect_identical(cache.measures(shifted, availability),
                   direct_measures(shifted, availability));
  // A missing retry slot (0) is not a translatable opportunity.
  PathModelConfig partial = config_with_slots({3, 5});
  partial.retry_slots = {4, 0};
  EXPECT_NE(PathAnalysisCache::fingerprint(with_retry, availability),
            PathAnalysisCache::fingerprint(partial, availability));
}

TEST(PathAnalysisCache, CollapsesQuantizedGeneratedPlant) {
  net::PlantProfile profile;
  profile.device_count = 200;
  profile.seed = 7;
  profile.availability_levels = 4;  // four link quality classes
  const net::GeneratedPlant plant = net::generate_plant(profile);

  PathAnalysisCache cache;
  for (std::size_t p = 0; p < plant.paths.size(); ++p) {
    const PathModelConfig config = PathModelConfig::from_schedule(
        plant.schedule, p, plant.superframe, 4);
    std::vector<double> availability;
    for (const link::LinkModel& model :
         plant.paths[p].hop_models(plant.network))
      availability.push_back(model.steady_state_availability());
    const PathMeasures cached = cache.measures(config, availability);
    expect_identical(cached, direct_measures(config, availability));
  }
  EXPECT_EQ(cache.hits() + cache.misses(), plant.paths.size());
  // With 4 quality classes the 200 paths collapse to far fewer distinct
  // solves (4 one-hop keys, <= 16 two-hop keys, ...).
  EXPECT_LT(cache.misses(), plant.paths.size() / 2);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
}

TEST(PathAnalysisCache, RejectsTooFewAvailabilities) {
  PathAnalysisCache cache;
  EXPECT_THROW(cache.measures(config_with_slots({1, 2}), {0.9}),
               precondition_error);
}

TEST(PathAnalysisCache, DiagnosticsMarkCacheHits) {
  PathAnalysisCache cache;
  const std::vector<double> availability{0.9, 0.8};
  const PathMeasures first =
      cache.measures(config_with_slots({1, 2}), availability);
  ASSERT_TRUE(first.diagnostics.has_value());
  EXPECT_FALSE(first.diagnostics->from_cache);
  EXPECT_GT(first.diagnostics->dtmc_states, 0u);

  const PathMeasures second =
      cache.measures(config_with_slots({1, 2}), availability);
  ASSERT_TRUE(second.diagnostics.has_value());
  EXPECT_TRUE(second.diagnostics->from_cache);
  EXPECT_EQ(second.diagnostics->solve_ns, 0u);
  // The structural fields survive the round trip through the entry.
  EXPECT_EQ(second.diagnostics->dtmc_states, first.diagnostics->dtmc_states);
  EXPECT_EQ(second.diagnostics->transient_states,
            first.diagnostics->transient_states);
}

TEST(PathAnalysisCache, CapacityBoundEvicts) {
  PathAnalysisCache cache(2);
  EXPECT_EQ(cache.max_entries(), 2u);
  const std::vector<double> availability{0.9};
  // Three structurally distinct one-hop configs (different Fup so
  // translation cannot collapse them).
  (void)cache.measures(config_with_slots({1}, 10), availability);
  (void)cache.measures(config_with_slots({1}, 11), availability);
  (void)cache.measures(config_with_slots({1}, 12), availability);
  EXPECT_EQ(cache.misses(), 3u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.size(), 2u);

  // Evicted or not, results stay exact.
  const PathModelConfig config = config_with_slots({1}, 10);
  expect_identical(cache.measures(config, availability),
                   direct_measures(config, availability));
}

TEST(PathAnalysisCache, UnboundedByDefault) {
  PathAnalysisCache cache;
  EXPECT_EQ(cache.max_entries(), 0u);
  const std::vector<double> availability{0.9};
  for (std::uint32_t fup = 5; fup < 25; ++fup)
    (void)cache.measures(config_with_slots({1}, fup), availability);
  EXPECT_EQ(cache.size(), 20u);
  EXPECT_EQ(cache.evictions(), 0u);
}

}  // namespace
}  // namespace whart::hart
