#include "whart/hart/path_model.hpp"

#include <numeric>

#include <gtest/gtest.h>

#include "whart/common/contracts.hpp"
#include "whart/markov/transient.hpp"

namespace whart::hart {
namespace {

/// The paper's Section V-A example: 3-hop path, Fup = 7, schedule
/// (*, *, <n1,n2>, *, *, <n2,n3>, <n3,G>), i.e. hop slots 3, 6, 7.
PathModelConfig example_config(std::uint32_t is) {
  PathModelConfig config;
  config.hop_slots = {3, 6, 7};
  config.superframe = net::SuperframeConfig::symmetric(7);
  config.reporting_interval = is;
  return config;
}

TEST(PathModelConfig, Derived) {
  const PathModelConfig config = example_config(4);
  EXPECT_EQ(config.hop_count(), 3u);
  EXPECT_EQ(config.horizon(), 28u);
  EXPECT_EQ(config.effective_ttl(), 28u);
  EXPECT_EQ(config.gateway_slot(), 7u);
}

TEST(PathModel, InvalidConfigsThrow) {
  PathModelConfig config = example_config(1);
  config.hop_slots = {};
  EXPECT_THROW(PathModel{config}, precondition_error);
  config = example_config(1);
  config.hop_slots = {3, 8, 7};  // beyond Fup
  EXPECT_THROW(PathModel{config}, precondition_error);
  config = example_config(1);
  config.hop_slots = {3, 3, 7};  // duplicate slot
  EXPECT_THROW(PathModel{config}, precondition_error);
  config = example_config(0);
  EXPECT_THROW(PathModel{config}, precondition_error);
}

TEST(PathModel, SingleCycleGoalProbabilityIsProductOfAvailabilities) {
  const PathModel model(example_config(1));
  const SteadyStateLinks links(3, link::LinkModel::from_availability(0.75));
  const PathTransientResult result = model.analyze(links);
  ASSERT_EQ(result.cycle_probabilities.size(), 1u);
  EXPECT_NEAR(result.cycle_probabilities[0], 0.75 * 0.75 * 0.75, 1e-12);
  EXPECT_NEAR(result.discard_probability,
              1.0 - result.cycle_probabilities[0], 1e-12);
}

TEST(PathModel, MassIsConservedAtHorizon) {
  const PathModel model(example_config(4));
  const SteadyStateLinks links(3, link::LinkModel::from_availability(0.75));
  const PathTransientResult result = model.analyze(links);
  const double mass =
      std::accumulate(result.cycle_probabilities.begin(),
                      result.cycle_probabilities.end(),
                      result.discard_probability);
  EXPECT_NEAR(mass, 1.0, 1e-12);
}

TEST(PathModel, GoalTrajectoryIsMonotoneStepFunction) {
  const PathModel model(example_config(4));
  const SteadyStateLinks links(3, link::LinkModel::from_availability(0.75));
  const PathTransientResult result = model.analyze(links);
  ASSERT_EQ(result.goal_trajectory.size(), 29u);  // t = 0..28
  for (std::size_t t = 1; t < result.goal_trajectory.size(); ++t)
    for (std::size_t i = 0; i < 4; ++i)
      EXPECT_GE(result.goal_trajectory[t][i],
                result.goal_trajectory[t - 1][i]);
  // Goal i can only fill at its cycle's gateway slot: t = 7, 14, 21, 28.
  EXPECT_DOUBLE_EQ(result.goal_trajectory[6][0], 0.0);
  EXPECT_GT(result.goal_trajectory[7][0], 0.0);
  EXPECT_DOUBLE_EQ(result.goal_trajectory[13][1], 0.0);
  EXPECT_GT(result.goal_trajectory[14][1], 0.0);
}

TEST(PathModel, GoalStateNamesFollowPaper) {
  const PathModel model(example_config(4));
  EXPECT_EQ(model.goal_state_name(1), "R7");
  EXPECT_EQ(model.goal_state_name(2), "R14");
  EXPECT_EQ(model.goal_state_name(4), "R28");
  EXPECT_THROW((void)model.goal_state_name(0), precondition_error);
  EXPECT_THROW((void)model.goal_state_name(5), precondition_error);
}

TEST(PathModel, ExplicitDtmcMatchesForwardAnalysis) {
  const PathModel model(example_config(2));
  const SteadyStateLinks links(3, link::LinkModel::from_availability(0.83));
  const markov::Dtmc dtmc = model.to_dtmc(links);

  const linalg::Vector final = markov::distribution_after(
      dtmc, markov::point_distribution(dtmc.num_states(), 0),
      model.config().horizon());

  const PathTransientResult forward = model.analyze(links);
  const auto r7 = dtmc.find_state("R7");
  const auto r14 = dtmc.find_state("R14");
  const auto discard = dtmc.find_state("Discard");
  ASSERT_TRUE(r7 && r14 && discard);
  EXPECT_NEAR(final[*r7], forward.cycle_probabilities[0], 1e-12);
  EXPECT_NEAR(final[*r14], forward.cycle_probabilities[1], 1e-12);
  EXPECT_NEAR(final[*discard], forward.discard_probability, 1e-12);
}

TEST(PathModel, DtmcHasPaperStateNames) {
  const PathModel model(example_config(1));
  const SteadyStateLinks links(3, link::LinkModel::from_availability(0.75));
  const markov::Dtmc dtmc = model.to_dtmc(links);
  // The initial state is the fresh message at the source: "(1,-,-)".
  EXPECT_EQ(dtmc.state_name(model.initial_state()), "(1,-,-)");
  EXPECT_TRUE(dtmc.find_state("Discard").has_value());
  EXPECT_TRUE(dtmc.find_state("R7").has_value());
}

TEST(PathModel, StateCountGrowsLinearlyInReportingInterval) {
  // Paper Section IV: complexity O(Is * Fup * n).
  const std::size_t s1 = PathModel(example_config(1)).state_count();
  const std::size_t s2 = PathModel(example_config(2)).state_count();
  const std::size_t s4 = PathModel(example_config(4)).state_count();
  EXPECT_LT(s1, s2);
  EXPECT_LT(s2, s4);
  EXPECT_LE(s4, 4 * 7 * 3 + 4 + 1);
}

TEST(PathModel, TtlShorterThanHorizonDiscardsEarly) {
  PathModelConfig config = example_config(4);
  config.ttl = 7;  // only the first cycle is allowed
  const PathModel model(config);
  const SteadyStateLinks links(3, link::LinkModel::from_availability(0.75));
  const PathTransientResult result = model.analyze(links);
  EXPECT_NEAR(result.cycle_probabilities[0], 0.421875, 1e-12);
  EXPECT_DOUBLE_EQ(result.cycle_probabilities[1], 0.0);
  EXPECT_NEAR(result.discard_probability, 1.0 - 0.421875, 1e-12);
}

TEST(PathModel, OutOfOrderScheduleNeedsExtraCycle) {
  // Hop 2's slot precedes hop 1's: the message always waits one cycle.
  PathModelConfig config;
  config.hop_slots = {5, 2};
  config.superframe = net::SuperframeConfig::symmetric(6);
  config.reporting_interval = 2;
  const PathModel model(config);
  const SteadyStateLinks links(2, link::LinkModel::from_availability(1.0));
  const PathTransientResult result = model.analyze(links);
  EXPECT_DOUBLE_EQ(result.cycle_probabilities[0], 0.0);
  EXPECT_DOUBLE_EQ(result.cycle_probabilities[1], 1.0);
}

TEST(PathModel, PerfectLinksGiveDegenerateChain) {
  const PathModel model(example_config(3));
  const SteadyStateLinks links(3, link::LinkModel::from_availability(1.0));
  const PathTransientResult result = model.analyze(links);
  EXPECT_DOUBLE_EQ(result.cycle_probabilities[0], 1.0);
  EXPECT_DOUBLE_EQ(result.discard_probability, 0.0);
  // The frozen DTMC stays stochastic even with ps = 1 transitions.
  EXPECT_NO_THROW(model.to_dtmc(links));
}

TEST(PathModel, ExpectedTransmissionsSingleCycle) {
  // Is = 1: the message attempts hop 1 always, hop 2 w.p. ps, hop 3 w.p.
  // ps^2 => E[attempts] = 1 + ps + ps^2.
  const PathModel model(example_config(1));
  const double ps = 0.75;
  const SteadyStateLinks links(3, link::LinkModel::from_availability(ps));
  const PathTransientResult result = model.analyze(links);
  EXPECT_NEAR(result.expected_transmissions, 1.0 + ps + ps * ps, 1e-12);
}

TEST(PathModel, PerHopAttemptsSumToTotalAndDecreaseAlongPath) {
  const PathModel model(example_config(4));
  const SteadyStateLinks links(3, link::LinkModel::from_availability(0.75));
  const PathTransientResult result = model.analyze(links);
  ASSERT_EQ(result.expected_transmissions_per_hop.size(), 3u);
  double total = 0.0;
  for (double a : result.expected_transmissions_per_hop) total += a;
  EXPECT_NEAR(total, result.expected_transmissions, 1e-12);
  // Later hops see the message only after earlier hops succeeded, so
  // their attempt counts cannot exceed the first hop's.
  EXPECT_GE(result.expected_transmissions_per_hop[0],
            result.expected_transmissions_per_hop[1]);
  EXPECT_GE(result.expected_transmissions_per_hop[1],
            result.expected_transmissions_per_hop[2]);
}

TEST(PathModel, ProviderWithTooFewHopsThrows) {
  const PathModel model(example_config(1));
  const SteadyStateLinks links(2, link::LinkModel::from_availability(0.9));
  EXPECT_THROW(model.analyze(links), precondition_error);
}

}  // namespace
}  // namespace whart::hart
