// The symbolic/numeric split (DESIGN.md §12): a PathModelSkeleton's
// numeric refill must reproduce a fresh PathModel::analyze bit for bit —
// for both transient kernels, on cold and warm workspaces, across a
// generated scenario corpus and in the degenerate regimes where the
// refill falls back to a fresh solve.  Plus the shape-only fingerprint
// that decides when two paths may share one skeleton.
#include "whart/hart/path_model.hpp"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "whart/hart/link_probability.hpp"
#include "whart/hart/path_cache.hpp"
#include "whart/net/superframe.hpp"
#include "whart/verify/scenario.hpp"

namespace whart::hart {
namespace {

// Exact (==, not approximate) comparison: the split's whole contract is
// bitwise equality, so any rounding difference is a bug.
void expect_identical(const PathTransientResult& fresh,
                      const PathTransientResult& refilled) {
  EXPECT_EQ(refilled.cycle_probabilities, fresh.cycle_probabilities);
  EXPECT_EQ(refilled.discard_probability, fresh.discard_probability);
  EXPECT_EQ(refilled.trajectory_stride, fresh.trajectory_stride);
  ASSERT_EQ(refilled.goal_trajectory.size(), fresh.goal_trajectory.size());
  for (std::size_t k = 0; k < fresh.goal_trajectory.size(); ++k)
    EXPECT_EQ(refilled.goal_trajectory[k], fresh.goal_trajectory[k]);
  EXPECT_EQ(refilled.expected_transmissions, fresh.expected_transmissions);
  EXPECT_EQ(refilled.expected_transmissions_per_hop,
            fresh.expected_transmissions_per_hop);
  EXPECT_EQ(refilled.expected_transmissions_delivered,
            fresh.expected_transmissions_delivered);
}

void expect_refill_matches_fresh(const PathModelConfig& config,
                                 const std::vector<double>& availabilities) {
  const PathModel model(config);
  const PathModelSkeleton skeleton(config);
  const SteadyStateLinks links{availabilities};
  SolveWorkspace workspace;
  PathTransientResult refilled;
  for (const TransientKernel kernel :
       {TransientKernel::kPerSlot, TransientKernel::kSuperframeProduct}) {
    PathAnalysisOptions options;
    options.kernel = kernel;
    const PathTransientResult fresh = model.analyze(links, options);
    // Cold pass primes the workspace; the warm pass reuses it — both
    // must match the fresh build exactly.
    skeleton.analyze_into(links, options, workspace, refilled);
    expect_identical(fresh, refilled);
    skeleton.analyze_into(links, options, workspace, refilled);
    expect_identical(fresh, refilled);
  }
}

TEST(PathSkeleton, RefillMatchesFreshAcrossScenarioCorpus) {
  const verify::ScenarioGenerator generator;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const verify::Scenario scenario = generator.generate(seed);
    for (std::size_t p = 0; p < scenario.path_count(); ++p) {
      SCOPED_TRACE("path " + std::to_string(p));
      expect_refill_matches_fresh(scenario.path_config(p),
                                  scenario.hop_availabilities(p));
    }
  }
}

TEST(PathSkeleton, WarmWorkspaceSurvivesChangingAvailabilities) {
  PathModelConfig config;
  config.hop_slots = {2, 5, 7};
  config.superframe = net::SuperframeConfig::symmetric(9);
  config.reporting_interval = 4;
  const PathModel model(config);
  const PathModelSkeleton skeleton(config);
  SolveWorkspace workspace;  // shared across every point below
  PathTransientResult refilled;
  for (const TransientKernel kernel :
       {TransientKernel::kPerSlot, TransientKernel::kSuperframeProduct}) {
    PathAnalysisOptions options;
    options.kernel = kernel;
    for (const double availability : {0.55, 0.7, 0.83, 0.91, 0.99}) {
      const SteadyStateLinks links(config.hop_count(),
                                   link::LinkModel::from_availability(
                                       availability));
      skeleton.analyze_into(links, options, workspace, refilled);
      expect_identical(model.analyze(links, options), refilled);
    }
  }
}

TEST(PathSkeleton, DegenerateProbabilitiesFallBackBitwiseEqual) {
  // ps of 0 or 1 changes the captured sparsity pattern, so analyze_into
  // must detect it and fall back to a fresh solve — still bitwise equal.
  PathModelConfig config;
  config.hop_slots = {1, 3};
  config.superframe = net::SuperframeConfig::symmetric(5);
  config.reporting_interval = 3;
  expect_refill_matches_fresh(config, {0.0, 0.7});
  expect_refill_matches_fresh(config, {1.0, 1.0});
  expect_refill_matches_fresh(config, {0.8, 0.0});
}

TEST(PathSkeleton, FingerprintIgnoresAvailabilitiesButNotShape) {
  PathModelConfig config;
  config.hop_slots = {1, 2, 4};
  config.superframe = net::SuperframeConfig::symmetric(6);
  config.reporting_interval = 3;

  const std::string shape = PathAnalysisCache::skeleton_fingerprint(
      config, TransientKernel::kSuperframeProduct);

  // Same shape, any availabilities: the skeleton part is identical.
  EXPECT_EQ(shape, PathAnalysisCache::skeleton_fingerprint(
                       config, TransientKernel::kSuperframeProduct));

  // The kernel is part of the shape (kernels agree only to rounding).
  EXPECT_NE(shape, PathAnalysisCache::skeleton_fingerprint(
                       config, TransientKernel::kPerSlot));

  // Any symbolic-phase input changes it.
  PathModelConfig other = config;
  other.reporting_interval = 4;
  EXPECT_NE(shape, PathAnalysisCache::skeleton_fingerprint(
                       other, TransientKernel::kSuperframeProduct));
  other = config;
  other.hop_slots = {1, 2, 5};
  EXPECT_NE(shape, PathAnalysisCache::skeleton_fingerprint(
                       other, TransientKernel::kSuperframeProduct));
  other = config;
  other.superframe = net::SuperframeConfig::symmetric(7);
  EXPECT_NE(shape, PathAnalysisCache::skeleton_fingerprint(
                       other, TransientKernel::kSuperframeProduct));
  other = config;
  other.ttl = 10;
  EXPECT_NE(shape, PathAnalysisCache::skeleton_fingerprint(
                       other, TransientKernel::kSuperframeProduct));
}

TEST(PathSkeleton, ValueFingerprintExtendsSkeletonFingerprint) {
  // hop_slots starting at 1 are already canonical, so the full value
  // fingerprint must begin with the shape-only prefix and differ only in
  // the appended availability bits.
  PathModelConfig config;
  config.hop_slots = {1, 2, 3};
  config.superframe = net::SuperframeConfig::symmetric(5);
  config.reporting_interval = 2;
  const std::string shape = PathAnalysisCache::skeleton_fingerprint(
      config, TransientKernel::kPerSlot);
  const std::string low = PathAnalysisCache::fingerprint(
      config, {0.7, 0.8, 0.9}, TransientKernel::kPerSlot);
  const std::string high = PathAnalysisCache::fingerprint(
      config, {0.9, 0.9, 0.9}, TransientKernel::kPerSlot);
  ASSERT_GT(low.size(), shape.size());
  EXPECT_EQ(low.substr(0, shape.size()), shape);
  EXPECT_EQ(high.substr(0, shape.size()), shape);
  EXPECT_NE(low, high);  // availabilities live in the value part
}

TEST(PathSkeleton, StaleInjectionBreaksBitwiseEquality) {
  // The stale-skeleton-value fault must actually perturb the refill —
  // otherwise the oracle's fifth leg (and its WILL_FAIL self-test)
  // verifies nothing.
  PathModelConfig config;
  config.hop_slots = {1, 2, 3};
  config.superframe = net::SuperframeConfig::symmetric(5);
  config.reporting_interval = 3;
  const PathModel model(config);
  const PathModelSkeleton skeleton(config);
  const SteadyStateLinks links{std::vector<double>{0.8, 0.85, 0.9}};
  PathAnalysisOptions options;
  options.kernel = TransientKernel::kSuperframeProduct;
  const PathTransientResult fresh = model.analyze(links, options);

  PathAnalysisOptions stale = options;
  stale.inject_stale_skeleton = 1e-6;
  SolveWorkspace workspace;
  PathTransientResult refilled;
  skeleton.analyze_into(links, stale, workspace, refilled);
  EXPECT_NE(fresh.cycle_probabilities, refilled.cycle_probabilities);
}

}  // namespace
}  // namespace whart::hart
