#include "whart/hart/validation.hpp"

#include <gtest/gtest.h>

#include "whart/common/contracts.hpp"
#include "whart/net/typical_network.hpp"

namespace whart::hart {
namespace {

TEST(Validation, TypicalNetworkPasses) {
  const net::TypicalNetwork t = net::make_typical_network(
      link::LinkModel::from_availability(0.83));
  ValidationConfig config;
  config.intervals = 15000;
  config.seed = 321;
  const ValidationReport report = validate_against_simulation(
      t.network, t.paths, t.eta_a, t.superframe, 4, config);
  EXPECT_TRUE(report.passed);
  ASSERT_EQ(report.per_path.size(), 10u);
  for (const PathValidation& v : report.per_path) {
    EXPECT_TRUE(v.reachability_within) << "path " << v.path_index + 1;
    EXPECT_LE(v.delay_z_score, config.max_delay_z);
    EXPECT_NEAR(v.model_utilization, v.simulated_utilization, 0.01);
  }
}

TEST(Validation, DetectsADeliberatelyWrongModel) {
  // Analyze with good links but simulate... the same network; instead,
  // corrupt the comparison by analyzing a different availability: build
  // two networks and cross-wire them through the API by validating the
  // bad-link network against statistics gathered on paths whose model
  // says otherwise.  Simplest honest probe: validate with a tiny sample
  // so intervals are wide (must pass), then shrink tolerances to force
  // a failure path through the z-score check.
  const net::TypicalNetwork t = net::make_typical_network(
      link::LinkModel::from_availability(0.83));
  ValidationConfig strict;
  strict.intervals = 15000;
  strict.seed = 321;
  strict.reachability_z = 0.005;  // absurdly narrow: must fail somewhere
  const ValidationReport report = validate_against_simulation(
      t.network, t.paths, t.eta_a, t.superframe, 4, strict);
  EXPECT_FALSE(report.passed);
}

TEST(Validation, InvalidConfigThrows) {
  const net::TypicalNetwork t = net::make_typical_network();
  ValidationConfig config;
  config.intervals = 0;
  EXPECT_THROW(validate_against_simulation(t.network, t.paths, t.eta_a,
                                           t.superframe, 4, config),
               precondition_error);
}

}  // namespace
}  // namespace whart::hart
