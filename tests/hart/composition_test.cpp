#include "whart/hart/composition.hpp"

#include <numeric>

#include <gtest/gtest.h>

#include "whart/common/contracts.hpp"
#include "whart/hart/analytic.hpp"

namespace whart::hart {
namespace {

TEST(Composition, DeltaPeerIsIdentityShift) {
  // A perfect 1-hop peer (delivers in cycle 1 surely) composes to the
  // existing path's own cycle distribution.
  const std::vector<double> peer{1.0};
  const std::vector<double> existing{0.6, 0.3, 0.1};
  const auto composed = compose_cycle_probabilities(peer, existing, 3);
  EXPECT_EQ(composed, existing);
}

TEST(Composition, MatchesDirectAnalyticModel) {
  // Composing a 1-hop peer with a 2-hop path must equal the 3-hop path
  // computed directly (homogeneous links, enough cycles that truncation
  // is negligible... here exact because convolution is exact per cycle).
  const double ps = 0.83;
  const std::uint32_t is = 4;
  const auto peer = analytic_cycle_probabilities(1, ps, is);
  const auto existing = analytic_cycle_probabilities(2, ps, is);
  const auto composed = compose_cycle_probabilities(peer, existing, is);
  const auto direct = analytic_cycle_probabilities(3, ps, is);
  for (std::size_t i = 0; i < is; ++i)
    EXPECT_NEAR(composed[i], direct[i], 1e-12) << "cycle " << i + 1;
}

TEST(Composition, CommutesLikeConvolution) {
  const auto a = analytic_cycle_probabilities(1, 0.9, 4);
  const auto b = analytic_cycle_probabilities(2, 0.7, 4);
  EXPECT_EQ(compose_cycle_probabilities(a, b, 4),
            compose_cycle_probabilities(b, a, 4));
}

TEST(Composition, EmptyInputsThrow) {
  const std::vector<double> empty;
  const std::vector<double> some{1.0};
  EXPECT_THROW(compose_cycle_probabilities(empty, some, 4),
               precondition_error);
  EXPECT_THROW(compose_cycle_probabilities(some, empty, 4),
               precondition_error);
}

TEST(OneHopCycles, GeometricInAvailability) {
  const link::LinkModel link = link::LinkModel::from_availability(0.83);
  const auto g = one_hop_cycle_probabilities(link, 4);
  EXPECT_NEAR(g[0], 0.83, 1e-12);
  EXPECT_NEAR(g[1], 0.17 * 0.83, 1e-12);
  EXPECT_NEAR(g[2], 0.17 * 0.17 * 0.83, 1e-12);
}

TEST(Prediction, PaperTableIVPathAlpha) {
  // Peer link 5 -> 3 with Eb/N0 = 7 composed with the 2-hop existing
  // path 1 at pi(up) = 0.83: gc = [0.6274, 0.2694, 0.0784, 0.0193],
  // R_alpha = 99.46%.
  const auto existing = analytic_cycle_probabilities(2, 0.83, 4);
  const RoutePrediction alpha =
      predict_route(phy::EbN0::from_linear(7.0), existing, 2, 4);
  ASSERT_EQ(alpha.composed_cycles.size(), 4u);
  EXPECT_NEAR(alpha.composed_cycles[0], 0.6274, 1e-3);
  EXPECT_NEAR(alpha.composed_cycles[1], 0.2694, 1e-3);
  EXPECT_NEAR(alpha.composed_cycles[2], 0.0784, 1e-3);
  EXPECT_NEAR(alpha.composed_cycles[3], 0.0193, 1e-3);
  EXPECT_NEAR(alpha.reachability, 0.9946, 1e-3);
  EXPECT_EQ(alpha.total_hops, 3u);
}

TEST(Prediction, PaperTableIVPathBeta) {
  // Peer link 5 -> 4 with Eb/N0 = 6 composed with the 1-hop existing
  // path 2: gc = [0.6573, 0.2485, 0.0707, 0.0180], R_beta = 99.45%.
  const auto existing = analytic_cycle_probabilities(1, 0.83, 4);
  const RoutePrediction beta =
      predict_route(phy::EbN0::from_linear(6.0), existing, 1, 4);
  EXPECT_NEAR(beta.composed_cycles[0], 0.6573, 2e-3);
  EXPECT_NEAR(beta.composed_cycles[1], 0.2485, 2e-3);
  EXPECT_NEAR(beta.composed_cycles[2], 0.0707, 2e-3);
  EXPECT_NEAR(beta.composed_cycles[3], 0.0180, 2e-3);
  EXPECT_NEAR(beta.reachability, 0.9945, 1e-3);
  EXPECT_EQ(beta.total_hops, 2u);
}

TEST(Prediction, PaperDecisionPrefersBetaOnFewerHops) {
  // Reachabilities tie within tolerance; beta wins with fewer hops
  // (Section VI-E's conclusion).
  const auto existing_alpha = analytic_cycle_probabilities(2, 0.83, 4);
  const auto existing_beta = analytic_cycle_probabilities(1, 0.83, 4);
  const std::vector<RoutePrediction> candidates{
      predict_route(phy::EbN0::from_linear(7.0), existing_alpha, 2, 4),
      predict_route(phy::EbN0::from_linear(6.0), existing_beta, 1, 4)};
  EXPECT_EQ(best_route(candidates), 1u);
  // With zero tolerance the marginally higher reachability wins instead.
  EXPECT_EQ(best_route(candidates, 0.0), 0u);
}

TEST(Prediction, BestRouteOfEmptyThrows) {
  EXPECT_THROW(best_route({}), precondition_error);
}

TEST(Prediction, ClearlyBetterReachabilityWinsDespiteHops) {
  RoutePrediction good;
  good.reachability = 0.99;
  good.total_hops = 4;
  RoutePrediction bad;
  bad.reachability = 0.90;
  bad.total_hops = 2;
  EXPECT_EQ(best_route({bad, good}), 1u);
}

}  // namespace
}  // namespace whart::hart
