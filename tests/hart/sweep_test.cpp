#include "whart/hart/sweep.hpp"

#include <sstream>

#include <gtest/gtest.h>

#include "whart/common/contracts.hpp"

namespace whart::hart {
namespace {

PathModelConfig example_config() {
  PathModelConfig config;
  config.hop_slots = {3, 6, 7};
  config.superframe = net::SuperframeConfig::symmetric(7);
  config.reporting_interval = 4;
  return config;
}

TEST(Linspace, EvenSpacingWithExactEndpoints) {
  const auto v = linspace(0.65, 0.95, 7);
  ASSERT_EQ(v.size(), 7u);
  EXPECT_DOUBLE_EQ(v.front(), 0.65);
  EXPECT_DOUBLE_EQ(v.back(), 0.95);
  EXPECT_NEAR(v[1] - v[0], 0.05, 1e-12);
  EXPECT_THROW(linspace(0.0, 1.0, 1), precondition_error);
}

TEST(SweepAvailability, ReachabilityIsMonotone) {
  const SweepSeries series =
      sweep_availability(example_config(), linspace(0.65, 0.95, 13));
  EXPECT_EQ(series.parameter_name, "availability");
  for (std::size_t i = 1; i < series.points.size(); ++i)
    EXPECT_GT(series.points[i].measures.reachability,
              series.points[i - 1].measures.reachability);
}

TEST(SweepBer, ReachabilityFallsWithBer) {
  const SweepSeries series =
      sweep_ber(example_config(), {1e-5, 5e-5, 1e-4, 2e-4, 3e-4});
  for (std::size_t i = 1; i < series.points.size(); ++i)
    EXPECT_LT(series.points[i].measures.reachability,
              series.points[i - 1].measures.reachability);
}

TEST(SweepHopCount, MatchesPaperFig10Shape) {
  const SweepSeries series = sweep_hop_count(
      4, 0.83, net::SuperframeConfig::symmetric(7), 4);
  ASSERT_EQ(series.points.size(), 4u);
  for (std::size_t i = 1; i < series.points.size(); ++i)
    EXPECT_LT(series.points[i].measures.reachability,
              series.points[i - 1].measures.reachability);
  EXPECT_NEAR(series.points[0].measures.reachability, 0.9992, 1e-4);
  EXPECT_THROW(
      sweep_hop_count(8, 0.83, net::SuperframeConfig::symmetric(7), 4),
      precondition_error);
}

TEST(SweepReportingInterval, ReachabilityRisesDelayTailGrows) {
  const SweepSeries series = sweep_reporting_interval_series(
      example_config(), 0.83, {1, 2, 4, 8});
  for (std::size_t i = 1; i < series.points.size(); ++i) {
    EXPECT_GT(series.points[i].measures.reachability,
              series.points[i - 1].measures.reachability);
    EXPECT_GE(series.points[i].measures.delay_jitter_ms,
              series.points[i - 1].measures.delay_jitter_ms);
  }
}

TEST(SweepCsv, HeaderAndRowCount) {
  const SweepSeries series =
      sweep_availability(example_config(), {0.8, 0.9});
  std::ostringstream out;
  write_series_csv(out, series);
  std::istringstream lines(out.str());
  std::string header;
  std::getline(lines, header);
  EXPECT_EQ(header,
            "availability,reachability,expected_delay_ms,delay_jitter_ms,"
            "utilization,utilization_delivered");
  std::size_t rows = 0;
  for (std::string line; std::getline(lines, line);) ++rows;
  EXPECT_EQ(rows, 2u);
}

TEST(SweepValidation, EmptyInputsThrow) {
  EXPECT_THROW(sweep_availability(example_config(), {}),
               precondition_error);
  EXPECT_THROW(sweep_ber(example_config(), {}), precondition_error);
  EXPECT_THROW(sweep_reporting_interval_series(example_config(), 0.9, {}),
               precondition_error);
}

}  // namespace
}  // namespace whart::hart
