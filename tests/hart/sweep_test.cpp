#include "whart/hart/sweep.hpp"

#include <cstdint>
#include <sstream>

#include <gtest/gtest.h>

#include "whart/common/contracts.hpp"
#include "whart/common/obs.hpp"

namespace whart::hart {
namespace {

PathModelConfig example_config() {
  PathModelConfig config;
  config.hop_slots = {3, 6, 7};
  config.superframe = net::SuperframeConfig::symmetric(7);
  config.reporting_interval = 4;
  return config;
}

TEST(Linspace, EvenSpacingWithExactEndpoints) {
  const auto v = linspace(0.65, 0.95, 7);
  ASSERT_EQ(v.size(), 7u);
  EXPECT_DOUBLE_EQ(v.front(), 0.65);
  EXPECT_DOUBLE_EQ(v.back(), 0.95);
  EXPECT_NEAR(v[1] - v[0], 0.05, 1e-12);
  // count == 1 is a degenerate grid of exactly {first}; only an empty
  // grid is a contract violation.
  EXPECT_EQ(linspace(0.0, 1.0, 1), std::vector<double>{0.0});
  EXPECT_THROW(linspace(0.0, 1.0, 0), precondition_error);
}

TEST(Linspace, CountTwoIsExactlyTheEndpoints) {
  const auto v = linspace(0.3, 0.7, 2);
  ASSERT_EQ(v.size(), 2u);
  EXPECT_DOUBLE_EQ(v[0], 0.3);
  EXPECT_DOUBLE_EQ(v[1], 0.7);
}

TEST(Linspace, DegenerateRangeRepeatsTheValue) {
  const auto v = linspace(0.83, 0.83, 5);
  ASSERT_EQ(v.size(), 5u);
  for (const double x : v) EXPECT_DOUBLE_EQ(x, 0.83);
}

TEST(Linspace, DescendingRangeDescendsWithExactEndpoints) {
  const auto v = linspace(0.99, 0.65, 18);
  ASSERT_EQ(v.size(), 18u);
  EXPECT_DOUBLE_EQ(v.front(), 0.99);
  EXPECT_DOUBLE_EQ(v.back(), 0.65);
  for (std::size_t i = 1; i < v.size(); ++i) EXPECT_LT(v[i], v[i - 1]);
}

TEST(SweepAvailability, ReachabilityIsMonotone) {
  const SweepSeries series =
      sweep_availability(example_config(), linspace(0.65, 0.95, 13));
  EXPECT_EQ(series.parameter_name, "availability");
  for (std::size_t i = 1; i < series.points.size(); ++i)
    EXPECT_GT(series.points[i].measures.reachability,
              series.points[i - 1].measures.reachability);
}

TEST(SweepBer, ReachabilityFallsWithBer) {
  const SweepSeries series =
      sweep_ber(example_config(), {1e-5, 5e-5, 1e-4, 2e-4, 3e-4});
  for (std::size_t i = 1; i < series.points.size(); ++i)
    EXPECT_LT(series.points[i].measures.reachability,
              series.points[i - 1].measures.reachability);
}

TEST(SweepHopCount, MatchesPaperFig10Shape) {
  const SweepSeries series = sweep_hop_count(
      4, 0.83, net::SuperframeConfig::symmetric(7), 4);
  ASSERT_EQ(series.points.size(), 4u);
  for (std::size_t i = 1; i < series.points.size(); ++i)
    EXPECT_LT(series.points[i].measures.reachability,
              series.points[i - 1].measures.reachability);
  EXPECT_NEAR(series.points[0].measures.reachability, 0.9992, 1e-4);
  EXPECT_THROW(
      sweep_hop_count(8, 0.83, net::SuperframeConfig::symmetric(7), 4),
      precondition_error);
}

TEST(SweepReportingInterval, ReachabilityRisesDelayTailGrows) {
  const SweepSeries series = sweep_reporting_interval_series(
      example_config(), 0.83, {1, 2, 4, 8});
  for (std::size_t i = 1; i < series.points.size(); ++i) {
    EXPECT_GT(series.points[i].measures.reachability,
              series.points[i - 1].measures.reachability);
    EXPECT_GE(series.points[i].measures.delay_jitter_ms,
              series.points[i - 1].measures.delay_jitter_ms);
  }
}

TEST(SweepCsv, HeaderAndRowCount) {
  const SweepSeries series =
      sweep_availability(example_config(), {0.8, 0.9});
  std::ostringstream out;
  write_series_csv(out, series);
  std::istringstream lines(out.str());
  std::string header;
  std::getline(lines, header);
  EXPECT_EQ(header,
            "availability,reachability,expected_delay_ms,delay_jitter_ms,"
            "utilization,utilization_delivered");
  std::size_t rows = 0;
  for (std::string line; std::getline(lines, line);) ++rows;
  EXPECT_EQ(rows, 2u);
}

TEST(SweepCsv, GoldenOutputForHandBuiltSeries) {
  // Hand-built measures pin the exact byte-for-byte format (std::to_string
  // fixed six-decimal fields, '\n' terminators, no quoting).
  SweepSeries series;
  series.parameter_name = "availability";
  SweepPoint point;
  point.parameter = 0.5;
  point.measures.reachability = 0.875;
  point.measures.expected_delay_ms = 120.0;
  point.measures.delay_jitter_ms = 35.25;
  point.measures.utilization = 0.125;
  point.measures.utilization_delivered = 0.0625;
  series.points.push_back(point);
  point.parameter = 0.75;
  point.measures.reachability = 1.0;
  point.measures.expected_delay_ms = 80.5;
  point.measures.delay_jitter_ms = 0.0;
  point.measures.utilization = 0.25;
  point.measures.utilization_delivered = 0.25;
  series.points.push_back(point);

  std::ostringstream out;
  write_series_csv(out, series);
  EXPECT_EQ(out.str(),
            "availability,reachability,expected_delay_ms,delay_jitter_ms,"
            "utilization,utilization_delivered\n"
            "0.500000,0.875000,120.000000,35.250000,0.125000,0.062500\n"
            "0.750000,1.000000,80.500000,0.000000,0.250000,0.250000\n");
}

TEST(SweepValidation, EmptyInputsThrow) {
  EXPECT_THROW(sweep_availability(example_config(), {}),
               precondition_error);
  EXPECT_THROW(sweep_ber(example_config(), {}), precondition_error);
  EXPECT_THROW(sweep_reporting_interval_series(example_config(), 0.9, {}),
               precondition_error);
}

TEST(SweepSkeletonStore, EvictsLeastRecentlyUsedBeyondCapacity) {
  // The process-wide skeleton store is LRU-bounded at 64 shapes; sweeping
  // more distinct shapes than that in one session must evict (and count)
  // rather than grow without limit.  The shapes use a superframe no other
  // test sweeps, so they are all fresh insertions regardless of what ran
  // before in this binary.
  common::obs::set_metrics_enabled(true);
  const auto evictions = [] {
    const auto counters =
        common::obs::Registry::instance().snapshot().counters;
    const auto it = counters.find("hart.skeleton.store_evictions");
    return it == counters.end() ? std::uint64_t{0} : it->second;
  };
  const std::uint64_t before = evictions();
  constexpr std::uint32_t kDistinctShapes = 70;
  for (std::uint32_t i = 0; i < kDistinctShapes; ++i) {
    PathModelConfig config;
    config.hop_slots = {i + 1};
    config.superframe = net::SuperframeConfig::symmetric(kDistinctShapes + 7);
    config.reporting_interval = 3;
    const SweepSeries series =
        sweep_availability(config, linspace(0.7, 0.9, 2), 1);
    ASSERT_EQ(series.points.size(), 2u);
  }
  // 70 fresh shapes through a 64-entry store: at least 6 evictions.
  EXPECT_GE(evictions(), before + 6);
}

}  // namespace
}  // namespace whart::hart
