// Golden tests of the parallel engine: every fan-out path must produce
// results identical (==, not approximately) to its serial counterpart,
// whatever the thread count, and the cached analysis must match the
// uncached one bit for bit.
#include <vector>

#include <gtest/gtest.h>

#include "whart/hart/network_analysis.hpp"
#include "whart/hart/schedule_optimizer.hpp"
#include "whart/hart/sensitivity.hpp"
#include "whart/hart/sweep.hpp"
#include "whart/net/plant_generator.hpp"
#include "whart/net/typical_network.hpp"
#include "whart/sim/simulator.hpp"

namespace whart::hart {
namespace {

void expect_identical(const PathMeasures& a, const PathMeasures& b) {
  EXPECT_EQ(a.cycle_probabilities, b.cycle_probabilities);
  EXPECT_EQ(a.reachability, b.reachability);
  EXPECT_EQ(a.discard_probability, b.discard_probability);
  EXPECT_EQ(a.delays_ms, b.delays_ms);
  EXPECT_EQ(a.delay_distribution, b.delay_distribution);
  EXPECT_EQ(a.expected_delay_ms, b.expected_delay_ms);
  EXPECT_EQ(a.expected_transmissions, b.expected_transmissions);
  EXPECT_EQ(a.utilization, b.utilization);
  EXPECT_EQ(a.utilization_delivered, b.utilization_delivered);
  EXPECT_EQ(a.expected_intervals_to_first_loss,
            b.expected_intervals_to_first_loss);
  EXPECT_EQ(a.delay_jitter_ms, b.delay_jitter_ms);
}

void expect_identical(const NetworkMeasures& a, const NetworkMeasures& b) {
  ASSERT_EQ(a.per_path.size(), b.per_path.size());
  for (std::size_t p = 0; p < a.per_path.size(); ++p)
    expect_identical(a.per_path[p], b.per_path[p]);
  ASSERT_EQ(a.overall_delay_distribution.size(),
            b.overall_delay_distribution.size());
  for (std::size_t i = 0; i < a.overall_delay_distribution.size(); ++i) {
    EXPECT_EQ(a.overall_delay_distribution[i].delay_ms,
              b.overall_delay_distribution[i].delay_ms);
    EXPECT_EQ(a.overall_delay_distribution[i].probability,
              b.overall_delay_distribution[i].probability);
  }
  EXPECT_EQ(a.mean_delay_ms, b.mean_delay_ms);
  EXPECT_EQ(a.network_utilization, b.network_utilization);
  EXPECT_EQ(a.network_utilization_delivered,
            b.network_utilization_delivered);
  EXPECT_EQ(a.bottleneck_by_delay, b.bottleneck_by_delay);
  EXPECT_EQ(a.bottleneck_by_reachability, b.bottleneck_by_reachability);
}

void expect_identical(const SweepSeries& a, const SweepSeries& b) {
  EXPECT_EQ(a.parameter_name, b.parameter_name);
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_EQ(a.points[i].parameter, b.points[i].parameter);
    expect_identical(a.points[i].measures, b.points[i].measures);
  }
}

AnalysisOptions serial_uncached() {
  AnalysisOptions options;
  options.threads = 1;
  options.use_cache = false;
  return options;
}

TEST(ParallelGolden, NetworkAnalysisTypical) {
  const net::TypicalNetwork t = net::make_typical_network();
  const NetworkMeasures serial =
      analyze_network(t.network, t.paths, t.eta_a, t.superframe, 4,
                      serial_uncached());
  for (unsigned threads : {2u, 4u, 8u}) {
    AnalysisOptions options;
    options.threads = threads;
    options.use_cache = false;
    expect_identical(analyze_network(t.network, t.paths, t.eta_a,
                                     t.superframe, 4, options),
                     serial);
  }
}

TEST(ParallelGolden, NetworkAnalysisGeneratedPlantCachedAndThreaded) {
  net::PlantProfile profile;
  profile.device_count = 60;
  profile.seed = 11;
  const net::GeneratedPlant plant = net::generate_plant(profile);
  const NetworkMeasures serial =
      analyze_network(plant.network, plant.paths, plant.schedule,
                      plant.superframe, 4, serial_uncached());

  for (const bool use_cache : {false, true}) {
    for (unsigned threads : {1u, 4u}) {
      AnalysisOptions options;
      options.threads = threads;
      options.use_cache = use_cache;
      expect_identical(
          analyze_network(plant.network, plant.paths, plant.schedule,
                          plant.superframe, 4, options),
          serial);
    }
  }

  // A shared (persistent) cache must serve a second identical call from
  // memory and still reproduce the same result.
  PathAnalysisCache cache;
  AnalysisOptions options;
  options.threads = 4;
  options.cache = &cache;
  expect_identical(analyze_network(plant.network, plant.paths,
                                   plant.schedule, plant.superframe, 4,
                                   options),
                   serial);
  const std::uint64_t first_misses = cache.misses();
  expect_identical(analyze_network(plant.network, plant.paths,
                                   plant.schedule, plant.superframe, 4,
                                   options),
                   serial);
  EXPECT_EQ(cache.misses(), first_misses);  // all hits second time
}

TEST(ParallelGolden, SweepAvailability) {
  PathModelConfig config;
  config.hop_slots = {1, 2, 3};
  config.superframe = net::SuperframeConfig::symmetric(20);
  config.reporting_interval = 4;
  const std::vector<double> grid = linspace(0.5, 0.99, 25);
  expect_identical(sweep_availability(config, grid, 4),
                   sweep_availability(config, grid, 1));
}

TEST(ParallelGolden, SweepBer) {
  PathModelConfig config;
  config.hop_slots = {1, 2};
  config.superframe = net::SuperframeConfig::symmetric(10);
  config.reporting_interval = 4;
  const std::vector<double> grid{1e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2};
  expect_identical(sweep_ber(config, grid, 4), sweep_ber(config, grid, 1));
}

TEST(ParallelGolden, SweepHopCount) {
  const net::SuperframeConfig superframe =
      net::SuperframeConfig::symmetric(20);
  expect_identical(sweep_hop_count(12, 0.83, superframe, 4, 4),
                   sweep_hop_count(12, 0.83, superframe, 4, 1));
}

TEST(ParallelGolden, SweepReportingInterval) {
  PathModelConfig config;
  config.hop_slots = {1, 2, 3};
  config.superframe = net::SuperframeConfig::symmetric(20);
  config.reporting_interval = 4;
  const std::vector<std::uint32_t> intervals{1, 2, 4, 8, 16, 32};
  expect_identical(
      sweep_reporting_interval_series(config, 0.83, intervals, 4),
      sweep_reporting_interval_series(config, 0.83, intervals, 1));
}

TEST(ParallelGolden, RankLinkUpgrades) {
  const net::TypicalNetwork t = net::make_typical_network();
  const std::vector<LinkSensitivity> serial = rank_link_upgrades(
      t.network, t.paths, t.eta_a, t.superframe, 4, 1);
  const std::vector<LinkSensitivity> parallel = rank_link_upgrades(
      t.network, t.paths, t.eta_a, t.superframe, 4, 4);
  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(parallel[i].link.value, serial[i].link.value);
    EXPECT_EQ(parallel[i].total_dR_dpi, serial[i].total_dR_dpi);
    EXPECT_EQ(parallel[i].paths_using, serial[i].paths_using);
  }
}

TEST(ParallelGolden, ExpectedExtraCycles) {
  const net::TypicalNetwork t = net::make_typical_network();
  EXPECT_EQ(expected_extra_cycles(t.network, t.paths, 4, 4),
            expected_extra_cycles(t.network, t.paths, 4, 1));
}

void expect_identical(const sim::SimulationReport& a,
                      const sim::SimulationReport& b) {
  EXPECT_EQ(a.total_slots_simulated, b.total_slots_simulated);
  ASSERT_EQ(a.per_path.size(), b.per_path.size());
  for (std::size_t p = 0; p < a.per_path.size(); ++p) {
    const sim::PathStatistics& x = a.per_path[p];
    const sim::PathStatistics& y = b.per_path[p];
    EXPECT_EQ(x.messages, y.messages);
    EXPECT_EQ(x.delivered_per_cycle, y.delivered_per_cycle);
    EXPECT_EQ(x.discarded, y.discarded);
    EXPECT_EQ(x.transmissions, y.transmissions);
    EXPECT_EQ(x.delay_ms.count(), y.delay_ms.count());
    EXPECT_EQ(x.delay_ms.mean(), y.delay_ms.mean());
    EXPECT_EQ(x.delay_ms.variance(), y.delay_ms.variance());
  }
}

sim::SimulationReport run_sim(std::uint32_t shards, unsigned threads) {
  const net::TypicalNetwork t = net::make_typical_network();
  sim::SimulatorConfig config;
  config.superframe = t.superframe;
  config.intervals = 500;
  config.seed = 99;
  config.shards = shards;
  config.threads = threads;
  const sim::NetworkSimulator simulator(t.network, t.paths, t.eta_a,
                                        config);
  return simulator.run();
}

TEST(ParallelGolden, ShardedSimulationIsIndependentOfThreadCount) {
  const sim::SimulationReport serial = run_sim(4, 1);
  expect_identical(run_sim(4, 2), serial);
  expect_identical(run_sim(4, 8), serial);
}

TEST(ParallelGolden, ShardedSimulationIsRepeatable) {
  const net::TypicalNetwork t = net::make_typical_network();
  sim::SimulatorConfig config;
  config.superframe = t.superframe;
  config.intervals = 500;
  config.seed = 99;
  config.shards = 4;
  config.threads = 4;
  const sim::NetworkSimulator simulator(t.network, t.paths, t.eta_a,
                                        config);
  const sim::SimulationReport first = simulator.run();
  expect_identical(simulator.run(), first);
}

TEST(ParallelGolden, ShardedSimulationAccountsForEveryMessage) {
  for (const std::uint32_t shards : {1u, 3u, 4u, 7u}) {
    const sim::SimulationReport report = run_sim(shards, 2);
    for (const sim::PathStatistics& stats : report.per_path) {
      EXPECT_EQ(stats.messages, 500u);
      std::uint64_t delivered = 0;
      for (const std::uint64_t d : stats.delivered_per_cycle) delivered += d;
      EXPECT_EQ(delivered + stats.discarded, stats.messages);
      EXPECT_EQ(stats.delay_ms.count(), delivered);
    }
  }
}

TEST(ParallelGolden, MoreShardsThanIntervalsClamps) {
  const sim::SimulationReport report = run_sim(4096, 4);
  for (const sim::PathStatistics& stats : report.per_path)
    EXPECT_EQ(stats.messages, 500u);
}

}  // namespace
}  // namespace whart::hart
