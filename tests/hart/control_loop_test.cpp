#include "whart/hart/control_loop.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "whart/common/contracts.hpp"
#include "whart/hart/path_model.hpp"

namespace whart::hart {
namespace {

PathMeasures example_measures(double availability) {
  PathModelConfig config;
  config.hop_slots = {3, 6, 7};
  config.superframe = net::SuperframeConfig::symmetric(7);
  config.reporting_interval = 4;
  const PathModel model(config);
  const SteadyStateLinks links(
      3, link::LinkModel::from_availability(availability));
  return compute_path_measures(model, links);
}

TEST(ControlLoop, PaperFirstCycleProbability) {
  // Paper Section V-A: with a symmetric setup the loop closes in one
  // cycle with probability 0.4219^2 = 0.178.
  const PathMeasures uplink = example_measures(0.75);
  const ControlLoopMeasures loop = analyze_symmetric_control_loop(uplink);
  EXPECT_NEAR(loop.first_cycle_probability, 0.178, 5e-4);
}

TEST(ControlLoop, LoopReachabilityBelowPathReachability) {
  const PathMeasures uplink = example_measures(0.83);
  const ControlLoopMeasures loop = analyze_symmetric_control_loop(uplink);
  EXPECT_LT(loop.loop_reachability, uplink.reachability);
  EXPECT_GT(loop.loop_reachability, 0.9);
}

TEST(ControlLoop, PerfectPathsCloseEveryLoop) {
  const PathMeasures uplink = example_measures(1.0);
  const ControlLoopMeasures loop = analyze_symmetric_control_loop(uplink);
  EXPECT_DOUBLE_EQ(loop.loop_reachability, 1.0);
  EXPECT_DOUBLE_EQ(loop.first_cycle_probability, 1.0);
  EXPECT_TRUE(std::isinf(loop.expected_intervals_to_first_open_loop));
  // Latency = two one-cycle traversals of 70 ms each.
  EXPECT_DOUBLE_EQ(loop.expected_latency_ms, 140.0);
}

TEST(ControlLoop, LatencyAddsProcessingTime) {
  const PathMeasures uplink = example_measures(0.83);
  const ControlLoopMeasures without = analyze_symmetric_control_loop(uplink);
  const ControlLoopMeasures with =
      analyze_symmetric_control_loop(uplink, 5.0);
  EXPECT_NEAR(with.expected_latency_ms, without.expected_latency_ms + 5.0,
              1e-12);
}

TEST(ControlLoop, AsymmetricLoopUsesBothDirections) {
  const PathMeasures good = example_measures(0.95);
  const PathMeasures bad = example_measures(0.75);
  const ControlLoopMeasures loop = analyze_control_loop(good, bad);
  EXPECT_NEAR(loop.first_cycle_probability,
              good.cycle_probabilities[0] * bad.cycle_probabilities[0],
              1e-12);
  EXPECT_NEAR(loop.expected_latency_ms,
              good.expected_delay_ms + bad.expected_delay_ms, 1e-12);
}

TEST(ControlLoop, CycleDistributionIsShiftedConvolution) {
  const PathMeasures m = example_measures(0.83);
  const ControlLoopMeasures loop = analyze_symmetric_control_loop(m);
  // Combined cycle 2 = (1,2) or (2,1).
  EXPECT_NEAR(loop.loop_cycle_probabilities[1],
              2.0 * m.cycle_probabilities[0] * m.cycle_probabilities[1],
              1e-12);
}

TEST(ControlLoopExact, SymmetricCaseMatchesConvolutionShorthand) {
  PathModelConfig up_config;
  up_config.hop_slots = {3, 6, 7};
  up_config.superframe = net::SuperframeConfig::symmetric(7);
  up_config.reporting_interval = 4;
  PathModelConfig down_config = up_config;  // symmetric: same slot layout

  const PathModel up(up_config);
  const PathModel down(down_config);
  const SteadyStateLinks links(3, link::LinkModel::from_availability(0.75));

  const ControlLoopMeasures exact =
      analyze_control_loop_exact(up, links, down, links);
  const ControlLoopMeasures shorthand =
      analyze_symmetric_control_loop(compute_path_measures(up, links));

  ASSERT_EQ(exact.loop_cycle_probabilities.size(),
            shorthand.loop_cycle_probabilities.size());
  for (std::size_t k = 0; k < 4; ++k)
    EXPECT_NEAR(exact.loop_cycle_probabilities[k],
                shorthand.loop_cycle_probabilities[k], 1e-12);
  EXPECT_NEAR(exact.loop_reachability, shorthand.loop_reachability, 1e-12);
  EXPECT_NEAR(exact.first_cycle_probability, 0.178, 5e-4);
}

TEST(ControlLoopExact, PerfectLinksLatencyIsSlotExact) {
  // Uplink delivered at slot 7; downlink chain's last slot is 5 within
  // the downlink half: loop closes at (7 + 5) slots = 120 ms.
  PathModelConfig up_config;
  up_config.hop_slots = {3, 6, 7};
  up_config.superframe = net::SuperframeConfig::symmetric(7);
  up_config.reporting_interval = 2;
  PathModelConfig down_config;
  down_config.hop_slots = {1, 3, 5};
  down_config.superframe = net::SuperframeConfig::symmetric(7);
  down_config.reporting_interval = 2;

  const PathModel up(up_config);
  const PathModel down(down_config);
  const SteadyStateLinks links(3, link::LinkModel::from_availability(1.0));
  const ControlLoopMeasures loop =
      analyze_control_loop_exact(up, links, down, links, 2.5);
  EXPECT_DOUBLE_EQ(loop.loop_reachability, 1.0);
  EXPECT_DOUBLE_EQ(loop.expected_latency_ms, 120.0 + 2.5);
}

TEST(ControlLoopExact, AsymmetricDownlinkSuperframe) {
  // Uplink half 6 slots, downlink half 4: the downlink model ages over
  // its own 4-slot half.
  PathModelConfig up_config;
  up_config.hop_slots = {1, 2};
  up_config.superframe = net::SuperframeConfig{6, 4};
  up_config.reporting_interval = 3;
  PathModelConfig down_config;
  down_config.hop_slots = {2, 4};
  down_config.superframe = net::SuperframeConfig{4, 6};
  down_config.reporting_interval = 3;

  const PathModel up(up_config);
  const PathModel down(down_config);
  const SteadyStateLinks links(2, link::LinkModel::from_availability(0.9));
  const ControlLoopMeasures loop =
      analyze_control_loop_exact(up, links, down, links);
  EXPECT_GT(loop.loop_reachability, 0.9);
  // First-cycle latency: 6 uplink slots + downlink slot 4 = 100 ms, plus
  // retries: the expectation is >= that.
  EXPECT_GE(loop.expected_latency_ms, 100.0);

  // Mismatched halves are rejected.
  PathModelConfig bad = down_config;
  bad.superframe = net::SuperframeConfig{5, 6};
  EXPECT_THROW(
      analyze_control_loop_exact(up, links, PathModel(bad), links),
      precondition_error);
}

TEST(ControlLoop, MismatchedIntervalsThrow) {
  const PathMeasures uplink = example_measures(0.83);
  PathMeasures downlink = uplink;
  downlink.cycle_probabilities.pop_back();
  EXPECT_THROW(analyze_control_loop(uplink, downlink), precondition_error);
  EXPECT_THROW(analyze_symmetric_control_loop(uplink, -1.0),
               precondition_error);
}

}  // namespace
}  // namespace whart::hart
