// The channel-enlarged path solver (DESIGN.md §14) against its
// degeneracy anchors: a Gilbert-Elliott channel with equal per-state
// error rates carries no usable memory and must reproduce the i.i.d.
// solver to 1e-12 — across both transient kernels and across the
// scalar/batched sweep refills — while a k = 2 general chain must match
// the dedicated Gilbert-Elliott construction exactly.  The enlarged
// per-slot matrices themselves are checked row-stochastic, and the
// channel-state-leak injection must actually change them (a fault the
// oracle is supposed to catch had better exist).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "whart/hart/path_analysis.hpp"
#include "whart/hart/path_model.hpp"
#include "whart/hart/sweep.hpp"
#include "whart/link/channel_model.hpp"

namespace whart::hart {
namespace {

constexpr double kCollapseTolerance = 1e-12;

PathModelConfig retry_config() {
  PathModelConfig config;
  config.hop_slots = {2, 5, 7};
  config.retry_slots = {3, 0, 8};
  config.superframe = net::SuperframeConfig{9, 4};
  config.reporting_interval = 3;
  return config;
}

PathMeasures solve(const PathModelConfig& config,
                   const LinkProbabilityProvider& links,
                   TransientKernel kernel) {
  const PathModel model(config);
  PathAnalysisOptions options;
  options.kernel = kernel;
  return compute_path_measures(model, links, options);
}

void expect_measures_close(const PathMeasures& a, const PathMeasures& b,
                           double tolerance, const std::string& label) {
  EXPECT_NEAR(a.reachability, b.reachability, tolerance) << label;
  EXPECT_NEAR(a.discard_probability, b.discard_probability, tolerance)
      << label;
  EXPECT_NEAR(a.expected_delay_ms, b.expected_delay_ms, 1e3 * tolerance)
      << label;
  EXPECT_NEAR(a.expected_transmissions, b.expected_transmissions,
              1e3 * tolerance)
      << label;
  EXPECT_NEAR(a.utilization, b.utilization, tolerance) << label;
  EXPECT_NEAR(a.utilization_delivered, b.utilization_delivered, tolerance)
      << label;
  ASSERT_EQ(a.cycle_probabilities.size(), b.cycle_probabilities.size())
      << label;
  for (std::size_t i = 0; i < a.cycle_probabilities.size(); ++i)
    EXPECT_NEAR(a.cycle_probabilities[i], b.cycle_probabilities[i],
                tolerance)
        << label << " cycle " << i + 1;
}

class DegenerateChannel : public ::testing::TestWithParam<TransientKernel> {
};

TEST_P(DegenerateChannel, EqualErrorRatesCollapseToIid) {
  // Equal error rates in both states: the chain still mixes, but every
  // state succeeds with the same probability — observationally i.i.d.
  const PathModelConfig config = retry_config();
  for (double availability : {0.95, 0.75, 0.45}) {
    const double error = 1.0 - availability;
    const ChannelLinks channel_links(
        config.hop_count(),
        link::ChannelModel::gilbert_elliott(0.3, 0.5, error, error));
    const SteadyStateLinks iid_links(
        std::vector<double>(config.hop_count(), availability));
    expect_measures_close(
        solve(config, channel_links, GetParam()),
        solve(config, iid_links, GetParam()), kCollapseTolerance,
        "availability " + std::to_string(availability));
  }
}

TEST_P(DegenerateChannel, OneStateChannelCollapsesToIid) {
  const PathModelConfig config = retry_config();
  const ChannelLinks channel_links(config.hop_count(),
                                   link::ChannelModel::iid(0.83));
  const SteadyStateLinks iid_links(
      std::vector<double>(config.hop_count(), 0.83));
  expect_measures_close(solve(config, channel_links, GetParam()),
                        solve(config, iid_links, GetParam()),
                        kCollapseTolerance, "one-state");
}

TEST_P(DegenerateChannel, SingleHopAndTtlOneEdgeCases) {
  // Single hop, and a TTL that expires the message inside cycle 1:
  // the enlarged chain's smallest shapes.
  PathModelConfig single;
  single.hop_slots = {2};
  single.superframe = net::SuperframeConfig{3, 1};
  single.reporting_interval = 4;
  const double error = 0.25;
  const ChannelLinks channel(
      1, link::ChannelModel::gilbert_elliott(0.2, 0.6, error, error));
  const SteadyStateLinks iid(std::vector<double>{1.0 - error});
  expect_measures_close(solve(single, channel, GetParam()),
                        solve(single, iid, GetParam()), kCollapseTolerance,
                        "single hop");

  PathModelConfig ttl_one = single;
  ttl_one.ttl = 1;
  expect_measures_close(solve(ttl_one, channel, GetParam()),
                        solve(ttl_one, iid, GetParam()), kCollapseTolerance,
                        "ttl=1");
  const PathMeasures m = solve(ttl_one, channel, GetParam());
  EXPECT_NEAR(m.reachability + m.discard_probability, 1.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Kernels, DegenerateChannel,
                         ::testing::Values(
                             TransientKernel::kPerSlot,
                             TransientKernel::kSuperframeProduct));

TEST(ChannelPathModel, TwoStateChainMatchesDedicatedGilbertElliott) {
  // ChannelModel::chain with k = 2 must be the same model as the
  // gilbert_elliott factory — and the solver must not care which
  // constructor produced it.
  const PathModelConfig config = retry_config();
  const link::ChannelModel ge =
      link::ChannelModel::gilbert_elliott(0.15, 0.45, 0.03, 0.65);
  const link::ChannelModel chain = link::ChannelModel::chain(
      {0.85, 0.15, 0.45, 0.55}, {0.03, 0.65});
  EXPECT_EQ(ge, chain);
  for (TransientKernel kernel :
       {TransientKernel::kPerSlot, TransientKernel::kSuperframeProduct}) {
    const PathMeasures a =
        solve(config, ChannelLinks(config.hop_count(), ge), kernel);
    const PathMeasures b =
        solve(config, ChannelLinks(config.hop_count(), chain), kernel);
    expect_measures_close(a, b, 0.0, "k=2 chain vs GE");
  }
}

TEST(ChannelPathModel, KernelsAgreeOnABurstyChannel) {
  // Not degenerate: a real burst channel, solved per-slot and through
  // the superframe product, must land on the same measures.
  const PathModelConfig config = retry_config();
  const ChannelLinks links(
      config.hop_count(),
      link::ChannelModel::gilbert_elliott(0.1, 0.35, 0.02, 0.7));
  expect_measures_close(solve(config, links, TransientKernel::kPerSlot),
                        solve(config, links,
                              TransientKernel::kSuperframeProduct),
                        1e-12, "kernel agreement");
}

TEST(ChannelPathModel, BurstinessLowersMultiHopReachability) {
  // Same marginal availability, bursty vs memoryless: retries inside a
  // burst keep failing, so the bursty reachability must be strictly
  // lower on a path with retry slots.
  const PathModelConfig config = retry_config();
  const double availability = 0.8;
  const link::ChannelModel bursty =
      link::ChannelModel::gilbert_elliott(0.05, 0.15, 0.0, 1.0)
          .with_marginal_success(availability);
  const PathMeasures ge = solve(config,
                                ChannelLinks(config.hop_count(), bursty),
                                TransientKernel::kSuperframeProduct);
  const PathMeasures iid = solve(
      config,
      SteadyStateLinks(std::vector<double>(config.hop_count(),
                                           availability)),
      TransientKernel::kSuperframeProduct);
  EXPECT_LT(ge.reachability, iid.reachability - 1e-4);
}

TEST(ChannelPathModel, SweepCollapseAcrossScalarAndBatchedLanes) {
  // The degenerate-channel sweep against the i.i.d. sweep solved through
  // scalar refills and 8- and 16-lane SoA batches: every grid point must
  // agree to 1e-12 regardless of which refill core produced the i.i.d.
  // value.
  const PathModelConfig config = retry_config();
  const std::vector<double> grid = linspace(0.5, 0.99, 33);
  // Error rates are equal after rescaling only if they start equal.
  const link::ChannelModel degenerate =
      link::ChannelModel::gilbert_elliott(0.3, 0.5, 0.4, 0.4);
  const SweepSeries channel_series = sweep_availability(
      config, grid, 1, TransientKernel::kSuperframeProduct,
      /*reuse_skeleton=*/true, /*batch_lanes=*/1, &degenerate);
  for (std::size_t lanes : {1u, 8u, 16u}) {
    const SweepSeries iid_series = sweep_availability(
        config, grid, 1, TransientKernel::kSuperframeProduct,
        /*reuse_skeleton=*/true, lanes);
    ASSERT_EQ(iid_series.points.size(), channel_series.points.size());
    for (std::size_t i = 0; i < grid.size(); ++i)
      expect_measures_close(channel_series.points[i].measures,
                            iid_series.points[i].measures,
                            kCollapseTolerance,
                            "lanes " + std::to_string(lanes) + " point " +
                                std::to_string(i));
  }
}

TEST(ChannelPathModel, EnlargedSlotMatricesAreRowStochastic) {
  const PathModelConfig config = retry_config();
  const PathModel model(config);
  const ChannelLinks links(
      config.hop_count(),
      link::ChannelModel::gilbert_elliott(0.2, 0.35, 0.02, 0.65));
  const std::vector<linalg::CsrMatrix> healthy =
      model.channel_slot_matrices(links, /*inject_state_leak=*/false);
  ASSERT_EQ(healthy.size(), config.superframe.cycle_slots());
  for (std::size_t s = 0; s < healthy.size(); ++s) {
    for (std::size_t r = 0; r < healthy[s].rows(); ++r)
      EXPECT_NEAR(healthy[s].row_sum(r), 1.0, 1e-12)
          << "slot " << s << " row " << r;
  }

  // The leak injection must change at least one firing row — otherwise
  // the kChannelStateLeak self-test would be vacuous.
  const std::vector<linalg::CsrMatrix> leaky =
      model.channel_slot_matrices(links, /*inject_state_leak=*/true);
  double max_delta = 0.0;
  for (std::size_t s = 0; s < healthy.size(); ++s)
    for (std::size_t r = 0; r < healthy[s].rows(); ++r)
      for (std::size_t c = 0; c < healthy[s].cols(); ++c)
        max_delta = std::max(max_delta, std::abs(healthy[s].at(r, c) -
                                                 leaky[s].at(r, c)));
  EXPECT_GT(max_delta, 1e-3);
  // ... while staying a valid chain itself.
  for (const linalg::CsrMatrix& matrix : leaky)
    for (std::size_t r = 0; r < matrix.rows(); ++r)
      EXPECT_NEAR(matrix.row_sum(r), 1.0, 1e-12);
}

}  // namespace
}  // namespace whart::hart
