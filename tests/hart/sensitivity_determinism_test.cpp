// rank_link_upgrades determinism golden (DESIGN.md §12/§13): the ranking
// is computed by a parallel per-path fan-out, so it must be independent
// of the worker count — bitwise, not merely within tolerance — and ties
// between equal-score upgrades must resolve the same way every time.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "whart/hart/sensitivity.hpp"
#include "whart/net/schedule_builder.hpp"
#include "whart/net/typical_network.hpp"

namespace whart::hart {
namespace {

void expect_same_ranking(const std::vector<LinkSensitivity>& golden,
                         const std::vector<LinkSensitivity>& other,
                         bool bitwise) {
  ASSERT_EQ(golden.size(), other.size());
  for (std::size_t i = 0; i < golden.size(); ++i) {
    EXPECT_EQ(golden[i].link, other[i].link) << "rank " << i;
    EXPECT_EQ(golden[i].paths_using, other[i].paths_using) << "rank " << i;
    if (bitwise)
      EXPECT_EQ(golden[i].total_dR_dpi, other[i].total_dR_dpi)
          << "rank " << i;
    else
      EXPECT_NEAR(golden[i].total_dR_dpi, other[i].total_dR_dpi,
                  1e-9 * (1.0 + golden[i].total_dR_dpi))
          << "rank " << i;
  }
}

TEST(RankLinkUpgradesDeterminism, ParallelEqualsSerialAcrossThreadCounts) {
  // The heterogeneous typical network: distinct scores, so any ordering
  // instability shows as a rank swap; the serial run is the golden.
  const net::TypicalNetwork t = net::make_typical_network();
  for (const TransientKernel kernel :
       {TransientKernel::kPerSlot, TransientKernel::kSuperframeProduct}) {
    const auto golden =
        rank_link_upgrades(t.network, t.paths, t.eta_a, t.superframe,
                           net::kTypicalReportingInterval, 1, kernel);
    for (const unsigned threads : {4u, 16u}) {
      const auto ranking =
          rank_link_upgrades(t.network, t.paths, t.eta_a, t.superframe,
                             net::kTypicalReportingInterval, threads, kernel);
      expect_same_ranking(golden, ranking, /*bitwise=*/true);
    }
  }
}

TEST(RankLinkUpgradesDeterminism, BatchedLanesKeepTheOrderAcrossThreads) {
  // batch_lanes > 1 promises agreement to rounding, not bitwise — but the
  // ranking ORDER must still be thread-count independent, and the batch
  // run must agree with the scalar golden to 1e-9.
  const net::TypicalNetwork t = net::make_typical_network();
  const auto golden = rank_link_upgrades(
      t.network, t.paths, t.eta_a, t.superframe,
      net::kTypicalReportingInterval, 1,
      TransientKernel::kSuperframeProduct, 1);
  for (const unsigned threads : {1u, 4u, 16u}) {
    const auto ranking = rank_link_upgrades(
        t.network, t.paths, t.eta_a, t.superframe,
        net::kTypicalReportingInterval, threads,
        TransientKernel::kSuperframeProduct, 8);
    expect_same_ranking(golden, ranking, /*bitwise=*/false);
  }
}

TEST(RankLinkUpgradesDeterminism, EqualScoreTiesResolveIdenticallyEverywhere) {
  // A star of identical one-hop paths: every link has exactly the same
  // dR/dpi, so the whole ranking is one big tie — the order must come
  // out ascending by link id for every thread count and kernel, or two
  // runs of the same analysis would recommend different upgrades.
  net::Network star;
  std::vector<net::Path> paths;
  for (int d = 0; d < 6; ++d) {
    const net::NodeId node = star.add_node("d" + std::to_string(d + 1));
    star.add_link(net::kGateway, node,
                  link::LinkModel::from_availability(0.8));
    paths.push_back(net::Path({node, net::kGateway}));
  }
  const net::Schedule schedule = net::build_schedule(
      paths, 6, net::SchedulingPolicy::kShortestPathsFirst);
  const net::SuperframeConfig superframe =
      net::SuperframeConfig::symmetric(6);
  for (const TransientKernel kernel :
       {TransientKernel::kPerSlot, TransientKernel::kSuperframeProduct}) {
    for (const unsigned threads : {1u, 4u, 16u}) {
      const auto ranking = rank_link_upgrades(star, paths, schedule,
                                              superframe, 3, threads, kernel);
      ASSERT_EQ(ranking.size(), 6u);
      EXPECT_EQ(ranking.front().total_dR_dpi, ranking.back().total_dR_dpi);
      for (std::size_t i = 0; i < ranking.size(); ++i)
        EXPECT_EQ(ranking[i].link.value, static_cast<std::uint32_t>(i))
            << "threads " << threads;
    }
  }
}

}  // namespace
}  // namespace whart::hart
