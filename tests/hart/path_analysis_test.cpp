#include "whart/hart/path_analysis.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "whart/common/contracts.hpp"

namespace whart::hart {
namespace {

PathModelConfig example_config(std::uint32_t is) {
  PathModelConfig config;
  config.hop_slots = {3, 6, 7};
  config.superframe = net::SuperframeConfig::symmetric(7);
  config.reporting_interval = is;
  return config;
}

TEST(PathMeasures, PaperExamplePath) {
  // Paper Section V-A: Is = 4, pi(up) = 0.75: R = 0.9624,
  // E[tau] = 190.8 ms, delays 70/210/350/490 ms.
  const PathModel model(example_config(4));
  const SteadyStateLinks links(3, link::LinkModel::from_availability(0.75));
  const PathMeasures m = compute_path_measures(model, links);

  EXPECT_NEAR(m.reachability, 0.9624, 5e-5);
  EXPECT_NEAR(m.discard_probability, 0.0376, 5e-5);
  ASSERT_EQ(m.delays_ms.size(), 4u);
  EXPECT_DOUBLE_EQ(m.delays_ms[0], 70.0);
  EXPECT_DOUBLE_EQ(m.delays_ms[1], 210.0);
  EXPECT_DOUBLE_EQ(m.delays_ms[2], 350.0);
  EXPECT_DOUBLE_EQ(m.delays_ms[3], 490.0);
  EXPECT_NEAR(m.expected_delay_ms, 190.8, 0.05);
  // E[N] = 1 / (1 - R) ~ 26.6 reporting intervals to the first loss.
  EXPECT_NEAR(m.expected_intervals_to_first_loss, 26.6, 0.05);
}

TEST(PathMeasures, DelayDistributionNormalizedOverReceived) {
  const PathModel model(example_config(4));
  const SteadyStateLinks links(3, link::LinkModel::from_availability(0.75));
  const PathMeasures m = compute_path_measures(model, links);
  double mass = 0.0;
  for (double tau : m.delay_distribution) mass += tau;
  EXPECT_NEAR(mass, 1.0, 1e-12);
  // First-cycle share: g(1)/R = 0.4219/0.9624.
  EXPECT_NEAR(m.delay_distribution[0], 0.4219 / 0.9624, 1e-4);
}

TEST(PathMeasures, PerfectLinkOneHop) {
  PathModelConfig config;
  config.hop_slots = {1};
  config.superframe = net::SuperframeConfig::symmetric(1);
  config.reporting_interval = 2;
  const PathModel model(config);
  const SteadyStateLinks links(1, link::LinkModel::from_availability(1.0));
  const PathMeasures m = compute_path_measures(model, links);
  EXPECT_DOUBLE_EQ(m.reachability, 1.0);
  EXPECT_DOUBLE_EQ(m.expected_delay_ms, 10.0);
  EXPECT_TRUE(std::isinf(m.expected_intervals_to_first_loss));
  EXPECT_DOUBLE_EQ(m.utilization, 0.5);  // 1 attempt in 2 slots
}

TEST(PathMeasures, DeadLinksGiveZeroReachability) {
  PathModelConfig config;
  config.hop_slots = {1};
  config.superframe = net::SuperframeConfig::symmetric(1);
  config.reporting_interval = 3;
  const PathModel model(config);
  const SteadyStateLinks links(
      1, link::LinkModel(1.0, 0.0));  // pi(up) = 0
  const PathMeasures m = compute_path_measures(model, links);
  EXPECT_DOUBLE_EQ(m.reachability, 0.0);
  for (double tau : m.delay_distribution) EXPECT_DOUBLE_EQ(tau, 0.0);
  EXPECT_DOUBLE_EQ(m.expected_delay_ms, 0.0);
}

TEST(PathMeasures, UtilizationExampleLowBecauseFewSlotsOwned) {
  // Paper Section V-A: Up = 0.14 (3 slots of the 7-slot schedule).
  const PathModel model(example_config(4));
  const SteadyStateLinks links(3, link::LinkModel::from_availability(0.75));
  const PathMeasures m = compute_path_measures(model, links);
  EXPECT_NEAR(m.utilization, 0.14, 0.015);
}

TEST(PathMeasures, DelayPercentilesAndCdf) {
  const PathModel model(example_config(4));
  const SteadyStateLinks links(3, link::LinkModel::from_availability(0.75));
  const PathMeasures m = compute_path_measures(model, links);
  // tau = (0.4384, 0.3288, 0.1644, 0.0685): the median is the first
  // delay, the 90th percentile the third.
  EXPECT_DOUBLE_EQ(m.delay_percentile_ms(0.0), 70.0);
  EXPECT_DOUBLE_EQ(m.delay_percentile_ms(0.5), 210.0);
  EXPECT_DOUBLE_EQ(m.delay_percentile_ms(0.9), 350.0);
  EXPECT_DOUBLE_EQ(m.delay_percentile_ms(1.0), 490.0);
  EXPECT_THROW((void)m.delay_percentile_ms(1.5), precondition_error);

  EXPECT_DOUBLE_EQ(m.delay_cdf(0.0), 0.0);
  EXPECT_NEAR(m.delay_cdf(70.0), m.delay_distribution[0], 1e-12);
  EXPECT_NEAR(m.delay_cdf(10000.0), 1.0, 1e-12);
  // CDF is right-continuous at the atoms.
  EXPECT_NEAR(m.delay_cdf(209.0), m.delay_distribution[0], 1e-12);
}

TEST(PathMeasures, JitterIsZeroForDegenerateDelay) {
  PathModelConfig config;
  config.hop_slots = {1};
  config.superframe = net::SuperframeConfig::symmetric(1);
  config.reporting_interval = 1;
  const PathModel model(config);
  const SteadyStateLinks links(1, link::LinkModel::from_availability(0.9));
  const PathMeasures m = compute_path_measures(model, links);
  EXPECT_DOUBLE_EQ(m.delay_jitter_ms, 0.0);  // single possible delay
}

TEST(PathMeasures, JitterGrowsWithWorseLinks) {
  const PathModel model(example_config(4));
  const auto jitter = [&](double pi) {
    const SteadyStateLinks links(3,
                                 link::LinkModel::from_availability(pi));
    return compute_path_measures(model, links).delay_jitter_ms;
  };
  EXPECT_GT(jitter(0.7), jitter(0.9));
  EXPECT_GT(jitter(0.9), jitter(0.99));
}

TEST(MeasuresFromCycles, SizeMismatchThrows) {
  const PathModelConfig config = example_config(4);
  EXPECT_THROW(measures_from_cycles(config, {0.5, 0.5}, 1.0),
               precondition_error);
}

TEST(ClosedFormTransmissions, OneHopMatchesDirectSum) {
  // 1 hop, cycles g = (ps, pf ps, pf^2 ps, ...): attempts = i per cycle i.
  const std::vector<double> cycles{0.8, 0.16, 0.032, 0.0064};
  const double expected =
      0.8 * 1 + 0.16 * 2 + 0.032 * 3 + 0.0064 * 4 + (1 - 0.9984) * 4;
  EXPECT_NEAR(closed_form_transmissions(cycles, 1, 4), expected, 1e-12);
}

TEST(ClosedFormTransmissions, CycleCountMismatchThrows) {
  EXPECT_THROW(closed_form_transmissions({0.5}, 1, 2), precondition_error);
}

}  // namespace
}  // namespace whart::hart
