#include "whart/hart/network_analysis.hpp"

#include <gtest/gtest.h>

#include "whart/common/contracts.hpp"
#include "whart/net/typical_network.hpp"

namespace whart::hart {
namespace {

NetworkMeasures typical_measures(double availability,
                                 bool use_eta_b = false) {
  const net::TypicalNetwork t = net::make_typical_network(
      link::LinkModel::from_availability(availability));
  return analyze_network(t.network, t.paths,
                         use_eta_b ? t.eta_b : t.eta_a, t.superframe,
                         net::kTypicalReportingInterval);
}

TEST(NetworkAnalysis, TenPathMeasures) {
  const NetworkMeasures m = typical_measures(0.83);
  EXPECT_EQ(m.per_path.size(), 10u);
}

TEST(NetworkAnalysis, ReachabilityDecreasesWithHopCount) {
  const NetworkMeasures m = typical_measures(0.83);
  // Paths 1-3 (one hop) > paths 4-8 (two hops) > paths 9-10 (three hops).
  EXPECT_GT(m.per_path[0].reachability, m.per_path[4].reachability);
  EXPECT_GT(m.per_path[4].reachability, m.per_path[9].reachability);
}

TEST(NetworkAnalysis, MeanDelayMatchesPaperFig15) {
  // Paper: E[Gamma] = 235 ms for eta_a at pi(up) = 0.83.
  const NetworkMeasures m = typical_measures(0.83);
  EXPECT_NEAR(m.mean_delay_ms, 235.0, 1.5);
}

TEST(NetworkAnalysis, BottleneckIsPathTen) {
  // Paper: path 10 has E[tau] ~ 421 ms under eta_a.
  const NetworkMeasures m = typical_measures(0.83);
  EXPECT_EQ(m.bottleneck_by_delay, 9u);
  EXPECT_NEAR(m.per_path[9].expected_delay_ms, 421.4, 1.0);
  EXPECT_EQ(m.bottleneck_by_reachability, 8u);  // first 3-hop path
}

TEST(NetworkAnalysis, OverallDelayDistributionSumsToMeanReachShare) {
  const NetworkMeasures m = typical_measures(0.83);
  double mass = 0.0;
  for (const auto& point : m.overall_delay_distribution)
    mass += point.probability;
  // Each path's tau sums to 1, so the average sums to 1.
  EXPECT_NEAR(mass, 1.0, 1e-12);
  // Sorted ascending by delay.
  for (std::size_t i = 1; i < m.overall_delay_distribution.size(); ++i)
    EXPECT_LT(m.overall_delay_distribution[i - 1].delay_ms,
              m.overall_delay_distribution[i].delay_ms);
}

TEST(NetworkAnalysis, OverallDelayFirstCycleShareMatchesPaperFig14) {
  // Paper: 70.8% of the messages reach the gateway in the first cycle and
  // 21.7% in the second.
  const NetworkMeasures m = typical_measures(0.83);
  double first_cycle = 0.0;
  double second_cycle = 0.0;
  for (const auto& point : m.overall_delay_distribution) {
    if (point.delay_ms < 400.0)
      first_cycle += point.probability;
    else if (point.delay_ms < 800.0)
      second_cycle += point.probability;
  }
  EXPECT_NEAR(first_cycle, 0.708, 0.005);
  EXPECT_NEAR(second_cycle, 0.217, 0.005);
}

TEST(NetworkAnalysis, UtilizationDecreasesWithAvailability) {
  // Paper Table II: utilization falls from 0.313 at 0.693 to 0.24 at
  // 0.989.
  double previous = 1.0;
  for (double pi : {0.693, 0.774, 0.83, 0.903, 0.948, 0.989}) {
    const NetworkMeasures m = typical_measures(pi);
    EXPECT_LT(m.network_utilization, previous) << "pi=" << pi;
    previous = m.network_utilization;
  }
}

TEST(NetworkAnalysis, UtilizationMatchesPaperTable2Anchors) {
  // Table II uses delivered-only accounting; at these availabilities the
  // discard mass is tiny, so the exact count is close as well.
  EXPECT_NEAR(typical_measures(0.903).network_utilization_delivered, 0.263,
              0.002);
  EXPECT_NEAR(typical_measures(0.948).network_utilization_delivered, 0.250,
              0.002);
  EXPECT_NEAR(typical_measures(0.989).network_utilization_delivered, 0.240,
              0.002);
  EXPECT_NEAR(typical_measures(0.948).network_utilization, 0.250, 0.005);
}

TEST(NetworkAnalysis, EtaBBalancesDelays) {
  const NetworkMeasures a = typical_measures(0.83, false);
  const NetworkMeasures b = typical_measures(0.83, true);
  // Paper Fig. 16: path 10 drops from ~421 to ~291 ms...
  EXPECT_NEAR(b.per_path[9].expected_delay_ms, 291.9, 1.0);
  // ... the spread narrows ...
  const auto spread = [](const NetworkMeasures& m) {
    double lo = 1e18;
    double hi = 0.0;
    for (const auto& p : m.per_path) {
      lo = std::min(lo, p.expected_delay_ms);
      hi = std::max(hi, p.expected_delay_ms);
    }
    return hi - lo;
  };
  EXPECT_LT(spread(b), spread(a));
  // ... and the overall mean rises slightly (paper: 235 -> 272 ms).
  EXPECT_NEAR(b.mean_delay_ms, 272.0, 1.5);
  EXPECT_GT(b.mean_delay_ms, a.mean_delay_ms);
}

TEST(NetworkAnalysis, ReachabilityUnaffectedBySchedulePolicy) {
  const NetworkMeasures a = typical_measures(0.83, false);
  const NetworkMeasures b = typical_measures(0.83, true);
  for (std::size_t p = 0; p < 10; ++p)
    EXPECT_NEAR(a.per_path[p].reachability, b.per_path[p].reachability,
                1e-12);
}

TEST(NetworkAnalysis, DiagnosticsAccountForEveryPath) {
  const net::TypicalNetwork t = net::make_typical_network(
      link::LinkModel::from_availability(0.83));

  // Uncached: every path is a fresh solve with per-path diagnostics.
  AnalysisOptions no_cache;
  no_cache.use_cache = false;
  const NetworkMeasures direct =
      analyze_network(t.network, t.paths, t.eta_a, t.superframe,
                      net::kTypicalReportingInterval, no_cache);
  EXPECT_EQ(direct.diagnostics.dtmc_solves, t.paths.size());
  EXPECT_EQ(direct.diagnostics.cache_hits, 0u);
  EXPECT_GT(direct.diagnostics.states_solved, 0u);
  EXPECT_LT(direct.diagnostics.max_mass_residual, 1e-9);
  for (const PathMeasures& m : direct.per_path) {
    ASSERT_TRUE(m.diagnostics.has_value());
    EXPECT_FALSE(m.diagnostics->from_cache);
    EXPECT_GT(m.diagnostics->dtmc_states, 0u);
    EXPECT_EQ(m.diagnostics->dtmc_states,
              m.diagnostics->transient_states +
                  m.diagnostics->absorbing_states);
    EXPECT_EQ(m.diagnostics->forward_steps,
              std::uint64_t{net::kTypicalReportingInterval} *
                  t.superframe.uplink_slots);
  }

  // Cached: solves + hits still cover every path, and hits are flagged.
  const NetworkMeasures cached =
      analyze_network(t.network, t.paths, t.eta_a, t.superframe,
                      net::kTypicalReportingInterval);
  EXPECT_EQ(cached.diagnostics.dtmc_solves + cached.diagnostics.cache_hits,
            t.paths.size());
  EXPECT_GT(cached.diagnostics.cache_hits, 0u);  // 10 paths, 3 shapes
}

TEST(NetworkAnalysis, AggregateRejectsEmptyInput) {
  EXPECT_THROW(aggregate_measures({}), precondition_error);
}

}  // namespace
}  // namespace whart::hart
