// Batched sweeps (DESIGN.md §13): grouping same-shape grid points into
// SoA batches must not change any sweep's output — same point order,
// same CSV shape, measures equal to the unbatched (and skeleton-free)
// baselines to well below reporting precision.  Plus the linspace
// count == 1 regression (a degenerate grid is one point, not a
// duplicated endpoint) and the batched sensitivity/ranking paths.
#include "whart/hart/sweep.hpp"

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "whart/hart/link_probability.hpp"
#include "whart/hart/sensitivity.hpp"
#include "whart/net/typical_network.hpp"

namespace whart::hart {
namespace {

// Batched lanes agree with scalar refills to rounding; 1e-12 relative
// leaves three orders of magnitude of slack.
void expect_value_close(double batched, double baseline,
                        const std::string& what) {
  const double scale =
      std::max({1.0, std::abs(batched), std::abs(baseline)});
  EXPECT_LE(std::abs(batched - baseline), 1e-12 * scale) << what;
}

void expect_series_close(const SweepSeries& batched,
                         const SweepSeries& baseline) {
  EXPECT_EQ(batched.parameter_name, baseline.parameter_name);
  ASSERT_EQ(batched.points.size(), baseline.points.size());
  for (std::size_t i = 0; i < baseline.points.size(); ++i) {
    const std::string at = "point " + std::to_string(i);
    EXPECT_EQ(batched.points[i].parameter, baseline.points[i].parameter)
        << at;
    const PathMeasures& b = batched.points[i].measures;
    const PathMeasures& s = baseline.points[i].measures;
    expect_value_close(b.reachability, s.reachability, at + " R");
    expect_value_close(b.discard_probability, s.discard_probability,
                       at + " discard");
    expect_value_close(b.expected_delay_ms, s.expected_delay_ms,
                       at + " delay");
    expect_value_close(b.expected_transmissions, s.expected_transmissions,
                       at + " transmissions");
    expect_value_close(b.utilization, s.utilization, at + " U");
    expect_value_close(b.utilization_delivered, s.utilization_delivered,
                       at + " Ud");
    ASSERT_EQ(b.cycle_probabilities.size(), s.cycle_probabilities.size())
        << at;
    for (std::size_t k = 0; k < s.cycle_probabilities.size(); ++k)
      expect_value_close(b.cycle_probabilities[k],
                         s.cycle_probabilities[k],
                         at + " g(" + std::to_string(k + 1) + ")");
  }
}

PathModelConfig section6_config() {
  // The Section VI single-path shape behind the availability sweep.
  PathModelConfig config;
  config.hop_slots = {1, 2, 3, 4};
  config.superframe = net::SuperframeConfig::symmetric(20);
  config.reporting_interval = 4;
  return config;
}

// Parse one CSV into its lines for structural comparison.
std::vector<std::string> csv_lines(const SweepSeries& series) {
  std::ostringstream out;
  write_series_csv(out, series);
  std::vector<std::string> lines;
  std::string line;
  std::istringstream in(out.str());
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST(SweepBatch, AvailabilitySweepMatchesUnbatchedGolden) {
  const PathModelConfig config = section6_config();
  const std::vector<double> grid = linspace(0.65, 0.99, 18);
  // Three baselines: fresh per-point solves, scalar skeleton refills,
  // and the batched path — all must tell the same story.
  const SweepSeries fresh = sweep_availability(
      config, grid, 1, TransientKernel::kSuperframeProduct, false);
  const SweepSeries scalar = sweep_availability(
      config, grid, 1, TransientKernel::kSuperframeProduct, true, 1);
  const SweepSeries batched = sweep_availability(
      config, grid, 1, TransientKernel::kSuperframeProduct, true, 8);
  expect_series_close(scalar, fresh);
  expect_series_close(batched, fresh);

  // Golden CSV: identical structure, and each line's fields round to
  // the same printed digits unless the underlying values differ beyond
  // reporting precision (which expect_series_close already forbids).
  const std::vector<std::string> golden = csv_lines(fresh);
  const std::vector<std::string> lines = csv_lines(batched);
  ASSERT_EQ(lines.size(), golden.size());
  EXPECT_EQ(lines.front(), golden.front());  // header
}

TEST(SweepBatch, LaneCountBeyondGridStillWorks) {
  const PathModelConfig config = section6_config();
  const std::vector<double> grid = linspace(0.7, 0.9, 5);
  const SweepSeries baseline = sweep_availability(
      config, grid, 1, TransientKernel::kSuperframeProduct, true, 1);
  // More lanes than points: one short batch.
  const SweepSeries batched = sweep_availability(
      config, grid, 1, TransientKernel::kSuperframeProduct, true, 64);
  expect_series_close(batched, baseline);
}

TEST(SweepBatch, NonContiguousSameShapePointsShareABatch) {
  // Repeated reporting intervals are interleaved with other shapes, so
  // same-shape points are NOT adjacent in the grid — the open-batch
  // grouping must still collect them while preserving output order.
  PathModelConfig base = section6_config();
  const std::vector<std::uint32_t> intervals = {16, 8, 16, 4, 8, 16, 16};
  const SweepSeries baseline = sweep_reporting_interval_series(
      base, 0.85, intervals, 1, TransientKernel::kSuperframeProduct,
      true, 1);
  const SweepSeries batched = sweep_reporting_interval_series(
      base, 0.85, intervals, 1, TransientKernel::kSuperframeProduct,
      true, 4);
  ASSERT_EQ(batched.points.size(), intervals.size());
  for (std::size_t i = 0; i < intervals.size(); ++i)
    EXPECT_EQ(batched.points[i].parameter,
              static_cast<double>(intervals[i]));
  expect_series_close(batched, baseline);
}

TEST(SweepBatch, HopSweepDegeneratesToShapeSingletons) {
  // Every hop count is its own shape: batching must quietly fall back
  // to scalar refills and change nothing.
  const SweepSeries baseline =
      sweep_hop_count(4, 0.85, net::SuperframeConfig::symmetric(10), 4, 1,
                      TransientKernel::kSuperframeProduct, true, 1);
  const SweepSeries batched =
      sweep_hop_count(4, 0.85, net::SuperframeConfig::symmetric(10), 4, 1,
                      TransientKernel::kSuperframeProduct, true, 8);
  expect_series_close(batched, baseline);
}

TEST(SweepBatch, BerSweepBatchesMatchScalar) {
  const PathModelConfig config = section6_config();
  const std::vector<double> bers = {1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 2e-3};
  const SweepSeries baseline = sweep_ber(
      config, bers, 1, TransientKernel::kSuperframeProduct, true, 1);
  const SweepSeries batched = sweep_ber(
      config, bers, 1, TransientKernel::kSuperframeProduct, true, 3);
  expect_series_close(batched, baseline);
}

TEST(Linspace, CountOneIsASinglePoint) {
  // Regression: count == 1 used to divide by (count - 1) and duplicate
  // the endpoint; a degenerate grid must be exactly {first}.
  const std::vector<double> single = linspace(0.8, 0.95, 1);
  ASSERT_EQ(single.size(), 1u);
  EXPECT_EQ(single.front(), 0.8);
  const std::vector<double> flat = linspace(0.7, 0.7, 1);
  ASSERT_EQ(flat.size(), 1u);
  EXPECT_EQ(flat.front(), 0.7);
}

TEST(Linspace, EndpointsInclusiveForLargerCounts) {
  const std::vector<double> grid = linspace(0.5, 0.9, 5);
  ASSERT_EQ(grid.size(), 5u);
  EXPECT_DOUBLE_EQ(grid.front(), 0.5);
  EXPECT_DOUBLE_EQ(grid.back(), 0.9);
  for (std::size_t i = 1; i < grid.size(); ++i)
    EXPECT_GT(grid[i], grid[i - 1]);
}

TEST(SensitivityBatch, LanesMatchScalarAdjointSweeps) {
  PathModelConfig config;
  config.hop_slots = {3, 6, 7};
  config.superframe = net::SuperframeConfig::symmetric(7);
  config.reporting_interval = 4;
  const PathModel model(config);
  const PathModelSkeleton skeleton(config);

  const std::vector<std::vector<double>> lanes = {
      {0.9, 0.75, 0.85}, {0.8, 0.8, 0.8}, {0.95, 0.7, 0.92},
      {0.7, 0.9, 0.6}, {0.85, 0.85, 0.99}};
  std::vector<SteadyStateLinks> links;
  links.reserve(lanes.size());
  for (const std::vector<double>& availabilities : lanes)
    links.emplace_back(availabilities);
  std::vector<const LinkProbabilityProvider*> providers;
  providers.reserve(links.size());
  for (const SteadyStateLinks& provider : links)
    providers.push_back(&provider);

  const std::vector<std::vector<double>> batched =
      reachability_sensitivity_batch(skeleton, providers,
                                     TransientKernel::kSuperframeProduct);
  ASSERT_EQ(batched.size(), lanes.size());
  for (std::size_t l = 0; l < lanes.size(); ++l) {
    const std::vector<double> scalar = reachability_sensitivity(
        model, links[l], TransientKernel::kSuperframeProduct);
    ASSERT_EQ(batched[l].size(), scalar.size());
    for (std::size_t h = 0; h < scalar.size(); ++h)
      expect_value_close(batched[l][h], scalar[h],
                         "lane " + std::to_string(l) + " hop " +
                             std::to_string(h));
  }
}

TEST(RankLinkUpgradesBatch, RankingMatchesScalarPath) {
  const net::TypicalNetwork t = net::make_typical_network(
      link::LinkModel::from_availability(0.83));
  const std::vector<LinkSensitivity> scalar =
      rank_link_upgrades(t.network, t.paths, t.eta_a, t.superframe, 4, 1,
                         TransientKernel::kSuperframeProduct, 1);
  const std::vector<LinkSensitivity> batched =
      rank_link_upgrades(t.network, t.paths, t.eta_a, t.superframe, 4, 1,
                         TransientKernel::kSuperframeProduct, 4);
  ASSERT_EQ(batched.size(), scalar.size());
  for (std::size_t i = 0; i < scalar.size(); ++i) {
    EXPECT_EQ(batched[i].link, scalar[i].link) << "rank " << i;
    EXPECT_EQ(batched[i].paths_using, scalar[i].paths_using) << "rank " << i;
    expect_value_close(batched[i].total_dR_dpi, scalar[i].total_dR_dpi,
                       "rank " + std::to_string(i));
  }
}

}  // namespace
}  // namespace whart::hart
