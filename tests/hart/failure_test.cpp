#include "whart/hart/failure.hpp"

#include <algorithm>

#include <gtest/gtest.h>

#include "whart/common/contracts.hpp"
#include "whart/net/typical_network.hpp"

namespace whart::hart {
namespace {

// The paper's "pi(up) = 0.83" label is the rounded availability of a
// BER = 2e-4 link: pfl = 1 - (1-2e-4)^1016 => pi(up) = 0.83034 (its exact
// reported digits only reproduce with the unrounded value).
double paper_083() {
  return link::LinkModel::from_ber(2e-4).steady_state_availability();
}

TEST(CycleShift, PaperTableIIIValues) {
  // Table III (Is = 4, failure lasting one cycle): path 3 (1 hop): 99.51,
  // paths 7/8 (2 hops): 98.30, path 10 (3 hops): 96.28.
  const double ps = paper_083();
  EXPECT_NEAR(cycle_shift_reachability(1, ps, 4, 1), 0.9951, 5e-5);
  EXPECT_NEAR(cycle_shift_reachability(2, ps, 4, 1), 0.9830, 1e-4);
  EXPECT_NEAR(cycle_shift_reachability(3, ps, 4, 1), 0.9628, 1e-4);
}

TEST(CycleShift, NominalValuesWithoutFailure) {
  // Table III "without link failure" row: 99.92 / 99.64 / 99.07.
  const double ps = paper_083();
  EXPECT_NEAR(cycle_shift_reachability(1, ps, 4, 0), 0.9992, 5e-5);
  EXPECT_NEAR(cycle_shift_reachability(2, ps, 4, 0), 0.9964, 1e-4);
  EXPECT_NEAR(cycle_shift_reachability(3, ps, 4, 0), 0.9907, 1e-4);
}

TEST(CycleShift, LosingEverythingGivesZero) {
  EXPECT_DOUBLE_EQ(cycle_shift_reachability(2, 0.83, 4, 4), 0.0);
  EXPECT_DOUBLE_EQ(cycle_shift_reachability(2, 0.83, 4, 7), 0.0);
}

TEST(CycleShift, MonotoneInLostCycles) {
  double previous = 1.0;
  for (std::uint32_t lost = 0; lost <= 4; ++lost) {
    const double r = cycle_shift_reachability(2, 0.83, 4, lost);
    EXPECT_LT(r, previous);
    previous = r;
  }
}

TEST(ScriptedFailure, ExactIsAtLeastCycleShift) {
  // The exact DTMC lets early hops progress during the failure, so its
  // reachability upper-bounds the paper's cycle-shift approximation.
  PathModelConfig config;
  config.hop_slots = {1, 2};
  config.superframe = net::SuperframeConfig::symmetric(4);
  config.reporting_interval = 4;
  const std::vector<link::LinkModel> hops(
      2, link::LinkModel::from_availability(0.83));
  const double exact = scripted_failure_reachability(config, hops, 1, 1);
  const double shift = cycle_shift_reachability(2, 0.83, 4, 1);
  EXPECT_GE(exact, shift - 1e-12);
  EXPECT_LT(exact, cycle_shift_reachability(2, 0.83, 4, 0));
}

TEST(ScriptedFailure, FailingTheFirstHopOfAOneHopPathShiftsExactly) {
  // For a 1-hop path the two models coincide: the first cycle is lost.
  PathModelConfig config;
  config.hop_slots = {1};
  config.superframe = net::SuperframeConfig::symmetric(2);
  config.reporting_interval = 4;
  const std::vector<link::LinkModel> hops(
      1, link::LinkModel::from_availability(0.83));
  const double exact = scripted_failure_reachability(config, hops, 0, 1);
  // The link recovers from DOWN by the cycle-2 attempt (4 slots later),
  // so the residual is three near-steady attempts; the cycle-2 attempt is
  // slightly *above* steady state (fresh channel hop), hence the small
  // positive gap over the cycle-shift model.
  const double shift = cycle_shift_reachability(1, 0.83, 4, 1);
  EXPECT_GE(exact, shift - 1e-12);
  EXPECT_NEAR(exact, shift, 5e-3);
}

TEST(ScriptedFailure, BadHopIndexThrows) {
  PathModelConfig config;
  config.hop_slots = {1};
  config.superframe = net::SuperframeConfig::symmetric(2);
  config.reporting_interval = 2;
  const std::vector<link::LinkModel> hops(
      1, link::LinkModel::from_availability(0.83));
  EXPECT_THROW(scripted_failure_reachability(config, hops, 1, 1),
               precondition_error);
}

TEST(RandomDuration, MixesGeometricDurations) {
  // q = 0: the failure always lasts exactly one cycle.
  EXPECT_NEAR(random_duration_failure_reachability(2, 0.83, 4, 0.0, 4),
              cycle_shift_reachability(2, 0.83, 4, 1), 1e-12);
  // Longer expected durations hurt reachability.
  const double short_failures =
      random_duration_failure_reachability(2, 0.83, 4, 0.2, 4);
  const double long_failures =
      random_duration_failure_reachability(2, 0.83, 4, 0.8, 4);
  EXPECT_GT(short_failures, long_failures);
}

TEST(RandomDuration, InvalidParametersThrow) {
  EXPECT_THROW(random_duration_failure_reachability(2, 0.83, 4, 1.0, 4),
               precondition_error);
  EXPECT_THROW(random_duration_failure_reachability(2, 0.83, 4, 0.5, 0),
               precondition_error);
}

TEST(LinkFailure, TypicalNetworkE3AffectsPaths3_7_8_10) {
  // Paper Section VI-C: link e3 (n3 -- G) is shared by paths 3, 7, 8, 10.
  const net::TypicalNetwork t =
      net::make_typical_network(link::LinkModel::from_ber(2e-4));
  const auto e3 = t.network.link_between(*t.network.find_node("n3"),
                                         net::kGateway);
  ASSERT_TRUE(e3.has_value());
  const auto impacts = one_cycle_link_failure(
      t.network, t.paths, t.eta_a, t.superframe,
      net::kTypicalReportingInterval, *e3);
  ASSERT_EQ(impacts.size(), 10u);

  const std::vector<std::size_t> affected{2, 6, 7, 9};
  for (std::size_t p = 0; p < 10; ++p) {
    const bool should_be_affected =
        std::find(affected.begin(), affected.end(), p) != affected.end();
    EXPECT_EQ(impacts[p].affected, should_be_affected) << "path " << p + 1;
    if (!should_be_affected) {
      EXPECT_DOUBLE_EQ(impacts[p].reachability_cycle_shift,
                       impacts[p].reachability_nominal);
    } else {
      EXPECT_LT(impacts[p].reachability_cycle_shift,
                impacts[p].reachability_nominal);
    }
  }

  // Table III numbers.
  EXPECT_NEAR(impacts[2].reachability_nominal, 0.9992, 5e-5);
  EXPECT_NEAR(impacts[2].reachability_cycle_shift, 0.9951, 5e-5);
  EXPECT_NEAR(impacts[6].reachability_cycle_shift, 0.9830, 1e-4);
  EXPECT_NEAR(impacts[9].reachability_cycle_shift, 0.9628, 1e-4);

  // The exact refinement lies between shift and nominal.
  for (std::size_t p : affected) {
    EXPECT_GE(impacts[p].reachability_exact,
              impacts[p].reachability_cycle_shift - 1e-9);
    EXPECT_LE(impacts[p].reachability_exact,
              impacts[p].reachability_nominal + 1e-9);
  }
}

TEST(Reroute, FindsAlternativeOrReportsNone) {
  net::Network network;
  const auto m = link::LinkModel::from_availability(0.9);
  const auto a = network.add_node("a");
  const auto b = network.add_node("b");
  const auto direct = network.add_link(a, net::kGateway, m);
  network.add_link(a, b, m);
  network.add_link(b, net::kGateway, m);
  const std::vector<net::Path> paths{
      net::Path({a, net::kGateway}), net::Path({b, net::kGateway})};

  const auto rerouted =
      reroute_after_permanent_failure(network, paths, direct);
  ASSERT_EQ(rerouted.size(), 2u);
  ASSERT_TRUE(rerouted[0].has_value());
  EXPECT_EQ(rerouted[0]->nodes(),
            (std::vector<net::NodeId>{a, b, net::kGateway}));
  // Path 2 did not use the failed link: unchanged.
  EXPECT_EQ(rerouted[1], paths[1]);

  // Now fail b's only link: no alternative for path 2.
  const auto b_link = *network.link_between(b, net::kGateway);
  const auto rerouted2 =
      reroute_after_permanent_failure(network, paths, b_link);
  ASSERT_TRUE(rerouted2[1].has_value());  // b -> a -> G exists
  EXPECT_EQ(rerouted2[1]->hop_count(), 2u);
}

}  // namespace
}  // namespace whart::hart
