#include "whart/hart/schedule_optimizer.hpp"

#include <gtest/gtest.h>

#include "whart/common/contracts.hpp"
#include "whart/hart/network_analysis.hpp"
#include "whart/net/typical_network.hpp"

namespace whart::hart {
namespace {

TEST(ScheduleOptimizer, ExtraCyclesGrowWithHopsAndBadLinks) {
  const net::TypicalNetwork t = net::make_typical_network(
      link::LinkModel::from_availability(0.83));
  const auto extra = expected_extra_cycles(t.network, t.paths, 4);
  ASSERT_EQ(extra.size(), 10u);
  // 1-hop < 2-hop < 3-hop penalties.
  EXPECT_LT(extra[0], extra[3]);
  EXPECT_LT(extra[3], extra[8]);
  // Homogeneous links: equal hop counts share the penalty.
  EXPECT_DOUBLE_EQ(extra[0], extra[1]);
  EXPECT_DOUBLE_EQ(extra[8], extra[9]);
}

TEST(ScheduleOptimizer, HomogeneousCaseReducesToEtaB) {
  // With all links equal the optimizer's order is "longest first", so
  // the resulting measures must match eta_b exactly.
  const net::TypicalNetwork t = net::make_typical_network(
      link::LinkModel::from_availability(0.83));
  const net::Schedule optimized = build_min_worst_delay_schedule(
      t.network, t.paths, t.superframe, 4);
  const NetworkMeasures opt = analyze_network(t.network, t.paths,
                                              optimized, t.superframe, 4);
  const NetworkMeasures etab = analyze_network(t.network, t.paths, t.eta_b,
                                               t.superframe, 4);
  for (std::size_t p = 0; p < 10; ++p)
    EXPECT_NEAR(opt.per_path[p].expected_delay_ms,
                etab.per_path[p].expected_delay_ms, 1e-9)
        << "path " << p + 1;
}

TEST(ScheduleOptimizer, BeatsBothPaperPoliciesOnWorstDelay) {
  // Make the links inhomogeneous: the 2-hop path via n4 gets terrible
  // links, so hop count alone no longer predicts the penalty.
  net::TypicalNetwork t = net::make_typical_network(
      link::LinkModel::from_availability(0.93));
  const auto n4 = *t.network.find_node("n4");
  const auto n1 = *t.network.find_node("n1");
  t.network.set_link_model(*t.network.link_between(n4, n1),
                           link::LinkModel::from_availability(0.70));
  t.network.set_link_model(*t.network.link_between(n1, net::kGateway),
                           link::LinkModel::from_availability(0.75));

  const auto worst = [&](const net::Schedule& schedule) {
    const NetworkMeasures m =
        analyze_network(t.network, t.paths, schedule, t.superframe, 4);
    return m.per_path[m.bottleneck_by_delay].expected_delay_ms;
  };

  const net::Schedule optimized = build_min_worst_delay_schedule(
      t.network, t.paths, t.superframe, 4);
  EXPECT_LE(worst(optimized), worst(t.eta_a) + 1e-9);
  EXPECT_LE(worst(optimized), worst(t.eta_b) + 1e-9);
  // And strictly better than eta_b here, because eta_b front-loads the
  // 3-hop chains even though the lossy 2-hop path retries more.
  EXPECT_LT(worst(optimized), worst(t.eta_b));
}

TEST(ScheduleOptimizer, ProducesAValidCompleteSchedule) {
  const net::TypicalNetwork t = net::make_typical_network();
  const net::Schedule schedule = build_min_worst_delay_schedule(
      t.network, t.paths, t.superframe, 4);
  EXPECT_NO_THROW(schedule.validate_complete(t.paths));
}

TEST(ScheduleOptimizer, OverfullFrameThrows) {
  const net::TypicalNetwork t = net::make_typical_network();
  EXPECT_THROW(build_min_worst_delay_schedule(
                   t.network, t.paths, net::SuperframeConfig::symmetric(5),
                   4),
               precondition_error);
}

TEST(ScheduleOptimizer, EmptyPathsThrow) {
  const net::TypicalNetwork t = net::make_typical_network();
  EXPECT_THROW(expected_extra_cycles(t.network, {}, 4), precondition_error);
}

}  // namespace
}  // namespace whart::hart
