// Workspace pooling under the parallel engine (DESIGN.md §12): the
// WorkspacePool leases, the pooled skeleton sweeps and the
// skeleton-sharing network analysis must all be thread-count invariant
// and bitwise equal to the fresh-build paths.  Lives in test_parallel so
// the TSan CI job covers every lease/release and shared-skeleton read.
#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "whart/common/parallel.hpp"
#include "whart/hart/network_analysis.hpp"
#include "whart/hart/sweep.hpp"
#include "whart/net/typical_network.hpp"

namespace whart::hart {
namespace {

TEST(WorkspacePool, SequentialLeasesReuseOneWorkspace) {
  common::WorkspacePool<int> pool;
  EXPECT_EQ(pool.created(), 0u);
  int* first = nullptr;
  {
    auto lease = pool.acquire();
    *lease = 41;
    first = &*lease;
  }
  EXPECT_EQ(pool.created(), 1u);
  {
    auto lease = pool.acquire();
    // The idle workspace comes back, warm state intact.
    EXPECT_EQ(&*lease, first);
    EXPECT_EQ(*lease, 41);
  }
  EXPECT_EQ(pool.created(), 1u);
}

TEST(WorkspacePool, GrowsToPeakConcurrentLeases) {
  common::WorkspacePool<int> pool;
  {
    auto a = pool.acquire();
    auto b = pool.acquire();
    auto c = pool.acquire();
    EXPECT_EQ(pool.created(), 3u);
  }
  // All three returned; further sequential traffic creates nothing new.
  for (int i = 0; i < 8; ++i) auto lease = pool.acquire();
  EXPECT_EQ(pool.created(), 3u);
}

TEST(WorkspacePool, MovedLeaseReleasesExactlyOnce) {
  common::WorkspacePool<int> pool;
  {
    auto a = pool.acquire();
    auto b = std::move(a);
    *b = 7;
    auto c = pool.acquire();  // a must not have returned its workspace
    EXPECT_EQ(pool.created(), 2u);
    c = std::move(b);  // c's workspace goes back, b's transfers in
    EXPECT_EQ(*c, 7);
  }
  EXPECT_EQ(pool.created(), 2u);
}

PathModelConfig sweep_config() {
  PathModelConfig config;
  config.hop_slots = {1, 2, 3, 5};
  config.superframe = net::SuperframeConfig::symmetric(8);
  config.reporting_interval = 4;
  return config;
}

void expect_identical(const SweepSeries& a, const SweepSeries& b) {
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_EQ(a.points[i].parameter, b.points[i].parameter);
    EXPECT_EQ(a.points[i].measures.reachability,
              b.points[i].measures.reachability);
    EXPECT_EQ(a.points[i].measures.expected_delay_ms,
              b.points[i].measures.expected_delay_ms);
    EXPECT_EQ(a.points[i].measures.delay_jitter_ms,
              b.points[i].measures.delay_jitter_ms);
    EXPECT_EQ(a.points[i].measures.utilization,
              b.points[i].measures.utilization);
    EXPECT_EQ(a.points[i].measures.cycle_probabilities,
              b.points[i].measures.cycle_probabilities);
  }
}

TEST(SkeletonPool, PooledSweepIsThreadCountInvariantAndMatchesFresh) {
  const PathModelConfig config = sweep_config();
  const std::vector<double> grid = linspace(0.6, 0.99, 33);
  for (const TransientKernel kernel :
       {TransientKernel::kPerSlot, TransientKernel::kSuperframeProduct}) {
    // Fresh per-point builds, serial: the pre-split reference.
    const SweepSeries fresh =
        sweep_availability(config, grid, 1, kernel, false);
    // Pooled refills must match it at every thread count.
    expect_identical(sweep_availability(config, grid, 1, kernel, true),
                     fresh);
    expect_identical(sweep_availability(config, grid, 4, kernel, true),
                     fresh);
    expect_identical(sweep_availability(config, grid, 8, kernel, true),
                     fresh);
  }
}

TEST(SkeletonPool, PooledBerAndIntervalSweepsMatchFresh) {
  const PathModelConfig config = sweep_config();
  const std::vector<double> bers{1e-5, 1e-4, 5e-4, 1e-3};
  expect_identical(
      sweep_ber(config, bers, 4, TransientKernel::kSuperframeProduct, true),
      sweep_ber(config, bers, 1, TransientKernel::kSuperframeProduct,
                false));
  const std::vector<std::uint32_t> intervals{1, 2, 4, 8};
  expect_identical(
      sweep_reporting_interval_series(
          config, 0.83, intervals, 4,
          TransientKernel::kSuperframeProduct, true),
      sweep_reporting_interval_series(
          config, 0.83, intervals, 1,
          TransientKernel::kSuperframeProduct, false));
}

TEST(SkeletonPool, SharedSkeletonNetworkAnalysisMatchesFresh) {
  const net::TypicalNetwork t = net::make_typical_network();
  AnalysisOptions fresh_options;
  fresh_options.threads = 1;
  fresh_options.use_cache = false;
  fresh_options.reuse_skeleton = false;
  const NetworkMeasures fresh = analyze_network(
      t.network, t.paths, t.eta_a, t.superframe, 4, fresh_options);

  for (const unsigned threads : {1u, 4u}) {
    AnalysisOptions options;
    options.threads = threads;
    options.use_cache = false;
    options.reuse_skeleton = true;  // paths sharing a shape share a skeleton
    const NetworkMeasures pooled = analyze_network(
        t.network, t.paths, t.eta_a, t.superframe, 4, options);
    ASSERT_EQ(pooled.per_path.size(), fresh.per_path.size());
    for (std::size_t p = 0; p < fresh.per_path.size(); ++p) {
      EXPECT_EQ(pooled.per_path[p].reachability,
                fresh.per_path[p].reachability);
      EXPECT_EQ(pooled.per_path[p].expected_delay_ms,
                fresh.per_path[p].expected_delay_ms);
      EXPECT_EQ(pooled.per_path[p].utilization,
                fresh.per_path[p].utilization);
      EXPECT_EQ(pooled.per_path[p].cycle_probabilities,
                fresh.per_path[p].cycle_probabilities);
    }
    EXPECT_EQ(pooled.mean_delay_ms, fresh.mean_delay_ms);
    EXPECT_EQ(pooled.network_utilization, fresh.network_utilization);
  }
}

}  // namespace
}  // namespace whart::hart
