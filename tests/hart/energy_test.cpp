#include "whart/hart/energy.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "whart/common/contracts.hpp"
#include "whart/hart/network_analysis.hpp"
#include "whart/net/typical_network.hpp"

namespace whart::hart {
namespace {

std::vector<NodeEnergy> typical_energy(double availability) {
  const net::TypicalNetwork t = net::make_typical_network(
      link::LinkModel::from_availability(availability));
  return estimate_node_energy(t.network, t.paths, t.eta_a, t.superframe,
                              4);
}

TEST(Energy, GatewayReceivesEveryPathsTraffic) {
  const auto energies = typical_energy(0.83);
  // The gateway (node 0) transmits nothing on the uplink and receives
  // from n1, n2 and n3.
  EXPECT_DOUBLE_EQ(energies[0].tx_attempts_per_interval, 0.0);
  EXPECT_GT(energies[0].rx_attempts_per_interval, 3.0);
}

TEST(Energy, RelayNodesPayForForwardedTraffic) {
  const auto energies = typical_energy(0.83);
  // n1 relays paths 4 and 5 in addition to its own report; n5 only
  // sends its own.  Per-interval tx attempts: n1 ~ 3 messages' worth.
  EXPECT_GT(energies[1].tx_attempts_per_interval,
            2.5 * energies[5].tx_attempts_per_interval);
  // Leaf nodes receive nothing.
  EXPECT_DOUBLE_EQ(energies[5].rx_attempts_per_interval, 0.0);
  EXPECT_DOUBLE_EQ(energies[10].rx_attempts_per_interval, 0.0);
}

TEST(Energy, LowerAvailabilityCostsMoreEnergy) {
  const auto good = typical_energy(0.948);
  const auto bad = typical_energy(0.774);
  for (std::size_t node = 1; node < good.size(); ++node)
    EXPECT_GE(bad[node].mj_per_interval, good[node].mj_per_interval)
        << "node " << node;
}

TEST(Energy, PerHopAttemptsSumToPathTotal) {
  // Energy accounting must conserve the expected-attempt count.
  const net::TypicalNetwork t = net::make_typical_network(
      link::LinkModel::from_availability(0.83));
  const auto energies =
      estimate_node_energy(t.network, t.paths, t.eta_a, t.superframe, 4);
  double total_tx = 0.0;
  double total_rx = 0.0;
  for (const NodeEnergy& node : energies) {
    total_tx += node.tx_attempts_per_interval;
    total_rx += node.rx_attempts_per_interval;
  }
  EXPECT_NEAR(total_tx, total_rx, 1e-12);
  // Total attempts equal network utilization * schedule slots.
  const NetworkMeasures measures = analyze_network(
      t.network, t.paths, t.eta_a, t.superframe, 4);
  EXPECT_NEAR(total_tx, measures.network_utilization * 4 * 20, 1e-9);
}

TEST(Energy, HottestNodeIsABusyRelay) {
  const auto energies = typical_energy(0.83);
  const std::size_t hottest = hottest_node(energies);
  // n3 forwards paths 7, 8 and 10 plus its own report — more traffic
  // than any other field device; only the gateway rivals it.
  EXPECT_TRUE(hottest == 0 || hottest == 3) << "hottest: " << hottest;
}

TEST(Energy, BatteryLifeComputation) {
  NodeEnergy node;
  node.mj_per_interval = 1.0;
  EnergyParameters params;
  params.battery_joules = 18000.0;
  // 18e6 mJ / 1 mJ per 400 ms interval = 18e6 intervals = 7.2e9 ms.
  EXPECT_NEAR(node.battery_life_days(params, 400.0),
              7.2e9 / (1000.0 * 60 * 60 * 24), 1e-6);
  NodeEnergy idle;
  EXPECT_TRUE(std::isinf(idle.battery_life_days(params, 400.0)));
}

TEST(Energy, InvalidArgumentsThrow) {
  const net::TypicalNetwork t = net::make_typical_network();
  EXPECT_THROW(
      estimate_node_energy(t.network, {}, t.eta_a, t.superframe, 4),
      precondition_error);
  EnergyParameters params;
  params.tx_mj_per_attempt = -1.0;
  EXPECT_THROW(estimate_node_energy(t.network, t.paths, t.eta_a,
                                    t.superframe, 4, params),
               precondition_error);
  EXPECT_THROW(hottest_node({}), precondition_error);
  NodeEnergy node;
  EXPECT_THROW((void)node.battery_life_days(EnergyParameters{}, 0.0),
               precondition_error);
}

}  // namespace
}  // namespace whart::hart
