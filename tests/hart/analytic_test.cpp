#include "whart/hart/analytic.hpp"

#include <gtest/gtest.h>

#include "whart/common/contracts.hpp"

namespace whart::hart {
namespace {

PathModelConfig example_config(std::uint32_t is) {
  PathModelConfig config;
  config.hop_slots = {3, 6, 7};
  config.superframe = net::SuperframeConfig::symmetric(7);
  config.reporting_interval = is;
  return config;
}

TEST(Analytic, HomogeneousMatchesExactDtmc) {
  for (double ps : {0.693, 0.75, 0.83, 0.903, 0.948}) {
    const PathModelConfig config = example_config(4);
    const PathModel model(config);
    const SteadyStateLinks links(3,
                                 link::LinkModel::from_availability(ps));
    const PathTransientResult exact = model.analyze(links);
    const auto analytic = analytic_cycle_probabilities(3, ps, 4);
    for (std::size_t i = 0; i < 4; ++i)
      EXPECT_NEAR(analytic[i], exact.cycle_probabilities[i], 1e-12)
          << "ps=" << ps << " cycle=" << i + 1;
  }
}

TEST(Analytic, InhomogeneousMatchesExactDtmc) {
  const PathModelConfig config = example_config(4);
  const PathModel model(config);
  const std::vector<double> per_hop{0.95, 0.80, 0.70};
  std::vector<link::LinkModel> models;
  for (double ps : per_hop)
    models.push_back(link::LinkModel::from_availability(ps));
  const SteadyStateLinks links(models);
  const PathTransientResult exact = model.analyze(links);
  const auto analytic = analytic_cycle_probabilities(per_hop, 4);
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_NEAR(analytic[i], exact.cycle_probabilities[i], 1e-12);
}

TEST(Analytic, InhomogeneousReducesToHomogeneous) {
  const auto homo = analytic_cycle_probabilities(3, 0.83, 5);
  const auto inhomo =
      analytic_cycle_probabilities(std::vector<double>{0.83, 0.83, 0.83}, 5);
  for (std::size_t i = 0; i < 5; ++i)
    EXPECT_NEAR(homo[i], inhomo[i], 1e-12);
}

TEST(Analytic, HopOrderDoesNotChangeCycleProbabilities) {
  // With in-order slots, only the multiset of per-hop availabilities
  // matters for delivery cycles.
  const auto a =
      analytic_cycle_probabilities(std::vector<double>{0.9, 0.7}, 6);
  const auto b =
      analytic_cycle_probabilities(std::vector<double>{0.7, 0.9}, 6);
  for (std::size_t i = 0; i < 6; ++i) EXPECT_NEAR(a[i], b[i], 1e-12);
}

TEST(Analytic, MeasuresMatchPaperExample) {
  const PathMeasures m = analytic_path_measures(example_config(4), 0.75);
  EXPECT_NEAR(m.reachability, 0.9624, 5e-5);
  EXPECT_NEAR(m.expected_delay_ms, 190.8, 0.05);
}

TEST(Analytic, RejectsOutOfOrderSlots) {
  PathModelConfig config;
  config.hop_slots = {5, 2};
  config.superframe = net::SuperframeConfig::symmetric(6);
  config.reporting_interval = 2;
  EXPECT_THROW(analytic_path_measures(config, 0.9), precondition_error);
}

TEST(Analytic, RejectsCustomTtl) {
  PathModelConfig config = example_config(4);
  config.ttl = 7;
  EXPECT_THROW(analytic_path_measures(config, 0.9), precondition_error);
}

TEST(Analytic, RejectsWrongHopCount) {
  EXPECT_THROW(analytic_path_measures(example_config(4),
                                      std::vector<double>{0.9, 0.9}),
               precondition_error);
}

class AnalyticVsExactSweep
    : public ::testing::TestWithParam<
          std::tuple<std::uint32_t, double, std::uint32_t>> {};

TEST_P(AnalyticVsExactSweep, AgreeAcrossHopCountsAndIntervals) {
  const auto [hops, ps, is] = GetParam();
  PathModelConfig config;
  for (std::uint32_t h = 0; h < hops; ++h)
    config.hop_slots.push_back(h + 1);
  config.superframe = net::SuperframeConfig::symmetric(hops + 2);
  config.reporting_interval = is;
  const PathModel model(config);
  const SteadyStateLinks links(hops,
                               link::LinkModel::from_availability(ps));
  const PathTransientResult exact = model.analyze(links);
  const auto analytic = analytic_cycle_probabilities(hops, ps, is);
  for (std::size_t i = 0; i < is; ++i)
    EXPECT_NEAR(analytic[i], exact.cycle_probabilities[i], 1e-12)
        << "hops=" << hops << " ps=" << ps << " cycle=" << i + 1;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AnalyticVsExactSweep,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u),
                       ::testing::Values(0.7, 0.83, 0.95),
                       ::testing::Values(1u, 2u, 4u, 8u)));

}  // namespace
}  // namespace whart::hart
