#include "whart/hart/what_if.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "whart/common/contracts.hpp"
#include "whart/hart/network_analysis.hpp"
#include "whart/hart/schedule_optimizer.hpp"
#include "whart/hart/sensitivity.hpp"
#include "whart/net/plant_generator.hpp"
#include "whart/net/schedule_builder.hpp"
#include "whart/net/typical_network.hpp"

namespace whart::hart {
namespace {

/// Relative agreement of two exact solvers (the oracle's bound).
void expect_rel(double a, double b, double tolerance,
                const char* what = "") {
  EXPECT_LE(std::abs(a - b),
            tolerance * std::max({1.0, std::abs(a), std::abs(b)}))
      << what << ": " << a << " vs " << b;
}

AnalysisOptions superframe_options() {
  AnalysisOptions options;
  options.kernel = TransientKernel::kSuperframeProduct;
  return options;
}

TEST(WhatIfEngine, BaselineMatchesAnalyzeNetwork) {
  const net::TypicalNetwork t = net::make_typical_network();
  const NetworkMeasures measures = analyze_network(
      t.network, t.paths, t.eta_a, t.superframe,
      net::kTypicalReportingInterval, superframe_options());
  WhatIfEngine engine(t.network, t.paths, t.eta_a, t.superframe,
                      net::kTypicalReportingInterval);
  ASSERT_EQ(engine.baseline().size(), t.paths.size());
  for (std::size_t p = 0; p < t.paths.size(); ++p) {
    EXPECT_DOUBLE_EQ(engine.baseline()[p].reachability,
                     measures.per_path[p].reachability);
    EXPECT_DOUBLE_EQ(engine.baseline()[p].expected_delay_ms,
                     measures.per_path[p].expected_delay_ms);
    EXPECT_DOUBLE_EQ(engine.baseline()[p].discard_probability,
                     measures.per_path[p].discard_probability);
  }
}

TEST(WhatIfEngine, EveryLinkWhatIfMatchesFreshReSolve) {
  const net::TypicalNetwork t = net::make_typical_network();
  WhatIfEngine engine(t.network, t.paths, t.eta_a, t.superframe,
                      net::kTypicalReportingInterval);
  for (const net::LinkId link : engine.links()) {
    // Move the link through an exact two-state model so the engine's
    // availability double and the fresh network's agree bitwise.
    const link::LinkModel upgraded(0.25, 0.75);  // availability 0.75 exact
    net::Network modified = t.network;
    modified.set_link_model(link, upgraded);
    const double availability = upgraded.steady_state_availability();

    const WhatIfResult result = engine.what_if(link, availability);
    const NetworkMeasures fresh = analyze_network(
        modified, t.paths, t.eta_a, t.superframe,
        net::kTypicalReportingInterval, superframe_options());
    ASSERT_EQ(result.per_path.size(), t.paths.size());
    EXPECT_EQ(result.paths_resolved + result.paths_reused, t.paths.size());
    EXPECT_EQ(result.paths_resolved, engine.paths_using(link));
    for (std::size_t p = 0; p < t.paths.size(); ++p) {
      expect_rel(result.per_path[p].reachability,
                 fresh.per_path[p].reachability, 1e-12, "reachability");
      expect_rel(result.per_path[p].expected_delay_ms,
                 fresh.per_path[p].expected_delay_ms, 1e-12, "delay");
      expect_rel(result.per_path[p].discard_probability,
                 fresh.per_path[p].discard_probability, 1e-12, "discard");
    }
  }
}

TEST(WhatIfEngine, UntouchedPathsAreReturnedBitwiseUntouched) {
  const net::TypicalNetwork t = net::make_typical_network();
  WhatIfEngine engine(t.network, t.paths, t.eta_a, t.superframe,
                      net::kTypicalReportingInterval);
  // A leaf link: exactly one path uses it, every other path must come
  // back as the cached baseline object, bit for bit.
  net::LinkId leaf{0};
  for (const net::LinkId link : engine.links())
    if (engine.paths_using(link) == 1) leaf = link;
  ASSERT_EQ(engine.paths_using(leaf), 1u);

  const WhatIfResult result = engine.what_if(leaf, 0.6);
  EXPECT_EQ(result.paths_resolved, 1u);
  EXPECT_EQ(result.paths_reused, t.paths.size() - 1);
  const std::span<const std::size_t> affected = engine.affected_paths(leaf);
  for (std::size_t p = 0; p < t.paths.size(); ++p) {
    if (std::find(affected.begin(), affected.end(), p) != affected.end())
      continue;
    EXPECT_EQ(result.per_path[p].reachability,
              engine.baseline()[p].reachability);
    EXPECT_EQ(result.per_path[p].expected_delay_ms,
              engine.baseline()[p].expected_delay_ms);
    EXPECT_EQ(result.per_path[p].expected_transmissions,
              engine.baseline()[p].expected_transmissions);
  }
}

TEST(WhatIfEngine, RepeatedQueriesAreStableAndRevertCleanly) {
  const net::TypicalNetwork t = net::make_typical_network();
  WhatIfEngine engine(t.network, t.paths, t.eta_a, t.superframe,
                      net::kTypicalReportingInterval);
  const net::LinkId link = engine.links().front();

  const WhatIfResult first = engine.what_if(link, 0.7);
  const WhatIfResult second = engine.what_if(link, 0.7);
  for (std::size_t p = 0; p < t.paths.size(); ++p) {
    EXPECT_EQ(first.per_path[p].reachability,
              second.per_path[p].reachability);
    EXPECT_EQ(first.per_path[p].expected_delay_ms,
              second.per_path[p].expected_delay_ms);
  }

  // A what-if back to the baseline availability reproduces the baseline.
  const WhatIfResult back =
      engine.what_if(link, engine.baseline_availability(link));
  for (std::size_t p = 0; p < t.paths.size(); ++p)
    EXPECT_DOUBLE_EQ(back.per_path[p].reachability,
                     engine.baseline()[p].reachability);
}

TEST(WhatIfEngine, PerSlotKernelFallbackAgreesWithIncremental) {
  const net::TypicalNetwork t = net::make_typical_network();
  WhatIfEngine incremental(t.network, t.paths, t.eta_a, t.superframe,
                           net::kTypicalReportingInterval);
  WhatIfOptions per_slot_options;
  per_slot_options.kernel = TransientKernel::kPerSlot;
  WhatIfEngine per_slot(t.network, t.paths, t.eta_a, t.superframe,
                        net::kTypicalReportingInterval, per_slot_options);
  const net::LinkId link = incremental.links()[2];
  const WhatIfResult a = incremental.what_if(link, 0.65);
  const WhatIfResult b = per_slot.what_if(link, 0.65);
  for (std::size_t p = 0; p < t.paths.size(); ++p) {
    expect_rel(a.per_path[p].reachability, b.per_path[p].reachability, 1e-9);
    expect_rel(a.per_path[p].expected_delay_ms,
               b.per_path[p].expected_delay_ms, 1e-9);
  }
}

TEST(WhatIfEngine, DegenerateBaselineLinkFallsBackToFreshSolves) {
  // A perfect link makes the firing probability degenerate at the
  // baseline, so seeding declines and the engine must route that path's
  // queries through the fresh fallback — with correct results.
  net::TypicalNetwork t = net::make_typical_network();
  const net::LinkId perfect = net::LinkId{0};
  t.network.set_link_model(perfect, link::LinkModel(0.0, 0.9));
  WhatIfEngine engine(t.network, t.paths, t.eta_a, t.superframe,
                      net::kTypicalReportingInterval);
  const NetworkMeasures fresh_baseline = analyze_network(
      t.network, t.paths, t.eta_a, t.superframe,
      net::kTypicalReportingInterval, superframe_options());
  for (std::size_t p = 0; p < t.paths.size(); ++p)
    expect_rel(engine.baseline()[p].reachability,
               fresh_baseline.per_path[p].reachability, 1e-12);

  const link::LinkModel downgraded(0.5, 0.5);  // availability 0.5 exact
  net::Network modified = t.network;
  modified.set_link_model(perfect, downgraded);
  const WhatIfResult result =
      engine.what_if(perfect, downgraded.steady_state_availability());
  const NetworkMeasures fresh = analyze_network(
      modified, t.paths, t.eta_a, t.superframe,
      net::kTypicalReportingInterval, superframe_options());
  for (std::size_t p = 0; p < t.paths.size(); ++p)
    expect_rel(result.per_path[p].reachability,
               fresh.per_path[p].reachability, 1e-12);
}

TEST(WhatIfEngine, DeltaMatchesTheFullQuery) {
  const net::TypicalNetwork t = net::make_typical_network();
  WhatIfEngine engine(t.network, t.paths, t.eta_a, t.superframe,
                      net::kTypicalReportingInterval);
  for (const net::LinkId link : engine.links()) {
    const WhatIfDelta delta = engine.what_if_delta(link, 0.7);
    const WhatIfResult full = engine.what_if(link, 0.7);
    double reach_delta = 0.0;
    for (const std::size_t p : engine.affected_paths(link))
      reach_delta += full.per_path[p].reachability -
                     engine.baseline()[p].reachability;
    double worst = 0.0;
    for (const PathMeasures& m : full.per_path)
      worst = std::max(worst, m.expected_delay_ms);
    expect_rel(delta.reachability_delta, reach_delta, 1e-12);
    EXPECT_DOUBLE_EQ(delta.worst_expected_delay_ms, worst);
    EXPECT_EQ(delta.paths_resolved, full.paths_resolved);
  }
}

TEST(WhatIfEngine, WorstExpectedDelayOverloadMatchesFullScoring) {
  const net::TypicalNetwork t = net::make_typical_network();
  WhatIfEngine engine(t.network, t.paths, t.eta_a, t.superframe,
                      net::kTypicalReportingInterval);
  const net::LinkId link = engine.links()[3];
  const link::LinkModel moved(0.5, 0.5);  // availability 0.5 exact
  net::Network modified = t.network;
  modified.set_link_model(link, moved);

  const double incremental = worst_expected_delay(
      engine, link, moved.steady_state_availability());
  const double full = worst_expected_delay(
      modified, t.paths, t.eta_a, t.superframe,
      net::kTypicalReportingInterval, superframe_options());
  expect_rel(incremental, full, 1e-12);
}

TEST(WhatIfEngine, RejectsOutOfRangeAvailability) {
  const net::TypicalNetwork t = net::make_typical_network();
  WhatIfEngine engine(t.network, t.paths, t.eta_a, t.superframe,
                      net::kTypicalReportingInterval);
  EXPECT_THROW((void)engine.what_if(engine.links().front(), 1.5),
               precondition_error);
  EXPECT_THROW((void)engine.what_if_delta(engine.links().front(), -0.1),
               precondition_error);
}

TEST(WhatIfEngine, GeneratedPlantWhatIfsMatchFreshReSolves) {
  net::PlantProfile profile;
  profile.device_count = 50;
  profile.seed = 7;
  const net::GeneratedPlant plant = net::generate_plant(profile);
  WhatIfEngine engine(plant.network, plant.paths, plant.schedule,
                      plant.superframe, 4);
  const link::LinkModel moved(0.25, 0.75);  // availability 0.75 exact
  // Spot-check a spread of links (every link would be slow in debug).
  const std::vector<net::LinkId>& links = engine.links();
  for (std::size_t i = 0; i < links.size(); i += 7) {
    net::Network modified = plant.network;
    modified.set_link_model(links[i], moved);
    const WhatIfResult result =
        engine.what_if(links[i], moved.steady_state_availability());
    const NetworkMeasures fresh =
        analyze_network(modified, plant.paths, plant.schedule,
                        plant.superframe, 4, superframe_options());
    for (std::size_t p = 0; p < plant.paths.size(); ++p)
      expect_rel(result.per_path[p].reachability,
                 fresh.per_path[p].reachability, 1e-12);
  }
}

TEST(EvaluateLinkUpgrades, PricesEveryLinkAndAgreesWithTheRankingScreen) {
  const net::TypicalNetwork t = net::make_typical_network(
      link::LinkModel::from_availability(0.83));
  WhatIfEngine engine(t.network, t.paths, t.eta_a, t.superframe,
                      net::kTypicalReportingInterval);
  const std::vector<LinkUpgradeImpact> impacts =
      evaluate_link_upgrades(engine, 0.99);
  ASSERT_EQ(impacts.size(), engine.links().size());
  for (std::size_t i = 1; i < impacts.size(); ++i)
    EXPECT_GE(impacts[i - 1].reachability_delta,
              impacts[i].reachability_delta);
  // On the homogeneous typical network the exact pricing and the
  // derivative screen agree on the winner: the shared n3-G bottleneck.
  const auto ranking = rank_link_upgrades(t.network, t.paths, t.eta_a,
                                          t.superframe,
                                          net::kTypicalReportingInterval);
  EXPECT_EQ(impacts.front().link, ranking.front().link);
  EXPECT_EQ(impacts.front().paths_using, 4u);
  // Each impact is reproducible through a direct delta query.
  for (const LinkUpgradeImpact& impact : impacts) {
    const WhatIfDelta delta = engine.what_if_delta(impact.link, 0.99);
    EXPECT_DOUBLE_EQ(impact.reachability_delta, delta.reachability_delta);
    EXPECT_DOUBLE_EQ(impact.worst_expected_delay_ms,
                     delta.worst_expected_delay_ms);
  }
}

TEST(EvaluateLinkUpgrades, EqualScoreTiesKeepAscendingLinkIdOrder) {
  // A star of identical one-hop paths: every upgrade is worth exactly
  // the same, so the ranking must preserve ascending link-id order.
  net::Network star;
  std::vector<net::Path> paths;
  for (int d = 0; d < 5; ++d) {
    const net::NodeId node = star.add_node("d" + std::to_string(d + 1));
    star.add_link(net::kGateway, node,
                  link::LinkModel::from_availability(0.8));
    paths.push_back(net::Path({node, net::kGateway}));
  }
  const net::Schedule schedule = net::build_schedule(
      paths, 5, net::SchedulingPolicy::kShortestPathsFirst);
  WhatIfEngine engine(star, paths, schedule,
                      net::SuperframeConfig::symmetric(5), 3);
  const std::vector<LinkUpgradeImpact> impacts =
      evaluate_link_upgrades(engine, 0.95);
  ASSERT_EQ(impacts.size(), 5u);
  for (std::size_t i = 0; i < impacts.size(); ++i)
    EXPECT_EQ(impacts[i].link.value, static_cast<std::uint32_t>(i));
}

}  // namespace
}  // namespace whart::hart
