// Dedicated retry slots — a second transmission opportunity per hop per
// frame, as real WirelessHART schedules allocate.  Not modeled in the
// paper; the exact DTMC handles it with no special casing.
#include <numeric>

#include <gtest/gtest.h>

#include "whart/common/contracts.hpp"
#include "whart/hart/analytic.hpp"
#include "whart/hart/path_analysis.hpp"
#include "whart/markov/transient.hpp"

namespace whart::hart {
namespace {

PathModelConfig with_retries() {
  PathModelConfig config;
  config.hop_slots = {1, 3, 5};
  config.retry_slots = {2, 4, 6};
  config.superframe = net::SuperframeConfig::symmetric(7);
  config.reporting_interval = 4;
  return config;
}

PathModelConfig without_retries() {
  PathModelConfig config = with_retries();
  config.retry_slots.clear();
  return config;
}

double reachability(const PathModelConfig& config, double availability) {
  const PathModel model(config);
  const SteadyStateLinks links(
      config.hop_count(), link::LinkModel::from_availability(availability));
  const auto result = model.analyze(links);
  return std::accumulate(result.cycle_probabilities.begin(),
                         result.cycle_probabilities.end(), 0.0);
}

TEST(RetrySlots, OneHopSingleCycleIsTwoIndependentAttempts) {
  PathModelConfig config;
  config.hop_slots = {1};
  config.retry_slots = {2};
  config.superframe = net::SuperframeConfig::symmetric(3);
  config.reporting_interval = 1;
  const double ps = 0.7;
  EXPECT_NEAR(reachability(config, ps), 1.0 - 0.3 * 0.3, 1e-12);
}

TEST(RetrySlots, StrictlyImproveReachability) {
  for (double pi : {0.7, 0.83, 0.95}) {
    EXPECT_GT(reachability(with_retries(), pi),
              reachability(without_retries(), pi))
        << "pi=" << pi;
  }
}

TEST(RetrySlots, NoGainForPerfectLinks) {
  EXPECT_DOUBLE_EQ(reachability(with_retries(), 1.0), 1.0);
  EXPECT_DOUBLE_EQ(reachability(without_retries(), 1.0), 1.0);
}

TEST(RetrySlots, ZeroEntriesMeanNoRetryForThatHop) {
  PathModelConfig config = with_retries();
  config.retry_slots = {2, 0, 6};  // no retry for hop 2
  const double with_partial = reachability(config, 0.8);
  EXPECT_GT(with_partial, reachability(without_retries(), 0.8));
  EXPECT_LT(with_partial, reachability(with_retries(), 0.8));
}

TEST(RetrySlots, SelectiveRetryOnTheWorstHopIsMostEffective) {
  // Only one retry slot available: spending it on the lossy hop beats
  // spending it on a clean hop.
  const auto reach = [](std::size_t retried_hop) {
    PathModelConfig config;
    config.hop_slots = {1, 3};
    config.retry_slots = {0, 0};
    config.retry_slots[retried_hop] = 5;
    config.superframe = net::SuperframeConfig::symmetric(6);
    config.reporting_interval = 2;
    const PathModel model(config);
    const SteadyStateLinks links(
        {link::LinkModel::from_availability(0.95),
         link::LinkModel::from_availability(0.70)});
    const auto result = model.analyze(links);
    return std::accumulate(result.cycle_probabilities.begin(),
                           result.cycle_probabilities.end(), 0.0);
  };
  EXPECT_GT(reach(1), reach(0));
}

TEST(RetrySlots, ExplicitDtmcStaysConsistent) {
  const PathModel model(with_retries());
  const SteadyStateLinks links(3, link::LinkModel::from_availability(0.8));
  const markov::Dtmc dtmc = model.to_dtmc(links);
  const linalg::Vector final = markov::distribution_after(
      dtmc, markov::point_distribution(dtmc.num_states(), 0),
      model.config().horizon());
  const auto forward = model.analyze(links);
  for (std::uint32_t cycle = 1; cycle <= 4; ++cycle) {
    const auto goal = dtmc.find_state(model.goal_state_name(cycle));
    ASSERT_TRUE(goal.has_value());
    EXPECT_NEAR(final[*goal], forward.cycle_probabilities[cycle - 1],
                1e-12);
  }
}

TEST(RetrySlots, UtilizationAccountsForTheExtraAttempts) {
  const PathModel with(with_retries());
  const PathModel without(without_retries());
  const SteadyStateLinks links(3, link::LinkModel::from_availability(0.7));
  EXPECT_GT(with.analyze(links).expected_transmissions,
            without.analyze(links).expected_transmissions);
}

TEST(RetrySlots, ValidationRejectsBadConfigs) {
  PathModelConfig config = with_retries();
  config.retry_slots = {2, 4};  // wrong arity
  EXPECT_THROW(PathModel{config}, precondition_error);
  config = with_retries();
  config.retry_slots = {3, 4, 6};  // collides with hop slot 3
  EXPECT_THROW(PathModel{config}, precondition_error);
  config = with_retries();
  config.retry_slots = {2, 4, 9};  // outside the frame
  EXPECT_THROW(PathModel{config}, precondition_error);
  // The closed form refuses retry configs.
  EXPECT_THROW(analytic_path_measures(with_retries(), 0.8),
               precondition_error);
}

}  // namespace
}  // namespace whart::hart
