#include "whart/hart/sensitivity.hpp"

#include <numeric>

#include <gtest/gtest.h>

#include "whart/common/contracts.hpp"
#include "whart/net/typical_network.hpp"
#include "whart/numeric/rng.hpp"

namespace whart::hart {
namespace {

PathModelConfig example_config(std::uint32_t is) {
  PathModelConfig config;
  config.hop_slots = {3, 6, 7};
  config.superframe = net::SuperframeConfig::symmetric(7);
  config.reporting_interval = is;
  return config;
}

double reachability_at(const PathModel& model,
                       const std::vector<double>& availabilities) {
  std::vector<link::LinkModel> links;
  for (double pi : availabilities)
    links.push_back(link::LinkModel::from_availability(pi));
  const PathTransientResult result =
      model.analyze(SteadyStateLinks(links));
  return std::accumulate(result.cycle_probabilities.begin(),
                         result.cycle_probabilities.end(), 0.0);
}

TEST(Sensitivity, MatchesFiniteDifferences) {
  const PathModel model(example_config(4));
  const std::vector<double> base{0.9, 0.75, 0.85};
  std::vector<link::LinkModel> links;
  for (double pi : base)
    links.push_back(link::LinkModel::from_availability(pi));
  const auto adjoint =
      reachability_sensitivity(model, SteadyStateLinks(links));
  ASSERT_EQ(adjoint.size(), 3u);

  const double eps = 1e-7;
  for (std::size_t h = 0; h < 3; ++h) {
    std::vector<double> up = base;
    std::vector<double> down = base;
    up[h] += eps;
    down[h] -= eps;
    const double fd = (reachability_at(model, up) -
                       reachability_at(model, down)) /
                      (2.0 * eps);
    EXPECT_NEAR(adjoint[h], fd, 1e-6) << "hop " << h;
  }
}

TEST(Sensitivity, WorstLinkHasTheLargestGradient) {
  const PathModel model(example_config(4));
  std::vector<link::LinkModel> links{
      link::LinkModel::from_availability(0.95),
      link::LinkModel::from_availability(0.70),
      link::LinkModel::from_availability(0.92)};
  const auto s = reachability_sensitivity(model, SteadyStateLinks(links));
  EXPECT_GT(s[1], s[0]);
  EXPECT_GT(s[1], s[2]);
}

TEST(Sensitivity, NonNegativeEverywhere) {
  numeric::Xoshiro256 rng(9);
  for (int trial = 0; trial < 20; ++trial) {
    PathModelConfig config;
    const auto hops = static_cast<std::uint32_t>(1 + rng.below(4));
    for (std::uint32_t h = 0; h < hops; ++h)
      config.hop_slots.push_back(h + 1);
    config.superframe = net::SuperframeConfig::symmetric(hops + 2);
    config.reporting_interval = static_cast<std::uint32_t>(1 + rng.below(6));
    const PathModel model(config);
    std::vector<link::LinkModel> links;
    for (std::uint32_t h = 0; h < hops; ++h)
      links.push_back(
          link::LinkModel::from_availability(0.55 + 0.4 * rng.uniform()));
    for (double g :
         reachability_sensitivity(model, SteadyStateLinks(links)))
      ASSERT_GE(g, 0.0);
  }
}

TEST(Sensitivity, PerfectPathHasZeroGradient) {
  const PathModel model(example_config(3));
  const SteadyStateLinks links(3, link::LinkModel::from_availability(1.0));
  for (double g : reachability_sensitivity(model, links))
    EXPECT_DOUBLE_EQ(g, 0.0);
}

TEST(RankLinkUpgrades, SharedBottleneckLinkWinsOnTypicalNetwork) {
  // e3 = <n3, G> carries four paths (3, 7, 8, 10) — upgrading it buys
  // the most total reachability.
  const net::TypicalNetwork t = net::make_typical_network(
      link::LinkModel::from_availability(0.83));
  const auto ranking = rank_link_upgrades(t.network, t.paths, t.eta_a,
                                          t.superframe, 4);
  ASSERT_EQ(ranking.size(), 10u);
  const net::Link& best = t.network.link(ranking.front().link);
  EXPECT_TRUE(best.connects(*t.network.find_node("n3"), net::kGateway));
  EXPECT_EQ(ranking.front().paths_using, 4u);
  // Sorted descending.
  for (std::size_t i = 1; i < ranking.size(); ++i)
    EXPECT_GE(ranking[i - 1].total_dR_dpi, ranking[i].total_dR_dpi);
  // Leaf links each serve one path.
  EXPECT_EQ(ranking.back().paths_using, 1u);
}

TEST(RankLinkUpgrades, EmptyPathsThrow) {
  const net::TypicalNetwork t = net::make_typical_network();
  EXPECT_THROW(
      rank_link_upgrades(t.network, {}, t.eta_a, t.superframe, 4),
      precondition_error);
}

}  // namespace
}  // namespace whart::hart
