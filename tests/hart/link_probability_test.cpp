#include "whart/hart/link_probability.hpp"

#include <gtest/gtest.h>

#include "whart/common/contracts.hpp"
#include "whart/hart/path_analysis.hpp"
#include "whart/hart/path_model.hpp"

namespace whart::hart {
namespace {

const link::LinkModel kLink{0.184, 0.9};

TEST(SteadyStateLinks, ConstantAcrossSlots) {
  const SteadyStateLinks links(2, kLink);
  EXPECT_EQ(links.hop_count(), 2u);
  const double pi = kLink.steady_state_availability();
  EXPECT_DOUBLE_EQ(links.up_probability(0, 0), pi);
  EXPECT_DOUBLE_EQ(links.up_probability(1, 12345), pi);
  EXPECT_THROW((void)links.up_probability(2, 0), precondition_error);
}

TEST(SteadyStateLinks, InhomogeneousPerHop) {
  const SteadyStateLinks links({link::LinkModel::from_availability(0.9),
                                link::LinkModel::from_availability(0.7)});
  EXPECT_NEAR(links.up_probability(0, 5), 0.9, 1e-12);
  EXPECT_NEAR(links.up_probability(1, 5), 0.7, 1e-12);
  EXPECT_THROW(SteadyStateLinks(std::vector<link::LinkModel>{}),
               precondition_error);
}

TEST(TransientLinks, FollowsEq3FromInitialCondition) {
  const TransientLinks links({kLink}, {0.0});  // starts DOWN
  for (std::uint64_t t : {0ull, 1ull, 3ull, 10ull, 100ull})
    EXPECT_NEAR(links.up_probability(0, t),
                kLink.up_probability_after(0.0, t), 1e-15)
        << "t=" << t;
  // Converges to steady state.
  EXPECT_NEAR(links.up_probability(0, 500),
              kLink.steady_state_availability(), 1e-12);
}

TEST(TransientLinks, ValidatesInputs) {
  EXPECT_THROW(TransientLinks({kLink}, {0.5, 0.5}), precondition_error);
  EXPECT_THROW(TransientLinks({kLink}, {1.5}), precondition_error);
  EXPECT_THROW(TransientLinks({}, {}), precondition_error);
}

TEST(TransientLinks, InitialStateChangesEarlyCyclesOnly) {
  // A path whose links start DOWN loses most of its first cycle but
  // recovers: the late-cycle probabilities approach the steady model's.
  PathModelConfig config;
  config.hop_slots = {1, 2, 3};
  config.superframe = net::SuperframeConfig::symmetric(5);
  config.reporting_interval = 4;
  const PathModel model(config);

  const TransientLinks down_start(
      std::vector<link::LinkModel>(3, kLink), {0.0, 0.0, 0.0});
  const SteadyStateLinks steady(3, kLink);
  const auto from_down = model.analyze(down_start);
  const auto from_steady = model.analyze(steady);

  EXPECT_LT(from_down.cycle_probabilities[0],
            from_steady.cycle_probabilities[0]);
  double r_down = 0.0;
  double r_steady = 0.0;
  for (std::size_t i = 0; i < 4; ++i) {
    r_down += from_down.cycle_probabilities[i];
    r_steady += from_steady.cycle_probabilities[i];
  }
  EXPECT_LT(r_down, r_steady);
  // The paper's hierarchy: the gap is mostly gone by the later cycles
  // because the links forget their initial state within a few slots.
  EXPECT_NEAR(r_down, r_steady, 0.15);
}

TEST(TransientLinks, UpStartBeatsSteadyStart) {
  PathModelConfig config;
  config.hop_slots = {1};
  config.superframe = net::SuperframeConfig::symmetric(2);
  config.reporting_interval = 2;
  const PathModel model(config);
  const TransientLinks up_start({kLink}, {1.0});
  const SteadyStateLinks steady(1, kLink);
  EXPECT_GT(model.analyze(up_start).cycle_probabilities[0],
            model.analyze(steady).cycle_probabilities[0]);
}

TEST(ScriptedLinksProvider, WindowsAndRecovery) {
  const ScriptedLinks links(std::vector<link::LinkModel>(2, kLink), 1,
                            {link::FailureWindow{4, 8}});
  // Hop 0 never scripted: steady everywhere.
  EXPECT_DOUBLE_EQ(links.up_probability(0, 5),
                   kLink.steady_state_availability());
  // Hop 1 forced down inside the window.
  EXPECT_DOUBLE_EQ(links.up_probability(1, 5), 0.0);
  // ... and recovering after it.
  EXPECT_NEAR(links.up_probability(1, 8),
              kLink.up_probability_after(link::LinkState::kDown, 1),
              1e-15);
  EXPECT_THROW(
      ScriptedLinks(std::vector<link::LinkModel>(2, kLink), 2, {}),
      precondition_error);
}

}  // namespace
}  // namespace whart::hart
