#include "whart/hart/fast_control.hpp"

#include <gtest/gtest.h>

#include "whart/common/contracts.hpp"

namespace whart::hart {
namespace {

PathModelConfig three_hop_config() {
  PathModelConfig config;
  config.hop_slots = {1, 2, 3};
  config.superframe = net::SuperframeConfig::symmetric(20);
  config.reporting_interval = 4;
  return config;
}

TEST(FastControl, ReachabilityIncreasesWithReportingInterval) {
  const auto points =
      sweep_reporting_interval(three_hop_config(), 0.83, {1, 2, 4, 8});
  ASSERT_EQ(points.size(), 4u);
  for (std::size_t i = 1; i < points.size(); ++i)
    EXPECT_GT(points[i].measures.reachability,
              points[i - 1].measures.reachability);
}

TEST(FastControl, DeliveredPerCycleDecreasesWithReportingInterval) {
  // The flip side of the trade-off: fewer (but surer) messages per cycle.
  const auto points =
      sweep_reporting_interval(three_hop_config(), 0.83, {1, 2, 4});
  for (std::size_t i = 1; i < points.size(); ++i)
    EXPECT_LT(points[i].delivered_per_cycle,
              points[i - 1].delivered_per_cycle);
}

TEST(FastControl, GapGrowsWithHops) {
  // Paper Fig. 19: the Is = 2 vs Is = 4 reachability gap is larger for
  // longer paths.
  const auto gap_for = [](std::uint32_t hops) {
    PathModelConfig config;
    for (std::uint32_t h = 0; h < hops; ++h)
      config.hop_slots.push_back(h + 1);
    config.superframe = net::SuperframeConfig::symmetric(20);
    const auto points = sweep_reporting_interval(config, 0.774, {2, 4});
    return points[1].measures.reachability -
           points[0].measures.reachability;
  };
  EXPECT_GT(gap_for(3), gap_for(2));
  EXPECT_GT(gap_for(2), gap_for(1));
}

TEST(FastControl, OneHopValuesMatchPaperFig18) {
  // pi(up) = 0.903: Is = 1 -> 0.903, Is = 2 -> 0.99, Is = 4 -> 0.999.
  PathModelConfig config;
  config.hop_slots = {1};
  config.superframe = net::SuperframeConfig::symmetric(20);
  const auto points = sweep_reporting_interval(config, 0.903, {1, 2, 4});
  EXPECT_NEAR(points[0].measures.reachability, 0.903, 1e-12);
  EXPECT_NEAR(points[1].measures.reachability, 0.9906, 1e-4);
  EXPECT_NEAR(points[2].measures.reachability, 0.99991, 1e-5);
}

TEST(FastControl, SweepValidation) {
  EXPECT_THROW(sweep_reporting_interval(three_hop_config(), 0.9, {}),
               precondition_error);
  EXPECT_THROW(sweep_reporting_interval(three_hop_config(), 0.9, {0}),
               precondition_error);
}

TEST(MessageBlocks, OneMessageEveryIsCycles) {
  const auto blocks = one_hop_message_blocks(0.903, 4, 2);
  ASSERT_EQ(blocks.size(), 2u);
  EXPECT_EQ(blocks[0].born_cycle, 0u);
  EXPECT_EQ(blocks[1].born_cycle, 2u);
  for (const auto& b : blocks) {
    EXPECT_EQ(b.reporting_interval, 2u);
    EXPECT_NEAR(b.reachability, 1.0 - 0.097 * 0.097, 1e-10);
  }
}

TEST(MessageBlocks, PaperFig18Window) {
  // Four consecutive cycles: Is = 1 gives four messages at 0.903 each;
  // Is = 4 gives one message at 0.999.
  const auto is1 = one_hop_message_blocks(0.903, 4, 1);
  ASSERT_EQ(is1.size(), 4u);
  EXPECT_NEAR(is1[0].reachability, 0.903, 1e-12);
  const auto is4 = one_hop_message_blocks(0.903, 4, 4);
  ASSERT_EQ(is4.size(), 1u);
  EXPECT_NEAR(is4[0].reachability, 0.99991, 1e-5);
}

TEST(MinimumReportingInterval, FindsSmallestSufficientIs) {
  // 1-hop at 0.903: Is = 1 gives 0.903, Is = 2 gives 0.9906 — the
  // smallest interval reaching 99% is 2.
  EXPECT_EQ(minimum_reporting_interval(1, 0.903, 0.99), 2u);
  EXPECT_EQ(minimum_reporting_interval(1, 0.903, 0.90), 1u);
  // 3-hop at 0.83: cumulative reachability 0.9626 after 3 cycles,
  // 0.9906 after 4, 0.9978 after 5.
  EXPECT_EQ(minimum_reporting_interval(3, 0.83, 0.96), 3u);
  EXPECT_EQ(minimum_reporting_interval(3, 0.83, 0.99), 4u);
  EXPECT_EQ(minimum_reporting_interval(3, 0.83, 0.995), 5u);
}

TEST(MinimumReportingInterval, UnreachableTargetGivesNullopt) {
  EXPECT_FALSE(minimum_reporting_interval(2, 0.5, 0.9999999, 4).has_value());
  EXPECT_FALSE(minimum_reporting_interval(1, 0.0, 0.5, 8).has_value());
}

TEST(MinimumReportingInterval, PerfectLinkNeedsOneCycle) {
  EXPECT_EQ(minimum_reporting_interval(4, 1.0, 1.0), 1u);
}

TEST(MinimumReportingInterval, InvalidArgumentsThrow) {
  EXPECT_THROW(minimum_reporting_interval(0, 0.9, 0.9), precondition_error);
  EXPECT_THROW(minimum_reporting_interval(1, 1.5, 0.9), precondition_error);
  EXPECT_THROW(minimum_reporting_interval(1, 0.9, 1.5), precondition_error);
  EXPECT_THROW(minimum_reporting_interval(1, 0.9, 0.9, 0),
               precondition_error);
}

TEST(MessageBlocks, WindowMustBeMultipleOfIs) {
  EXPECT_THROW(one_hop_message_blocks(0.9, 5, 2), precondition_error);
  EXPECT_THROW(one_hop_message_blocks(0.9, 4, 0), precondition_error);
  EXPECT_THROW(one_hop_message_blocks(1.5, 4, 2), precondition_error);
}

}  // namespace
}  // namespace whart::hart
