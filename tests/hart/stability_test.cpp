#include "whart/hart/stability.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "whart/common/contracts.hpp"

namespace whart::hart {
namespace {

TEST(Stability, PerfectReachabilityIsAlwaysStable) {
  const StabilityAssessment a =
      assess_stability(1.0, StabilityRequirement{2, 0.99});
  EXPECT_TRUE(a.stable());
  EXPECT_TRUE(std::isinf(a.expected_intervals_to_violation));
  EXPECT_TRUE(std::isinf(a.expected_intervals_to_first_loss));
  EXPECT_DOUBLE_EQ(a.violation_probability, 0.0);
}

TEST(Stability, PaperExamplePathNumbers) {
  // R = 0.9624 (example path): E[first loss] = 26.6 intervals; a run of
  // two losses has probability 0.0376^2 = 1.41e-3.
  const StabilityAssessment a =
      assess_stability(0.9624, StabilityRequirement{2, 0.99});
  EXPECT_NEAR(a.expected_intervals_to_first_loss, 26.6, 0.05);
  EXPECT_NEAR(a.violation_probability, 0.0376 * 0.0376, 1e-6);
  EXPECT_FALSE(a.meets_reachability);  // 0.9624 < 0.99
}

TEST(Stability, RunWaitingTimeMatchesSimulationFormula) {
  // For q = 0.5, k = 2: E[T] = (1 - 0.25) / (0.5 * 0.25) = 6 — the
  // classic expected tosses until two consecutive tails.
  const StabilityAssessment a =
      assess_stability(0.5, StabilityRequirement{2, 0.0});
  EXPECT_NEAR(a.expected_intervals_to_violation, 6.0, 1e-12);
}

TEST(Stability, LongerRunsAreExponentiallyRarer) {
  const double r = 0.99;
  double previous = 0.0;
  for (std::uint32_t k = 1; k <= 4; ++k) {
    const StabilityAssessment a =
        assess_stability(r, StabilityRequirement{k, 0.9});
    EXPECT_GT(a.expected_intervals_to_violation, previous);
    previous = a.expected_intervals_to_violation;
  }
}

TEST(Stability, VerdictCombinesBothCriteria) {
  // High reachability but tolerating only a single loss with a strict
  // inter-violation gap: k = 1 means every loss violates.
  const StabilityAssessment strict =
      assess_stability(0.999, StabilityRequirement{1, 0.99}, 1e4);
  EXPECT_TRUE(strict.meets_reachability);
  EXPECT_FALSE(strict.meets_run_requirement);  // E = 1000 < 1e4
  EXPECT_FALSE(strict.stable());

  const StabilityAssessment relaxed =
      assess_stability(0.999, StabilityRequirement{2, 0.99}, 1e4);
  EXPECT_TRUE(relaxed.stable());  // E ~ 1e6 intervals between double losses
}

TEST(Stability, InvalidArgumentsThrow) {
  EXPECT_THROW(assess_stability(1.5, StabilityRequirement{2, 0.9}),
               precondition_error);
  EXPECT_THROW(assess_stability(0.9, StabilityRequirement{0, 0.9}),
               precondition_error);
  EXPECT_THROW(assess_stability(0.9, StabilityRequirement{2, 0.9}, 0.0),
               precondition_error);
}

}  // namespace
}  // namespace whart::hart
